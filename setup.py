"""Build shim: declares the optional native kernel extension.

Static metadata lives in ``pyproject.toml``; this file exists to add
the C extension behind :mod:`repro.kernels.native` (declarative
configuration cannot express ``optional=True`` extensions) and to keep
environments without the ``wheel`` package installing (offline
installs).  ``optional=True`` means a missing or broken compiler skips
the extension instead of failing the install — the kernel registry
then falls back to the ``numpy``/``bitint`` backends silently.

Build it in a source checkout with::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.kernels._native",
            sources=["src/repro/kernels/_native.c"],
            optional=True,
        )
    ]
)

#!/usr/bin/env python3
"""Click-stream mining on transposed data (the Figure 8 use case).

Generates BMS-WebView-style click sessions, transposes them (pages as
transactions, sessions as items) to obtain a "many items, few
transactions" data set, and mines it with IsTa.  A closed set in the
transposed database is a *group of sessions* together with the number
of pages they all visited — i.e. a cluster of behaviourally similar
visits, which is what transposition is for.

Run with::

    python examples/click_stream.py
"""

from repro import mine
from repro.data import itemset
from repro.data.transforms import transpose
from repro.datasets import webview_clicks


def main() -> None:
    clicks = webview_clicks(n_sessions=1500, n_pages=200, seed=3)
    sizes = clicks.transaction_sizes()
    print(
        f"click data: {clicks.n_transactions} sessions over {clicks.n_items} pages "
        f"(mean session length {sum(sizes) / len(sizes):.1f})"
    )

    # --- transpose: pages become transactions, sessions become items ---
    transposed = transpose(clicks)
    print(
        f"transposed: {transposed.n_transactions} transactions (pages), "
        f"{transposed.n_items} items (sessions)"
    )

    smin = 4  # sessions sharing at least 4 common pages
    closed = mine(transposed, smin, algorithm="ista")
    print(f"\n{len(closed)} closed session groups with >= {smin} shared pages")

    # The most interesting groups: many sessions sharing many pages.
    ranked = sorted(
        closed.items(), key=lambda kv: (itemset.size(kv[0]) * kv[1]), reverse=True
    )
    print("\ntop session clusters (size x shared pages):")
    for mask, shared_pages in ranked[:5]:
        sessions = itemset.to_indices(mask)
        # Recover *which* pages the group shares from the original data.
        common = itemset.intersect_all(clicks.transactions[s] for s in sessions)
        pages = itemset.to_indices(common)
        print(
            f"  {len(sessions):4d} sessions share {shared_pages} pages "
            f"(e.g. pages {pages[:6]})"
        )

    # Sanity: the paper's Galois bijection says the shared-page count of
    # a closed session group equals the size of the page set they share.
    for mask, shared_pages in ranked[:5]:
        sessions = itemset.to_indices(mask)
        common = itemset.intersect_all(clicks.transactions[s] for s in sessions)
        assert itemset.size(common) == shared_pages
    print("\nGalois-connection sanity check passed ✓")


if __name__ == "__main__":
    main()

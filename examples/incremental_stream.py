#!/usr/bin/env python3
"""Online mining with the cumulative scheme.

The IsTa repository is an *online* structure: after every transaction
it holds exactly the closed-set family of the stream so far (recursive
relation (1) of the paper).  This example feeds a stream of sensor-alarm
transactions and queries the co-occurring alarm groups as they evolve —
something no enumeration miner can do without re-mining from scratch.

Run with::

    python examples/incremental_stream.py
"""

import random

from repro import IncrementalMiner


def alarm_stream(n_events, seed=0):
    """Synthetic ops-monitoring stream: correlated alarm bursts."""
    rng = random.Random(seed)
    scenarios = [
        ["disk-full", "write-fail", "queue-backlog"],
        ["net-loss", "timeout", "retry-storm"],
        ["cpu-hot", "throttle"],
        ["disk-full", "timeout"],
    ]
    for _ in range(n_events):
        alarms = set(scenarios[rng.randrange(len(scenarios))])
        if rng.random() < 0.3:
            alarms.add(rng.choice(["cron-miss", "cert-warn", "oom"]))
        if rng.random() < 0.2:
            alarms.discard(rng.choice(sorted(alarms)))
        yield sorted(alarms)


def main() -> None:
    miner = IncrementalMiner()
    for count, alarms in enumerate(alarm_stream(400), start=1):
        miner.add(alarms)
        if count in (50, 200, 400):
            closed = miner.closed_sets(smin=max(2, count // 10))
            strong = sorted(closed.items(), key=lambda kv: -kv[1])[:4]
            print(f"after {count:3d} events "
                  f"({miner.repository_size} repository nodes):")
            for items, support in strong:
                print(f"    {' + '.join(items):45s} seen {support}x")

    print("\npoint queries, no re-mining:")
    for group in (["disk-full", "write-fail"], ["net-loss", "timeout"],
                  ["cpu-hot", "net-loss"]):
        print(f"    support({' + '.join(group)}) = {miner.support_of(group)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: mine closed frequent item sets from a toy market basket.

Run with::

    python examples/quickstart.py
"""

from repro import TransactionDatabase, generate_rules, mine, support_of

# A tiny shopping-basket database (the Table 1 example of the paper,
# with groceries instead of letters).
BASKETS = [
    ["apples", "bread", "cheese"],
    ["apples", "dates", "eggs"],
    ["bread", "cheese", "dates"],
    ["apples", "bread", "cheese", "dates"],
    ["bread", "cheese"],
    ["apples", "bread", "dates"],
    ["dates", "eggs"],
    ["cheese", "dates", "eggs"],
]


def main() -> None:
    db = TransactionDatabase.from_iterable(BASKETS)
    print(f"database: {db.n_transactions} transactions, {db.n_items} items\n")

    # --- Closed frequent item sets -----------------------------------
    # IsTa is the paper's flagship: it *intersects transactions* instead
    # of enumerating candidate item sets.
    result = mine(db, smin=3, algorithm="ista")
    print(f"closed frequent item sets (smin=3): {len(result)}")
    for items, support in result.labeled():
        print(f"  {', '.join(items):35s} support={support}")

    # --- Every algorithm gives the same answer ------------------------
    for algorithm in ("carpenter-table", "fpgrowth", "lcm"):
        assert mine(db, 3, algorithm=algorithm) == result
    print("\ncarpenter-table, fpgrowth and lcm agree with ista ✓")

    # --- Supports of non-closed sets are reconstructible ---------------
    apples = db.encode(["apples"])
    print(f"\nsupport of {{apples}} (not closed, reconstructed): "
          f"{support_of(result, apples)}")

    # --- Association rules ---------------------------------------------
    print("\nassociation rules (confidence >= 0.75):")
    for rule in generate_rules(result, db.n_transactions, min_confidence=0.75):
        print(f"  {rule.labeled(db.item_labels)}")


if __name__ == "__main__":
    main()

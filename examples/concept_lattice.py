#!/usr/bin/env python3
"""Exploring a closed family as an iceberg concept lattice.

The Galois connection of Section 2.5 makes the closed frequent item
sets a lattice under inclusion.  This example mines the paper's Table 1
database, builds the lattice, walks it level by level, and derives the
non-redundant (min-max) association rule basis whose antecedents are
the minimal generators of the closed sets.

Run with::

    python examples/concept_lattice.py
"""

from repro import ConceptLattice, mine
from repro.closure.generators import all_minimal_generators
from repro.data.matrix import example_database
from repro.rules import generate_nonredundant_rules, rule_measures


def label(db, mask):
    return "{" + ", ".join(str(x) for x in db.decode(mask)) + "}"


def main() -> None:
    db = example_database()
    smin = 3
    closed = mine(db, smin, algorithm="ista")
    lattice = ConceptLattice(db, closed)
    print(f"Table 1 database: {db.n_transactions} transactions; "
          f"{len(closed)} closed sets at smin={smin}\n")

    print("lattice, level by level (set: support -> upper covers):")
    for level in lattice.iter_levels():
        for mask in sorted(level):
            parents = ", ".join(label(db, p) for p in lattice.parents(mask))
            print(f"  {label(db, mask):12s}: {lattice.support(mask)}  ->  "
                  f"{parents or '(maximal)'}")

    top = lattice.leaves()
    print(f"\nmaximal frequent sets (lattice leaves): "
          f"{', '.join(label(db, m) for m in sorted(top))}")

    a, b = db.encode("a"), db.encode("e")
    joined = lattice.join(a, b)
    print(f"\njoin({label(db, a)}, {label(db, b)}) = "
          f"{label(db, joined) if joined else 'below the support threshold'}")

    print("\nminimal generators per closed set:")
    for mask, generators in sorted(all_minimal_generators(db, closed).items()):
        shown = ", ".join(label(db, g) for g in generators)
        print(f"  {label(db, mask):12s} <- {shown}")

    print("\nnon-redundant rule basis (confidence >= 0.7):")
    for rule in generate_nonredundant_rules(db, closed, min_confidence=0.7):
        measures = rule_measures(rule, closed, db.n_transactions)
        print(f"  {rule.labeled(db.item_labels):45s} "
              f"leverage={measures['leverage']:+.2f} "
              f"jaccard={measures['jaccard']:.2f}")

    print("\nGraphviz export: lattice.to_dot() ->")
    print("\n".join(lattice.to_dot().splitlines()[:6]) + "\n  ...")


if __name__ == "__main__":
    main()

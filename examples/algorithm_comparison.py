#!/usr/bin/env python3
"""Reproduce the paper's central comparison on a scaled-down workload.

Sweeps the minimum support on a "many items, few transactions" data set
(the regime of Figures 5-8) and on a classic market-basket data set
(the regime the introduction says favours enumeration), printing the
paper-style log-time tables and the observed crossover.

Run with::

    python examples/algorithm_comparison.py
"""

from repro.bench import run_sweep
from repro.datasets import quest_baskets, thrombin_like


def main() -> None:
    # ------------------------------------------------------------------
    # Regime 1: few transactions, very many items (Figure 7 shape).
    # ------------------------------------------------------------------
    db = thrombin_like(n_records=64, n_features=2600, seed=2)
    print(f"[thrombin-like] {db.n_transactions} transactions, {db.n_items} items")
    sweep = run_sweep(
        db,
        smin_values=[48, 44, 40],
        algorithms=["ista", "carpenter-table", "fpgrowth", "lcm"],
        dataset="thrombin-like",
        time_limit=30.0,
    )
    print(sweep.format_table("seconds"))
    print("\nlog10(time) — the paper's axis:")
    print(sweep.format_table("log"))
    winner = sweep.winner(min(sweep.smin_values))
    print(f"\nfastest at the lowest support: {winner}")

    # ------------------------------------------------------------------
    # Regime 2: many transactions, few items — the tables turn.
    # ------------------------------------------------------------------
    db = quest_baskets(n_transactions=1500, n_items=80, seed=4)
    print(f"\n[market baskets] {db.n_transactions} transactions, {db.n_items} items")
    sweep = run_sweep(
        db,
        smin_values=[300, 150, 75],
        algorithms=["ista", "fpgrowth", "lcm", "eclat"],
        dataset="baskets",
        time_limit=30.0,
    )
    print(sweep.format_table("seconds"))
    winner = sweep.winner(min(sweep.smin_values))
    print(f"\nfastest at the lowest support: {winner} "
          "(enumeration wins in this regime, as the paper explains)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Gene expression analysis, as in Section 4 of the paper.

Generates a compendium-style log-expression matrix, discretises it with
the paper's ±0.2 rule, and mines it in *both* orientations:

* conditions as transactions (many items, few transactions) — the
  regime the intersection algorithms IsTa and Carpenter target;
* genes as transactions (many transactions, few items) — the regime
  where classic enumeration miners shine.

Run with::

    python examples/gene_expression_analysis.py
"""

import time

from repro import OperationCounters, generate_rules, mine
from repro.data.transforms import expression_to_database
from repro.datasets import synthetic_expression_matrix


def main() -> None:
    # A scaled-down compendium: 800 genes under 120 conditions with
    # planted co-regulation modules.
    values = synthetic_expression_matrix(
        n_genes=800,
        n_conditions=120,
        n_modules=12,
        module_gene_frac=0.02,
        module_condition_frac=0.08,
        signal=0.4,
        noise_sd=0.1,
        seed=42,
    )
    print(f"expression matrix: {values.shape[0]} genes x {values.shape[1]} conditions")

    # ------------------------------------------------------------------
    # Orientation 1: conditions as transactions (the paper's hard case).
    # Items are (gene, "+") / (gene, "-") pairs.
    # ------------------------------------------------------------------
    db = expression_to_database(values, orientation="conditions-as-transactions")
    print(f"\n[conditions as transactions] {db.n_transactions} transactions, "
          f"{db.n_items} items, density {db.density():.3f}")

    smin = 8
    counters = OperationCounters()
    start = time.perf_counter()
    closed = mine(db, smin, algorithm="ista", counters=counters)
    elapsed = time.perf_counter() - start
    print(f"ista: {len(closed)} closed sets at smin={smin} in {elapsed:.2f}s "
          f"(tree peak {counters.repository_peak} nodes, "
          f"{counters.items_eliminated} items pruned)")

    # The largest closed sets are candidate co-expression signatures:
    # genes that respond identically across >= smin conditions.
    from repro.data import itemset
    biggest = max(closed.masks(), key=itemset.size)
    genes = closed.item_labels and [db.item_labels[i] for i in itemset.to_indices(biggest)]
    print(f"largest signature: {itemset.size(biggest)} gene/direction items, "
          f"support {closed[biggest]}; first five: {db.decode(biggest)[:5]}")

    # ------------------------------------------------------------------
    # Orientation 2: genes as transactions — association rules between
    # experimental conditions.
    # ------------------------------------------------------------------
    db_genes = expression_to_database(values, orientation="genes-as-transactions")
    print(f"\n[genes as transactions] {db_genes.n_transactions} transactions, "
          f"{db_genes.n_items} items")

    smin_genes = max(2, int(0.02 * db_genes.n_transactions))
    closed_genes = mine(db_genes, smin_genes, algorithm="fpgrowth")
    print(f"fpclose: {len(closed_genes)} closed sets at smin={smin_genes}")

    print("\ncondition-association rules (confidence >= 0.9):")
    shown = 0
    for rule in generate_rules(closed_genes, db_genes.n_transactions, min_confidence=0.9):
        print(f"  {rule.labeled(db_genes.item_labels)}")
        shown += 1
        if shown >= 8:
            break
    if not shown:
        print("  (none at this threshold)")


if __name__ == "__main__":
    main()

"""Sharded multiprocess mining with a provably-exact merge.

The search space is split into independent shards, each mined in its
own worker process by the ordinary serial miners, and the shard outputs
are merged with a re-verification pass against the *full* database —
so the parallel result is provably identical to the serial one, not
merely plausibly so.

Two sharding schemes, selected by ``shard=``:

* ``"items"`` — split by the *minimum item* of the reported sets.  The
  shard of item group ``G = [i0, i1)`` is the sub-database

      ``D_G = { t & high(i0) : t in D, t ∩ G ≠ ∅ }``

  where ``high(i0)`` masks away all items below ``i0``.  For a set
  ``S`` with minimum item ``i ∈ G``, every transaction containing ``S``
  contains ``i``, hence survives into the shard, and the masking keeps
  all of ``S``'s items — so ``S``'s cover (as a set of transaction
  indices) and therefore its support are *identical* in ``D_G`` and
  ``D``.  If ``S`` is additionally closed in ``D``, intersecting its
  cover inside the shard yields ``closure(S) & high(i0) = S``, so
  ``S`` is closed frequent in the shard as well: no shard misses any
  of its sets.  The natural fit for the enumeration miners, which
  already branch on the first item.

* ``"transactions"`` — split by the *minimum covering transaction*.
  The shard of transaction block ``W = [b, e)`` is the suffix database

      ``D_W = { t_j & U_W : j >= b }``,   ``U_W = ⋃_{b <= j < e} t_j``.

  A closed set ``S`` whose smallest covering tid lies in ``W`` is a
  subset of some block transaction, hence ``S ⊆ U_W``; its covering
  transactions all have index ``>= b`` and keep ``S`` under the
  masking, so again cover and support carry over exactly, and
  intersecting the cover inside the shard gives ``S`` back.  The
  natural fit for the Carpenter family, which enumerates transaction
  sets in index order.

Either way a shard can also report *extra* sets (sets whose closure in
the full database gains items the shard masked away, or duplicates
across transaction blocks).  The merge therefore re-derives every
candidate against the full database — recompute the cover, recompute
the support, recompute the closure — and keeps exactly the closed
frequent sets.  Soundness comes from the verification, completeness
from the shard proofs above; together they pin the merged output to
the serial answer.

Workers are governed by per-worker :class:`~repro.runtime.RunGuard`
budgets (``timeout`` / ``memory_limit_mb`` apply to each shard
independently).  An interrupted shard contributes its anytime partial
result; ``on_partial`` decides whether the driver then raises (with
the merged partial attached, like the serial front door) or returns
the partial merge marked ``interrupted``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from .data import itemset
from .data.database import TransactionDatabase
from .kernels import resolve_backend
from .mining import ALGORITHMS, _CLOSED_ONLY, _resolve_algorithm, _validate_smin, mine
from .obs import Probe, Tracer, resolve_probe
from .result import MiningResult
from .runtime import MiningInterrupted

__all__ = ["mine_parallel", "ShardOutcome", "plan_shards", "map_in_processes"]

#: Shards per worker: small multiple so a slow shard does not leave
#: the pool idle, without drowning the run in per-shard overhead.
_SHARDS_PER_WORKER = 4


class ShardOutcome:
    """What one shard produced: status, pairs, and provenance.

    ``status`` is one of ``"ok"`` (shard mined to completion),
    ``"interrupted"`` (per-worker guard tripped; ``pairs`` holds the
    anytime partial, possibly empty) or ``"crashed"`` (the worker
    process died; synthesised by the parent, ``pairs`` empty).

    ``metrics`` is the worker-local metrics snapshot
    (:meth:`repro.obs.MetricsRegistry.snapshot`) when the run was
    probed, else ``None``; the parent folds it in at the join.
    ``trace`` likewise ships the worker tracer's records and wall-clock
    origin (``{"wall": ..., "records": [...]}``), so the parent can
    remap the worker spans onto its own timeline and the merged trace
    renders as one tree.
    """

    __slots__ = ("index", "scheme", "status", "pairs", "error", "metrics",
                 "trace")

    def __init__(
        self,
        index: int,
        scheme: str,
        status: str,
        pairs: List[Tuple[int, int]],
        error: Optional[str] = None,
        metrics: Optional[Dict] = None,
        trace: Optional[Dict] = None,
    ) -> None:
        self.index = index
        self.scheme = scheme
        self.status = status
        self.pairs = pairs
        self.error = error
        self.metrics = metrics
        self.trace = trace

    def __repr__(self) -> str:
        return (
            f"ShardOutcome(index={self.index}, scheme={self.scheme!r}, "
            f"status={self.status!r}, pairs={len(self.pairs)})"
        )


def plan_shards(
    db: TransactionDatabase, scheme: str, n_shards: int
) -> List[Tuple[int, int]]:
    """Split the search space into ``[start, end)`` index ranges.

    For ``scheme="items"`` the ranges partition the item codes, for
    ``scheme="transactions"`` the transaction indices.  Ranges are
    balanced by count; empty databases yield no shards.
    """
    total = db.n_items if scheme == "items" else db.n_transactions
    n_shards = max(1, min(n_shards, total))
    if total == 0:
        return []
    bounds = [round(i * total / n_shards) for i in range(n_shards + 1)]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(n_shards)
        if bounds[i] < bounds[i + 1]
    ]


def _shard_masks(
    db: TransactionDatabase, scheme: str, start: int, end: int
) -> List[int]:
    """The shard sub-database for one planned range, as transaction masks."""
    if scheme == "items":
        group = ((1 << end) - 1) ^ ((1 << start) - 1)
        high = ~((1 << start) - 1)
        return [t & high for t in db.transactions if t & group]
    union = 0
    for j in range(start, end):
        union |= db.transactions[j]
    return [t & union for t in db.transactions[start:]]


def _worker_trace(probe: Optional[Probe]) -> Optional[Dict]:
    """The picklable tracer payload a probed worker ships home."""
    if probe is None:
        return None
    return {"wall": probe.tracer.wall, "records": list(probe.tracer.records)}


def _shard_worker(payload: Dict) -> ShardOutcome:
    """Mine one shard (runs in a worker process; must stay top-level)."""
    db = TransactionDatabase.from_masks(payload["masks"], payload["n_items"])
    # Each probed worker gets its own registry; the snapshot (plain
    # dicts, hence picklable) travels home in the outcome and is merged
    # by the parent probe at the join.  The worker tracer inherits the
    # parent's trace context, so its spans attach under the span that
    # was open at fan-out.
    probe = None
    if payload.get("probe"):
        context = payload.get("trace") or {}
        probe = Probe(
            tracer=Tracer(
                trace_id=context.get("trace_id"),
                parent_id=context.get("parent_id"),
            )
        )
    try:
        result = mine(
            db,
            payload["smin"],
            algorithm=payload["algorithm"],
            target=payload["target"],
            backend=payload["backend"],
            timeout=payload["timeout"],
            memory_limit_mb=payload["memory_limit_mb"],
            probe=probe,
            **payload["options"],
        )
    except MiningInterrupted as exc:
        pairs = list(exc.partial.items()) if exc.partial is not None else []
        return ShardOutcome(
            payload["index"],
            payload["scheme"],
            "interrupted",
            pairs,
            str(exc),
            metrics=probe.metrics.snapshot() if probe is not None else None,
            trace=_worker_trace(probe),
        )
    return ShardOutcome(
        payload["index"],
        payload["scheme"],
        "ok",
        list(result.items()),
        metrics=probe.metrics.snapshot() if probe is not None else None,
        trace=_worker_trace(probe),
    )


def _verify_candidates(
    db: TransactionDatabase,
    masks: Sequence[int],
    smin: int,
    kernel,
    require_closed: bool,
) -> Dict[int, int]:
    """Re-derive every candidate against the full database.

    Recomputes cover and support from scratch and, when
    ``require_closed``, the closure of the cover; only closed frequent
    sets survive.  This is what makes the merge *provably* equal to
    the serial result: candidates are evidence, not answers.
    """
    supports: Dict[int, int] = {}
    trans_table = (
        kernel.pack(db.transactions, db.n_items) if kernel.vectorized else None
    )
    for mask in masks:
        if not mask:
            continue
        cover = db.cover(mask)
        support = itemset.size(cover)
        if support < smin:
            continue
        if require_closed:
            if trans_table is not None:
                closure = kernel.intersect_selected(trans_table, cover)
            else:
                closure = -1
                remaining = cover
                while remaining:
                    low = remaining & -remaining
                    closure &= db.transactions[low.bit_length() - 1]
                    remaining ^= low
            if closure != mask:
                continue
        supports[mask] = support
    return supports


def mine_parallel(
    db: TransactionDatabase,
    smin: float,
    algorithm: str = "ista",
    target: str = "closed",
    n_workers: Optional[int] = None,
    shard: str = "auto",
    backend=None,
    timeout: Optional[float] = None,
    memory_limit_mb: Optional[float] = None,
    on_partial: str = "raise",
    probe=None,
    **options,
) -> MiningResult:
    """Mine closed frequent item sets across worker processes.

    Parameters
    ----------
    db, smin, algorithm, target:
        As for :func:`repro.mining.mine`.  ``target`` must be
        ``"closed"`` or ``"maximal"`` — the sharded merge re-verifies
        closedness, which has no analogue for ``target="all"``.
    n_workers:
        Worker processes (default ``os.cpu_count()``).  ``1`` runs the
        shards inline in this process — same code path, no pickling —
        which is also the fallback when only one shard is planned.
    shard:
        ``"items"``, ``"transactions"``, or ``"auto"`` (transactions
        for the Carpenter/intersection family, items for the
        enumeration miners).  See the module docstring for the two
        schemes and their exactness proofs.
    backend:
        Kernel backend, as for :func:`repro.mining.mine`; workers
        resolve it by name, the merge verification uses it directly.
    timeout, memory_limit_mb:
        Per-worker :class:`~repro.runtime.RunGuard` budgets, applied to
        each shard independently.
    on_partial:
        ``"raise"`` (default) raises :class:`MiningInterrupted` with
        the merged partial attached when any shard was interrupted;
        ``"return"`` returns the partial merge marked
        ``interrupted=True``.  Every surviving set is genuinely closed
        frequent with exact support either way — interruption only
        costs completeness.
    probe:
        Optional :class:`repro.obs.Probe`.  Each worker runs its own
        registry and ships a snapshot home in its
        :class:`ShardOutcome`; the parent folds every snapshot into
        this probe at the join (counters sum, gauges max, histograms
        merge bucket-wise).  Note that shard counter totals measure the
        *sharded* computation — shards mine masked sub-databases, so
        their sums need not equal a serial run's counts (see
        ``docs/observability.md``).
    options:
        Algorithm-specific options, forwarded to every shard.
    """
    if target not in ("closed", "maximal"):
        raise ValueError(
            f"mine_parallel target must be 'closed' or 'maximal', got {target!r}"
        )
    if shard not in ("auto", "items", "transactions"):
        raise ValueError(
            f"shard must be 'auto', 'items' or 'transactions', got {shard!r}"
        )
    if on_partial not in ("raise", "return"):
        raise ValueError(f"on_partial must be 'raise' or 'return', got {on_partial!r}")
    algorithm = _resolve_algorithm(algorithm, db, target)
    smin = _validate_smin(smin, db.n_transactions)
    obs = resolve_probe(probe)
    kernel = resolve_backend(backend)
    if shard == "auto":
        shard = "transactions" if algorithm in _CLOSED_ONLY else "items"
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    if n_workers < 1:
        raise ValueError(f"n_workers must be at least 1, got {n_workers}")

    if db.n_transactions == 0:
        return MiningResult({}, db.item_labels, f"{algorithm}+parallel", smin)

    with obs.phase("plan", algorithm=algorithm, scheme=shard, workers=n_workers):
        ranges = plan_shards(db, shard, n_workers * _SHARDS_PER_WORKER)
        payloads = [
            {
                "index": index,
                "scheme": shard,
                "masks": _shard_masks(db, shard, start, end),
                "n_items": db.n_items,
                "smin": smin,
                "algorithm": algorithm,
                # Workers always mine the closed family; maximal filtering
                # needs the merged closed family, so it happens after merge.
                "target": "closed",
                "backend": kernel.name,
                "timeout": timeout,
                "memory_limit_mb": memory_limit_mb,
                "probe": obs.active,
                "options": options,
            }
            for index, (start, end) in enumerate(ranges)
        ]
    obs.count("parallel.shards", len(payloads))

    with obs.phase("mine", algorithm=algorithm, shards=len(payloads)):
        # Capture the trace context *inside* the mine span so worker
        # spans attach under it in the merged tree.
        context = obs.trace_context()
        if context is not None:
            for payload in payloads:
                payload["trace"] = context
        outcomes = _run_shards(payloads, n_workers)

    with obs.phase("merge", algorithm=algorithm):
        for outcome in outcomes:
            obs.merge_worker(outcome.metrics, outcome.index, trace=outcome.trace)
        candidates: Dict[int, None] = {}
        for outcome in outcomes:
            for mask, _ in outcome.pairs:
                candidates[mask] = None
        supports = _verify_candidates(
            db, list(candidates), smin, obs.wrap_kernel(kernel), require_closed=True
        )

    result = MiningResult(supports, db.item_labels, f"{algorithm}+parallel", smin)
    if target == "maximal":
        result = result.maximal()
        result.algorithm = f"{algorithm}+parallel-maximal"

    interrupted = [o for o in outcomes if o.status == "interrupted"]
    crashed = [o for o in outcomes if o.status == "crashed"]
    if interrupted:
        obs.count("parallel.shards_interrupted", len(interrupted))
    if crashed:
        obs.count("parallel.shards_crashed", len(crashed))
    if crashed:
        details = "; ".join(
            f"shard {o.index}: {o.error or 'worker process died'}" for o in crashed
        )
        raise RuntimeError(f"{len(crashed)} shard worker(s) crashed: {details}")
    if interrupted:
        if on_partial == "return":
            result.interrupted = True
            return result
        exc = MiningInterrupted(
            f"{len(interrupted)} of {len(outcomes)} shards interrupted",
            algorithm=f"{algorithm}+parallel",
        )
        exc.attach_partial(lambda: result, algorithm=f"{algorithm}+parallel")
        raise exc
    return result


def _fork_pool(max_workers: int) -> ProcessPoolExecutor:
    """A fork-context process pool (spawn fallback where fork is absent).

    Fork keeps the interpreter state out of pickled spawn arguments;
    the task payloads themselves are always pickled.
    """
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)


def map_in_processes(worker, payloads: Sequence, n_workers: int) -> List:
    """Apply a top-level ``worker`` to every payload across processes.

    Results come back in payload order.  With ``n_workers <= 1`` or a
    single payload the work runs inline in this process — same code
    path, no pickling.  A worker exception propagates to the caller.
    Shared by the sharded miner and the serving layer's parallel
    snapshot builds.
    """
    payloads = list(payloads)
    if n_workers <= 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    with _fork_pool(min(n_workers, len(payloads))) as pool:
        return list(pool.map(worker, payloads))


def _run_shards(payloads: List[Dict], n_workers: int) -> List[ShardOutcome]:
    """Execute the shard payloads, inline or across a process pool.

    A worker that dies (rather than raising) is reported as a
    ``"crashed"`` outcome for its shard; the remaining shards are still
    collected, so one bad shard does not discard the others' work.
    """
    if n_workers <= 1 or len(payloads) <= 1:
        return [_shard_worker(payload) for payload in payloads]
    outcomes: List[Optional[ShardOutcome]] = [None] * len(payloads)
    with _fork_pool(min(n_workers, len(payloads))) as pool:
        futures = {
            pool.submit(_shard_worker, payload): payload["index"]
            for payload in payloads
        }
        for future, index in futures.items():
            try:
                outcome = future.result()
            except MiningInterrupted:
                raise
            except Exception as exc:  # BrokenProcessPool, pickling, ...
                outcome = ShardOutcome(
                    index, payloads[index]["scheme"], "crashed", [], repr(exc)
                )
            outcomes[index] = outcome
    return [outcome for outcome in outcomes if outcome is not None]

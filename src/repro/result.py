"""Result container shared by every miner.

A :class:`MiningResult` is an immutable mapping from item sets (bitmask
integers) to their supports, remembering the item labels of the database
it was mined from so results can be displayed and exported in user
terms.  All miners return this type, which makes differential testing
("every algorithm yields the same family") a single equality check.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .data import itemset

__all__ = ["MiningResult"]


class MiningResult(Mapping[int, int]):
    """Mapping ``item set bitmask -> support``.

    Iteration order is canonical: ascending set size, then ascending
    bitmask — so printed output is stable across algorithms and runs.
    """

    __slots__ = (
        "_supports",
        "item_labels",
        "algorithm",
        "smin",
        "fallback_path",
        "interrupted",
    )

    def __init__(
        self,
        supports: Mapping[int, int],
        item_labels: Optional[Sequence[Hashable]] = None,
        algorithm: str = "",
        smin: int = 1,
    ) -> None:
        for mask, support in supports.items():
            if mask < 0:
                raise ValueError(f"negative item set mask {mask}")
            if support < 1:
                raise ValueError(
                    f"support of {itemset.to_indices(mask)} is {support}; "
                    f"reported supports must be positive"
                )
        self._supports: Dict[int, int] = dict(supports)
        self.item_labels = list(item_labels) if item_labels is not None else None
        self.algorithm = algorithm
        self.smin = smin
        #: Algorithms attempted before this result, in order, when the
        #: run degraded along a fallback chain (empty for a direct run).
        self.fallback_path: Tuple[str, ...] = ()
        #: True when this is a partial (anytime) result salvaged from an
        #: interrupted run rather than a complete family.
        self.interrupted: bool = False

    # -- Mapping interface ---------------------------------------------

    def __getitem__(self, mask: int) -> int:
        return self._supports[mask]

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._supports, key=lambda m: (itemset.size(m), m)))

    def __len__(self) -> int:
        return len(self._supports)

    def __contains__(self, mask: object) -> bool:
        return mask in self._supports

    def __eq__(self, other: object) -> bool:
        """Equality is purely on the (item set, support) family."""
        if isinstance(other, MiningResult):
            return self._supports == other._supports
        if isinstance(other, Mapping):
            return self._supports == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        head = f"MiningResult({len(self._supports)} item sets"
        if self.algorithm:
            head += f", algorithm={self.algorithm!r}"
        return head + ")"

    # -- Constructors ----------------------------------------------------

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[int, int]],
        item_labels: Optional[Sequence[Hashable]] = None,
        algorithm: str = "",
        smin: int = 1,
    ) -> "MiningResult":
        """Build from ``(mask, support)`` pairs; duplicate masks must agree."""
        supports: Dict[int, int] = {}
        for mask, support in pairs:
            previous = supports.get(mask)
            if previous is not None and previous != support:
                raise ValueError(
                    f"conflicting supports {previous} and {support} for item "
                    f"set {itemset.to_indices(mask)}"
                )
            supports[mask] = support
        return cls(supports, item_labels, algorithm, smin)

    # -- Views -----------------------------------------------------------

    def support_of(self, mask: int, default: Optional[int] = None) -> Optional[int]:
        """Support of an item set, ``default`` if not present."""
        return self._supports.get(mask, default)

    def masks(self) -> List[int]:
        """Item set bitmasks in canonical order."""
        return list(self)

    def labeled(self) -> List[Tuple[Tuple[Hashable, ...], int]]:
        """``(items-as-labels, support)`` pairs in canonical order."""
        labels = self.item_labels
        return [(itemset.canonical_tuple(mask, labels), self._supports[mask]) for mask in self]

    def as_frozensets(self) -> Dict[frozenset, int]:
        """Label-level view keyed by ``frozenset`` — convenient for asserts."""
        labels = self.item_labels
        return {
            frozenset(itemset.canonical_tuple(mask, labels)): support
            for mask, support in self._supports.items()
        }

    def restrict_support(self, smin: int) -> "MiningResult":
        """Sub-family with support at least ``smin``."""
        return MiningResult(
            {m: s for m, s in self._supports.items() if s >= smin},
            self.item_labels,
            self.algorithm,
            smin,
        )

    def maximal(self) -> "MiningResult":
        """Restrict to maximal sets (no proper superset in the family)."""
        masks = sorted(self._supports, key=itemset.size, reverse=True)
        kept: List[int] = []
        for mask in masks:
            if not any(mask != other and mask & ~other == 0 for other in kept):
                kept.append(mask)
        return MiningResult(
            {m: self._supports[m] for m in kept},
            self.item_labels,
            self.algorithm,
            self.smin,
        )

    def total_size(self) -> int:
        """Total number of items across all sets (output volume measure)."""
        return sum(itemset.size(mask) for mask in self._supports)

    def to_lines(self, with_support: bool = True) -> List[str]:
        """FIMI-style output lines, e.g. ``"a c e (4)"``."""
        lines = []
        for labels, support in self.labeled():
            text = " ".join(str(label) for label in labels)
            if with_support:
                text += f" ({support})"
            lines.append(text)
        return lines

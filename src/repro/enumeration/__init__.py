"""Item set enumeration baselines: Apriori, Eclat, FP-growth, LCM."""

from .apriori import mine_apriori
from .eclat import mine_eclat
from .fpgrowth import FPTree, mine_fpgrowth
from .lcm import mine_lcm
from .sam import mine_sam

__all__ = [
    "mine_apriori",
    "mine_eclat",
    "mine_fpgrowth",
    "mine_lcm",
    "mine_sam",
    "FPTree",
]

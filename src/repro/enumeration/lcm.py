"""LCM [20, 21] — closed set enumeration via prefix-preserving closure.

LCM walks the closed sets directly: from a closed set ``P`` with core
item ``core``, every extension item ``e > core`` not in ``P`` yields a
candidate ``Q = closure(P + e)``; ``Q`` is accepted iff the closure did
not add any item below ``e`` that ``P`` lacked (the *prefix-preserving*
condition).  Every closed set has exactly one generating parent under
this rule, so the search needs neither a repository nor duplicate
checks — the property that made LCM the FIMI'04 best implementation.

Closures are computed by intersecting the covering transactions
(single bitmask ANDs here), the honest Python counterpart of LCM's
occurrence-deliver machinery.  With a vectorised kernel backend both
halves of the node expansion are batched: the new covers of the whole
extension range come from one
:meth:`~repro.kernels.base.KernelBackend.intersect_count_rows` call
over the packed tid-mask table, and each closure is one
:meth:`~repro.kernels.base.KernelBackend.intersect_selected`
AND-reduction over the packed transaction table.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..common import finalize, prepare_for_mining
from ..data import itemset
from ..data.database import TransactionDatabase
from ..kernels import resolve_backend
from ..obs import resolve_probe
from ..result import MiningResult
from ..runtime import MiningInterrupted, RunGuard, checker
from ..stats import OperationCounters

__all__ = ["mine_lcm"]


def mine_lcm(
    db: TransactionDatabase,
    smin: int,
    item_order: str = "frequency-ascending",
    counters: Optional[OperationCounters] = None,
    guard: Optional[RunGuard] = None,
    backend=None,
    probe=None,
) -> MiningResult:
    """Mine all closed frequent item sets with LCM.

    ``guard`` is polled at every search node; the closed sets reported
    before an interruption are exact and attached to the exception as
    an anytime result.  ``backend`` selects the set-algebra kernel
    (:mod:`repro.kernels`).
    """
    obs = resolve_probe(probe)
    kernel = obs.wrap_kernel(resolve_backend(backend))
    with obs.phase("recode", algorithm="lcm"):
        prepared, code_map = prepare_for_mining(
            db, smin, item_order=item_order, transaction_order="identity"
        )
    counters = obs.ensure_counters(counters)
    transactions = prepared.transactions
    n = len(transactions)
    n_items = prepared.n_items
    if n == 0 or smin > n:
        obs.record_counters(counters)
        return finalize((), code_map, db, "lcm", smin)

    tid_masks = prepared.vertical()
    all_tids = (1 << n) - 1
    pairs: List[Tuple[int, int]] = []
    check = checker(guard, counters)
    batched = kernel.vectorized
    if batched:
        # Static tables, packed once for the whole run: transactions as
        # item-bit rows (closures) and tid masks as transaction-bit rows
        # (extension covers).
        trans_table = kernel.pack(transactions, n_items)
        tid_table = kernel.pack(tid_masks, n)

        def closure_of(cover: int) -> int:
            counters.intersections += itemset.size(cover)
            return kernel.intersect_selected(trans_table, cover)

    else:

        def closure_of(cover: int) -> int:
            return _closure(transactions, cover, counters)

    root = closure_of(all_tids)
    if root:
        pairs.append((root, n))
        counters.reports += 1

    # Frames: (closed set P, cover tid mask, core item).  Order of
    # exploration is irrelevant — each closed set has a unique parent.
    stack: List[Tuple[int, int, int]] = [(root, all_tids, -1)]
    try:
        with obs.phase("mine", algorithm="lcm", transactions=n):
            while stack:
                closed_set, cover, core = stack.pop()
                counters.recursion_calls += 1
                if batched:
                    extension_items = [
                        item
                        for item in range(core + 1, n_items)
                        if not closed_set >> item & 1
                    ]
                    if not extension_items:
                        continue
                    check()
                    counters.intersections += len(extension_items)
                    # smin pushed down: infrequent extensions settle as
                    # below-threshold sentinels (support -1, cover 0)
                    # and the frequency filter below drops them exactly
                    # as it dropped their fully-counted joints before.
                    new_covers, supports = kernel.intersect_count_rows_bounded(
                        tid_table, extension_items, cover, smin
                    )
                    for item, new_cover, support in zip(
                        extension_items, new_covers, supports
                    ):
                        if support < smin:
                            continue
                        candidate = closure_of(new_cover)
                        lower = (1 << item) - 1
                        counters.containment_checks += 1
                        if candidate & lower != closed_set & lower:
                            continue
                        pairs.append((candidate, support))
                        counters.reports += 1
                        stack.append((candidate, new_cover, item))
                    continue
                for item in range(core + 1, n_items):
                    check()
                    if closed_set >> item & 1:
                        continue
                    counters.intersections += 1
                    new_cover = cover & tid_masks[item]
                    support = itemset.size(new_cover)
                    if support < smin:
                        continue
                    candidate = closure_of(new_cover)
                    # Prefix-preserving check: the closure must not reach
                    # below ``item`` beyond what the parent already had.
                    lower = (1 << item) - 1
                    counters.containment_checks += 1
                    if candidate & lower != closed_set & lower:
                        continue
                    pairs.append((candidate, support))
                    counters.reports += 1
                    stack.append((candidate, new_cover, item))
    except MiningInterrupted as exc:
        exc.attach_partial(
            lambda: finalize(pairs, code_map, db, "lcm", smin),
            algorithm="lcm",
        )
        obs.record_counters(counters)
        raise

    with obs.phase("report", algorithm="lcm"):
        result = finalize(pairs, code_map, db, "lcm", smin)
    obs.record_counters(counters)
    return result


def _closure(
    transactions: List[int], cover: int, counters: OperationCounters
) -> int:
    """Intersection of the transactions indexed by ``cover``."""
    result = -1  # all-ones: neutral element, masked down by the first AND
    remaining = cover
    while remaining:
        low = remaining & -remaining
        counters.intersections += 1
        result &= transactions[low.bit_length() - 1]
        if not result:
            break
        remaining ^= low
    return result if result != -1 else 0

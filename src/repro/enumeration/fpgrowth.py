"""FP-growth [11] and FP-close [9, 10].

The FP-tree combines a compressed horizontal representation (a prefix
tree of transactions, most frequent item on top) with a vertical one
(per-item node links across branches) — the hybrid the paper describes
in Section 2.2.  Mining proceeds bottom-up through the header table:
for each item, the conditional pattern base is collected via the node
links, perfect extensions are detected as items whose conditional count
equals the prefix support, and a conditional FP-tree drives the
recursion.

``target="closed"`` adds the FPclose machinery: perfect extensions are
absorbed into the prefix and a support-bucketed subsumption check
against already-found closed sets prunes non-closed prefixes with their
entire subtrees (see :mod:`repro.enumeration.closedness` for why the
processing order makes that sound).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common import finalize, prepare_for_mining
from ..data.database import TransactionDatabase
from ..kernels import resolve_backend
from ..obs import resolve_probe
from ..result import MiningResult
from ..runtime import MiningInterrupted, RunGuard, checker
from ..stats import OperationCounters
from .closedness import ClosedSetStore

__all__ = ["mine_fpgrowth", "FPTree"]


class _FPNode:
    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: int, parent: Optional["_FPNode"]) -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: Dict[int, "_FPNode"] = {}
        self.link: Optional["_FPNode"] = None


class FPTree:
    """An FP-tree over prepared item codes.

    Paths store items in *descending* code order (prepared code grows
    with frequency, so the most frequent item is nearest the root);
    the header table maps each item to its total count and the head of
    its node-link chain.
    """

    __slots__ = ("root", "header", "counts", "counters")

    def __init__(self, counters: OperationCounters) -> None:
        self.root = _FPNode(-1, None)
        self.header: Dict[int, _FPNode] = {}
        self.counts: Dict[int, int] = {}
        self.counters = counters

    @classmethod
    def build(
        cls,
        weighted_transactions: List[Tuple[int, int]],
        smin: int,
        counters: OperationCounters,
    ) -> "FPTree":
        """Build a tree from ``(item mask, multiplicity)`` pairs.

        Items with total weighted count below ``smin`` are dropped
        (they can never appear in a frequent set of this branch).
        """
        totals: Dict[int, int] = {}
        for mask, weight in weighted_transactions:
            remaining = mask
            while remaining:
                low = remaining & -remaining
                item = low.bit_length() - 1
                totals[item] = totals.get(item, 0) + weight
                remaining ^= low
        keep = {item for item, count in totals.items() if count >= smin}
        tree = cls(counters)
        tree.counts = {item: totals[item] for item in keep}
        for mask, weight in weighted_transactions:
            items = [
                item for item in _descending_items(mask) if item in keep
            ]
            tree._insert(items, weight)
        return tree

    def _insert(self, items: List[int], weight: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                child.link = self.header.get(item)
                self.header[item] = child
                self.counters.nodes_created += 1
            child.count += weight
            node = child

    def pattern_base(self, item: int) -> List[Tuple[int, int]]:
        """Conditional pattern base of ``item``: ``(path mask, count)``."""
        paths = []
        node = self.header.get(item)
        while node is not None:
            self.counters.node_visits += 1
            if node.count:
                mask = 0
                ancestor = node.parent
                while ancestor is not None and ancestor.item >= 0:
                    mask |= 1 << ancestor.item
                    ancestor = ancestor.parent
                if mask:
                    paths.append((mask, node.count))
            node = node.link
        return paths


def mine_fpgrowth(
    db: TransactionDatabase,
    smin: int,
    target: str = "closed",
    item_order: str = "frequency-ascending",
    counters: Optional[OperationCounters] = None,
    guard: Optional[RunGuard] = None,
    backend=None,
    probe=None,
) -> MiningResult:
    """Mine frequent item sets with FP-growth / FP-close.

    ``target`` is one of ``"all"``, ``"closed"``, ``"maximal"``.
    ``guard`` is polled at every search node; the sets found before an
    interruption (exact supports; genuinely closed for the closed
    target) are attached to the exception as an anytime result.
    ``backend`` is accepted for API uniformity (validated, not used:
    FP-growth's hot path is conditional-tree construction, a linked
    structure with no batched set-algebra counterpart).
    """
    if target not in ("all", "closed", "maximal"):
        raise ValueError(f"unknown target {target!r}")
    resolve_backend(backend)
    obs = resolve_probe(probe)
    with obs.phase("recode", algorithm="fpgrowth"):
        prepared, code_map = prepare_for_mining(
            db, smin, item_order=item_order, transaction_order="identity"
        )
    counters = obs.ensure_counters(counters)
    check = checker(guard, counters)

    weighted = [(mask, 1) for mask in prepared.transactions if mask]
    tree = FPTree.build(weighted, smin, counters)

    if target == "all":
        pairs: List[Tuple[int, int]] = []
        try:
            with obs.phase("mine", algorithm="fpgrowth", target=target):
                _mine_all(tree, smin, pairs, counters, check)
        except MiningInterrupted as exc:
            exc.attach_partial(
                lambda: finalize(pairs, code_map, db, "fpgrowth", smin),
                algorithm="fpgrowth",
            )
            obs.record_counters(counters)
            raise
        with obs.phase("report", algorithm="fpgrowth"):
            result = finalize(pairs, code_map, db, "fpgrowth", smin)
        obs.record_counters(counters)
        return result

    store = ClosedSetStore(counters)
    try:
        with obs.phase("mine", algorithm="fpgrowth", target=target):
            _mine_closed(tree, smin, store, counters, check)
    except MiningInterrupted as exc:
        exc.attach_partial(
            lambda: finalize(store.pairs(), code_map, db, "fpclose", smin),
            algorithm="fpgrowth",
        )
        obs.record_counters(counters)
        raise
    with obs.phase("report", algorithm="fpgrowth"):
        result = finalize(store.pairs(), code_map, db, "fpclose", smin)
        if target == "maximal":
            result = result.maximal()
            result.algorithm = "fpmax"
    obs.record_counters(counters)
    return result


def _mine_all(
    tree: FPTree,
    smin: int,
    pairs: List[Tuple[int, int]],
    counters: OperationCounters,
    check,
) -> None:
    """Plain FP-growth: every frequent item set, no closedness logic."""
    stack = [(tree, 0)]
    while stack:
        current, suffix = stack.pop()
        for item in sorted(current.counts):
            check()
            counters.recursion_calls += 1
            support = current.counts[item]
            candidate = suffix | (1 << item)
            pairs.append((candidate, support))
            counters.reports += 1
            base = current.pattern_base(item)
            if base:
                conditional = FPTree.build(base, smin, counters)
                if conditional.counts:
                    stack.append((conditional, candidate))


def _mine_closed(
    tree: FPTree,
    smin: int,
    store: ClosedSetStore,
    counters: OperationCounters,
    check,
) -> None:
    """FPclose: perfect-extension absorption + subsumption pruning.

    Resumable stack frames keep strict depth-first order (a branch's
    subtree completes before its right siblings), which the
    subsumption check requires.
    """
    stack: List[List] = [[tree, 0, sorted(tree.counts), 0]]
    while stack:
        check()
        frame = stack[-1]
        current, suffix, order, index = frame
        if index >= len(order):
            stack.pop()
            continue
        frame[3] = index + 1
        item = order[index]
        counters.recursion_calls += 1
        support = current.counts[item]
        candidate = suffix | (1 << item)

        base = current.pattern_base(item)
        # Perfect extensions: items occurring in every transaction of
        # the conditional database (conditional count == support).
        conditional_counts: Dict[int, int] = {}
        for mask, weight in base:
            remaining = mask
            while remaining:
                low = remaining & -remaining
                other = low.bit_length() - 1
                conditional_counts[other] = conditional_counts.get(other, 0) + weight
                remaining ^= low
        perfect = 0
        for other, count in conditional_counts.items():
            if count == support:
                perfect |= 1 << other
        candidate |= perfect

        counters.containment_checks += 1
        if store.subsumed(candidate, support):
            # Closure reaches into an earlier branch: neither this
            # prefix nor anything below it can be closed.
            continue
        store.add(candidate, support)
        counters.reports += 1

        if perfect:
            base = [(mask & ~perfect, weight) for mask, weight in base]
        base = [(mask, weight) for mask, weight in base if mask]
        if base:
            conditional = FPTree.build(base, smin, counters)
            if conditional.counts:
                stack.append([conditional, candidate, sorted(conditional.counts), 0])


def _descending_items(mask: int) -> List[int]:
    items = []
    while mask:
        item = mask.bit_length() - 1
        items.append(item)
        mask ^= 1 << item
    return items

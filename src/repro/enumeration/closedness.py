"""Support-bucketed closed-set store for enumeration miners.

Both FP-close and the closed variant of Eclat (the CHARM scheme) decide
closedness through a subsumption check: a candidate set ``X`` with
support ``s`` is *not* closed iff some already-found closed set with
the same support contains it.  With the divide-and-conquer item order
used by all enumeration miners here (branch items in ascending code
order, extensions strictly above the branch item) the check is sound,
because any closure item *below* the current branch was handled in an
earlier, fully-explored branch, and any closure item *above* it is a
perfect extension that the miners absorb into the candidate before the
check (see ``repro/enumeration/eclat.py``).

Buckets are keyed by support, so only sets of exactly the candidate's
support are scanned — the same idea as the two-level CFI-tree index of
FPclose.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..stats import OperationCounters

__all__ = ["ClosedSetStore"]


class ClosedSetStore:
    """Closed sets found so far, bucketed by support."""

    __slots__ = ("_buckets", "counters")

    def __init__(self, counters: OperationCounters) -> None:
        self._buckets: Dict[int, List[int]] = {}
        self.counters = counters

    def subsumed(self, mask: int, support: int) -> bool:
        """Is there a stored superset of ``mask`` with the same support?"""
        bucket = self._buckets.get(support)
        if not bucket:
            return False
        counters = self.counters
        for stored in bucket:
            counters.containment_checks += 1
            if mask & ~stored == 0:
                return True
        return False

    def add(self, mask: int, support: int) -> None:
        """Store a set the caller has established to be closed."""
        self._buckets.setdefault(support, []).append(mask)
        self.counters.observe_repository_size(len(self))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """All stored ``(mask, support)`` pairs."""
        for support, bucket in self._buckets.items():
            for mask in bucket:
                yield mask, support

"""Eclat [22] — depth-first search on a vertical representation.

The divide-and-conquer scheme of Section 2.2 of the paper, with the
database held vertically: each item carries the bitmask of the indices
of the transactions containing it, and extending a prefix by an item is
one AND of tid masks.

Three targets:

* ``"all"`` — every frequent item set (plain recursion);
* ``"closed"`` — the CHARM scheme: perfect extensions are absorbed
  into the prefix, and a support-bucketed subsumption check against the
  already-found closed sets prunes non-closed prefixes together with
  their entire subtrees;
* ``"maximal"`` — closed sets filtered to maximal ones.

The extension step — intersect the current tid mask with every
remaining candidate's and count the survivors — is the hot loop.  With
a vectorised backend the sibling family lives as a *resident* packed
table (:meth:`repro.kernels.base.KernelBackend.pack` once at the root),
each node narrows it with one table-in/table-out
:meth:`~repro.kernels.base.KernelBackend.intersect_count_table_bounded`
call (``smin`` pushed down: infrequent joints settle early and never
leave the packed domain), and the surviving rows become the child's
table via :meth:`~repro.kernels.base.KernelBackend.select_rows` —
tid masks cross the int boundary only once per node, for the
intersection probe itself.  Note that for a candidate
``joint ⊆ tids``, ``joint == tids`` iff their popcounts agree, which is
how the batched closed path detects perfect extensions from the
support vector alone (a below-``smin`` sentinel can never equal the
node support, which is ``>= smin`` by construction).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..common import finalize, prepare_for_mining
from ..data import itemset
from ..data.database import TransactionDatabase
from ..kernels import KernelBackend, resolve_backend
from ..obs import resolve_probe
from ..result import MiningResult
from ..runtime import MiningInterrupted, RunGuard, checker
from ..stats import OperationCounters
from .closedness import ClosedSetStore

__all__ = ["mine_eclat"]


def mine_eclat(
    db: TransactionDatabase,
    smin: int,
    target: str = "closed",
    item_order: str = "frequency-ascending",
    counters: Optional[OperationCounters] = None,
    guard: Optional[RunGuard] = None,
    backend=None,
    probe=None,
) -> MiningResult:
    """Mine frequent item sets with Eclat.

    ``target`` is one of ``"all"``, ``"closed"``, ``"maximal"``.
    ``guard`` is polled at every search node; the sets found before an
    interruption (exact supports; genuinely closed for the closed
    target) are attached to the exception as an anytime result.
    ``backend`` selects the set-algebra kernel (:mod:`repro.kernels`);
    a vectorised backend batches the tid-mask intersections of each
    extension family.
    """
    if target not in ("all", "closed", "maximal"):
        raise ValueError(f"unknown target {target!r}")
    obs = resolve_probe(probe)
    kernel = obs.wrap_kernel(resolve_backend(backend))
    with obs.phase("recode", algorithm="eclat"):
        prepared, code_map = prepare_for_mining(
            db, smin, item_order=item_order, transaction_order="identity"
        )
    counters = obs.ensure_counters(counters)

    tid_masks = prepared.vertical()
    n = prepared.n_transactions
    n_items = prepared.n_items
    items = [
        (code, tid_masks[code])
        for code in range(n_items)
        if itemset.size(tid_masks[code]) >= smin
    ]

    check = checker(guard, counters)
    if target == "all":
        pairs: List[Tuple[int, int]] = []
        try:
            with obs.phase("mine", algorithm="eclat", target=target):
                _mine_all(items, pairs, smin, n, kernel, counters, check)
        except MiningInterrupted as exc:
            exc.attach_partial(
                lambda: finalize(pairs, code_map, db, "eclat", smin),
                algorithm="eclat",
            )
            obs.record_counters(counters)
            raise
        with obs.phase("report", algorithm="eclat"):
            result = finalize(pairs, code_map, db, "eclat", smin)
    else:
        store = ClosedSetStore(counters)
        try:
            with obs.phase("mine", algorithm="eclat", target=target):
                _mine_closed(items, store, smin, n, kernel, counters, check)
        except MiningInterrupted as exc:
            exc.attach_partial(
                lambda: finalize(store.pairs(), code_map, db, "eclat-closed", smin),
                algorithm="eclat",
            )
            obs.record_counters(counters)
            raise
        with obs.phase("report", algorithm="eclat"):
            result = finalize(store.pairs(), code_map, db, "eclat-closed", smin)
            if target == "maximal":
                result = result.maximal()
                result.algorithm = "eclat-maximal"
    obs.record_counters(counters)
    return result


def _mine_all(
    items: List[Tuple[int, int]],
    pairs: List[Tuple[int, int]],
    smin: int,
    n_transactions: int,
    kernel: KernelBackend,
    counters: OperationCounters,
    check,
) -> None:
    """Plain Eclat: stack of (prefix mask, candidate extension list)."""
    if kernel.vectorized:
        _mine_all_tables(items, pairs, smin, n_transactions, kernel, counters, check)
        return
    stack = [(0, items)]
    while stack:
        prefix, extensions = stack.pop()
        for index, (item, tids) in enumerate(extensions):
            check()
            counters.recursion_calls += 1
            support = itemset.size(tids)
            mask = prefix | (1 << item)
            pairs.append((mask, support))
            counters.reports += 1
            tail = extensions[index + 1 :]
            narrowed = []
            for other, other_tids in tail:
                counters.intersections += 1
                joint = tids & other_tids
                if itemset.size(joint) >= smin:
                    narrowed.append((other, joint))
            if narrowed:
                stack.append((mask, narrowed))


def _mine_all_tables(
    items: List[Tuple[int, int]],
    pairs: List[Tuple[int, int]],
    smin: int,
    n_transactions: int,
    kernel: KernelBackend,
    counters: OperationCounters,
    check,
) -> None:
    """Batched plain Eclat over resident packed tid tables.

    Same traversal and output order as the scalar path: frames hold the
    sibling family as a packed table plus the aligned item codes and
    supports, each node narrows the tail with one bounded
    table-in/table-out call, and survivors are gathered into the
    child's table without ever unpacking the tid masks.
    """
    if not items:
        return
    codes = [code for code, _ in items]
    table = kernel.pack([tids for _, tids in items], n_transactions)
    supports = kernel.popcount_rows(table)
    stack = [(0, codes, table, supports)]
    while stack:
        prefix, codes, table, supports = stack.pop()
        for index, item in enumerate(codes):
            check()
            counters.recursion_calls += 1
            support = supports[index]
            mask = prefix | (1 << item)
            pairs.append((mask, support))
            counters.reports += 1
            tail_len = len(codes) - index - 1
            if not tail_len:
                continue
            counters.intersections += tail_len
            tids = kernel.table_row(table, index)
            joint_table, joint_supports = kernel.intersect_count_table_bounded(
                table, tids, smin, start=index + 1
            )
            keep = [
                position
                for position, joint_support in enumerate(joint_supports)
                if joint_support >= smin
            ]
            if keep:
                stack.append(
                    (
                        mask,
                        [codes[index + 1 + position] for position in keep],
                        kernel.select_rows(joint_table, keep),
                        [joint_supports[position] for position in keep],
                    )
                )


def _mine_closed(
    items: List[Tuple[int, int]],
    store: ClosedSetStore,
    smin: int,
    n_transactions: int,
    kernel: KernelBackend,
    counters: OperationCounters,
    check,
) -> None:
    """CHARM-style closed mining.

    Iterative depth-first search with *resumable* frames: a branch's
    whole subtree must be explored before its right siblings, because
    the subsumption check relies on all closed supersets reachable
    through earlier items having been stored already.
    """
    if kernel.vectorized:
        _mine_closed_tables(items, store, smin, n_transactions, kernel, counters, check)
        return
    stack: List[List] = [[0, items, 0]]
    while stack:
        check()
        frame = stack[-1]
        current, extensions, index = frame
        if index >= len(extensions):
            stack.pop()
            continue
        frame[2] = index + 1
        item, tids = extensions[index]
        counters.recursion_calls += 1
        support = itemset.size(tids)
        candidate = current | (1 << item)
        # Absorb perfect extensions: any later item whose tid mask
        # covers this prefix's belongs to the closure.  Items that
        # are not perfect extensions stay extension candidates.
        tail = extensions[index + 1 :]
        narrowed = []
        for other, other_tids in tail:
            counters.intersections += 1
            joint = tids & other_tids
            if joint == tids:
                candidate |= 1 << other
            elif itemset.size(joint) >= smin:
                narrowed.append((other, joint))
        counters.containment_checks += 1
        if store.subsumed(candidate, support):
            # The closure contains an item from an earlier branch;
            # every set in this subtree is likewise non-closed.
            continue
        store.add(candidate, support)
        counters.reports += 1
        if narrowed:
            stack.append([candidate, narrowed, 0])


def _mine_closed_tables(
    items: List[Tuple[int, int]],
    store: ClosedSetStore,
    smin: int,
    n_transactions: int,
    kernel: KernelBackend,
    counters: OperationCounters,
    check,
) -> None:
    """Batched CHARM over resident packed tid tables.

    Identical traversal, closures and output as the scalar path; the
    sibling tid family stays packed across levels.  Every frame support
    is ``>= smin`` by construction, so the bounded call's
    below-threshold sentinel (-1) can never be mistaken for a perfect
    extension (``joint_support == support``).
    """
    if not items:
        return
    codes = [code for code, _ in items]
    table = kernel.pack([tids for _, tids in items], n_transactions)
    supports = kernel.popcount_rows(table)
    stack: List[List] = [[0, codes, table, supports, 0]]
    while stack:
        check()
        frame = stack[-1]
        current, codes, table, supports, index = frame
        if index >= len(codes):
            stack.pop()
            continue
        frame[4] = index + 1
        item = codes[index]
        counters.recursion_calls += 1
        support = supports[index]
        candidate = current | (1 << item)
        tail_len = len(codes) - index - 1
        keep: List[int] = []
        joint_table = None
        joint_supports: List[int] = []
        if tail_len:
            counters.intersections += tail_len
            tids = kernel.table_row(table, index)
            joint_table, joint_supports = kernel.intersect_count_table_bounded(
                table, tids, smin, start=index + 1
            )
            # joint ⊆ tids, so joint == tids iff the popcounts agree.
            for position, joint_support in enumerate(joint_supports):
                if joint_support == support:
                    candidate |= 1 << codes[index + 1 + position]
                elif joint_support >= smin:
                    keep.append(position)
        counters.containment_checks += 1
        if store.subsumed(candidate, support):
            # The closure contains an item from an earlier branch;
            # every set in this subtree is likewise non-closed.
            continue
        store.add(candidate, support)
        counters.reports += 1
        if keep:
            stack.append(
                [
                    candidate,
                    [codes[index + 1 + position] for position in keep],
                    kernel.select_rows(joint_table, keep),
                    [joint_supports[position] for position in keep],
                    0,
                ]
            )

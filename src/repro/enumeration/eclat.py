"""Eclat [22] — depth-first search on a vertical representation.

The divide-and-conquer scheme of Section 2.2 of the paper, with the
database held vertically: each item carries the bitmask of the indices
of the transactions containing it, and extending a prefix by an item is
one AND of tid masks.

Three targets:

* ``"all"`` — every frequent item set (plain recursion);
* ``"closed"`` — the CHARM scheme: perfect extensions are absorbed
  into the prefix, and a support-bucketed subsumption check against the
  already-found closed sets prunes non-closed prefixes together with
  their entire subtrees;
* ``"maximal"`` — closed sets filtered to maximal ones.

The extension step — intersect the current tid mask with every
remaining candidate's and count the survivors — is the hot loop, and it
is exactly the shape of
:meth:`repro.kernels.base.KernelBackend.intersect_count_many`; with a
vectorised backend the whole sibling family is intersected and counted
in one batch call.  Note that for a candidate ``joint ⊆ tids``,
``joint == tids`` iff their popcounts agree, which is how the batched
closed path detects perfect extensions from the support vector alone.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..common import finalize, prepare_for_mining
from ..data import itemset
from ..data.database import TransactionDatabase
from ..kernels import KernelBackend, resolve_backend
from ..obs import resolve_probe
from ..result import MiningResult
from ..runtime import MiningInterrupted, RunGuard, checker
from ..stats import OperationCounters
from .closedness import ClosedSetStore

__all__ = ["mine_eclat"]


def mine_eclat(
    db: TransactionDatabase,
    smin: int,
    target: str = "closed",
    item_order: str = "frequency-ascending",
    counters: Optional[OperationCounters] = None,
    guard: Optional[RunGuard] = None,
    backend=None,
    probe=None,
) -> MiningResult:
    """Mine frequent item sets with Eclat.

    ``target`` is one of ``"all"``, ``"closed"``, ``"maximal"``.
    ``guard`` is polled at every search node; the sets found before an
    interruption (exact supports; genuinely closed for the closed
    target) are attached to the exception as an anytime result.
    ``backend`` selects the set-algebra kernel (:mod:`repro.kernels`);
    a vectorised backend batches the tid-mask intersections of each
    extension family.
    """
    if target not in ("all", "closed", "maximal"):
        raise ValueError(f"unknown target {target!r}")
    obs = resolve_probe(probe)
    kernel = obs.wrap_kernel(resolve_backend(backend))
    with obs.phase("recode", algorithm="eclat"):
        prepared, code_map = prepare_for_mining(
            db, smin, item_order=item_order, transaction_order="identity"
        )
    counters = obs.ensure_counters(counters)

    tid_masks = prepared.vertical()
    n = prepared.n_transactions
    n_items = prepared.n_items
    items = [
        (code, tid_masks[code])
        for code in range(n_items)
        if itemset.size(tid_masks[code]) >= smin
    ]

    check = checker(guard, counters)
    if target == "all":
        pairs: List[Tuple[int, int]] = []
        try:
            with obs.phase("mine", algorithm="eclat", target=target):
                _mine_all(items, pairs, smin, n, kernel, counters, check)
        except MiningInterrupted as exc:
            exc.attach_partial(
                lambda: finalize(pairs, code_map, db, "eclat", smin),
                algorithm="eclat",
            )
            obs.record_counters(counters)
            raise
        with obs.phase("report", algorithm="eclat"):
            result = finalize(pairs, code_map, db, "eclat", smin)
    else:
        store = ClosedSetStore(counters)
        try:
            with obs.phase("mine", algorithm="eclat", target=target):
                _mine_closed(items, store, smin, n, kernel, counters, check)
        except MiningInterrupted as exc:
            exc.attach_partial(
                lambda: finalize(store.pairs(), code_map, db, "eclat-closed", smin),
                algorithm="eclat",
            )
            obs.record_counters(counters)
            raise
        with obs.phase("report", algorithm="eclat"):
            result = finalize(store.pairs(), code_map, db, "eclat-closed", smin)
            if target == "maximal":
                result = result.maximal()
                result.algorithm = "eclat-maximal"
    obs.record_counters(counters)
    return result


def _mine_all(
    items: List[Tuple[int, int]],
    pairs: List[Tuple[int, int]],
    smin: int,
    n_transactions: int,
    kernel: KernelBackend,
    counters: OperationCounters,
    check,
) -> None:
    """Plain Eclat: stack of (prefix mask, candidate extension list)."""
    batched = kernel.vectorized
    stack = [(0, items)]
    while stack:
        prefix, extensions = stack.pop()
        for index, (item, tids) in enumerate(extensions):
            check()
            counters.recursion_calls += 1
            support = itemset.size(tids)
            mask = prefix | (1 << item)
            pairs.append((mask, support))
            counters.reports += 1
            tail = extensions[index + 1 :]
            narrowed = []
            if batched and tail:
                counters.intersections += len(tail)
                joints, supports = kernel.intersect_count_many(
                    [other_tids for _, other_tids in tail], tids, n_transactions
                )
                narrowed = [
                    (tail[position][0], joint)
                    for position, (joint, joint_support) in enumerate(
                        zip(joints, supports)
                    )
                    if joint_support >= smin
                ]
            else:
                for other, other_tids in tail:
                    counters.intersections += 1
                    joint = tids & other_tids
                    if itemset.size(joint) >= smin:
                        narrowed.append((other, joint))
            if narrowed:
                stack.append((mask, narrowed))


def _mine_closed(
    items: List[Tuple[int, int]],
    store: ClosedSetStore,
    smin: int,
    n_transactions: int,
    kernel: KernelBackend,
    counters: OperationCounters,
    check,
) -> None:
    """CHARM-style closed mining.

    Iterative depth-first search with *resumable* frames: a branch's
    whole subtree must be explored before its right siblings, because
    the subsumption check relies on all closed supersets reachable
    through earlier items having been stored already.
    """
    batched = kernel.vectorized
    stack: List[List] = [[0, items, 0]]
    while stack:
        check()
        frame = stack[-1]
        current, extensions, index = frame
        if index >= len(extensions):
            stack.pop()
            continue
        frame[2] = index + 1
        item, tids = extensions[index]
        counters.recursion_calls += 1
        support = itemset.size(tids)
        candidate = current | (1 << item)
        # Absorb perfect extensions: any later item whose tid mask
        # covers this prefix's belongs to the closure.  Items that
        # are not perfect extensions stay extension candidates.
        tail = extensions[index + 1 :]
        narrowed = []
        if batched and tail:
            counters.intersections += len(tail)
            joints, supports = kernel.intersect_count_many(
                [other_tids for _, other_tids in tail], tids, n_transactions
            )
            # joint ⊆ tids, so joint == tids iff the popcounts agree.
            for position, (joint, joint_support) in enumerate(zip(joints, supports)):
                if joint_support == support:
                    candidate |= 1 << tail[position][0]
                elif joint_support >= smin:
                    narrowed.append((tail[position][0], joint))
        else:
            for other, other_tids in tail:
                counters.intersections += 1
                joint = tids & other_tids
                if joint == tids:
                    candidate |= 1 << other
                elif itemset.size(joint) >= smin:
                    narrowed.append((other, joint))
        counters.containment_checks += 1
        if store.subsumed(candidate, support):
            # The closure contains an item from an earlier branch;
            # every set in this subtree is likewise non-closed.
            continue
        store.add(candidate, support)
        counters.reports += 1
        if narrowed:
            stack.append([candidate, narrowed, 0])

"""Apriori [2, 1] — breadth-first candidate generation and pruning.

The original level-wise scheme: frequent ``k``-sets are joined into
``(k+1)``-candidates, candidates with an infrequent ``k``-subset are
pruned, and the survivors are counted against the database.  Support
counting uses per-candidate tid-mask intersections (the "Apriori-TID"
flavour), which keeps this reference implementation short and exact.

Apriori is not part of the paper's benchmark line-up; it is included as
the classic representative of the candidate-enumeration family the
introduction contrasts with, and as a mid-size testing oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..common import finalize, prepare_for_mining
from ..data import itemset
from ..data.database import TransactionDatabase
from ..kernels import resolve_backend
from ..obs import resolve_probe
from ..result import MiningResult
from ..runtime import MiningInterrupted, RunGuard, checker
from ..stats import OperationCounters

__all__ = ["mine_apriori"]


def mine_apriori(
    db: TransactionDatabase,
    smin: int,
    target: str = "all",
    counters: Optional[OperationCounters] = None,
    guard: Optional[RunGuard] = None,
    backend=None,
    probe=None,
) -> MiningResult:
    """Mine frequent item sets level-wise.

    ``target`` is ``"all"`` (default), ``"closed"`` or ``"maximal"``;
    the latter two post-filter the full family, which is the textbook
    (and expensive) way — the point of this miner is clarity, not speed.
    ``guard`` is polled in the candidate join loop; the levels completed
    before an interruption (exact supports) are attached to the
    exception as an anytime result.  ``backend`` is accepted for API
    uniformity (validated, not used: the level-wise join has no batched
    counterpart worth the conversion cost).
    """
    if target not in ("all", "closed", "maximal"):
        raise ValueError(f"unknown target {target!r}")
    resolve_backend(backend)
    obs = resolve_probe(probe)
    with obs.phase("recode", algorithm="apriori"):
        prepared, code_map = prepare_for_mining(
            db, smin, item_order="identity", transaction_order="identity"
        )
    counters = obs.ensure_counters(counters)
    check = checker(guard, counters)

    tid_masks = prepared.vertical()
    level: Dict[int, int] = {}
    for item in range(prepared.n_items):
        tids = tid_masks[item]
        support = itemset.size(tids)
        if support >= smin:
            level[1 << item] = tids

    all_pairs: List[tuple] = []
    try:
        with obs.phase("mine", algorithm="apriori", target=target):
            while level:
                check()
                for mask, tids in level.items():
                    all_pairs.append((mask, itemset.size(tids)))
                    counters.reports += 1
                level = _next_level(level, smin, counters, check)
    except MiningInterrupted as exc:
        exc.attach_partial(
            lambda: finalize(all_pairs, code_map, db, "apriori", smin),
            algorithm="apriori",
        )
        obs.record_counters(counters)
        raise

    with obs.phase("report", algorithm="apriori"):
        result = finalize(all_pairs, code_map, db, "apriori", smin)
        if target == "closed":
            result = _closed_filter(result)
        elif target == "maximal":
            result = result.maximal()
            result.algorithm = "apriori-maximal"
    obs.record_counters(counters)
    return result


def _next_level(
    level: Dict[int, int],
    smin: int,
    counters: OperationCounters,
    check=lambda: None,
) -> Dict[int, int]:
    """Join step + prune step + counting for one Apriori level."""
    masks = sorted(level)
    size = itemset.size(masks[0]) if masks else 0
    candidates: Dict[int, int] = {}
    for i, left in enumerate(masks):
        check()
        for right in masks[i + 1 :]:
            counters.recursion_calls += 1
            union = left | right
            if itemset.size(union) != size + 1 or union in candidates:
                continue
            # Prune: every size-k subset must be frequent.
            remaining = union
            pruned = False
            while remaining:
                low = remaining & -remaining
                counters.containment_checks += 1
                if union ^ low not in level:
                    pruned = True
                    break
                remaining ^= low
            if pruned:
                continue
            counters.intersections += 1
            tids = level[left] & level[right]
            if itemset.size(tids) >= smin:
                candidates[union] = tids
    return candidates


def _closed_filter(result: MiningResult) -> MiningResult:
    """Keep sets with no proper superset of equal support (textbook filter)."""
    by_support: Dict[int, List[int]] = {}
    for mask, support in result.items():
        by_support.setdefault(support, []).append(mask)
    closed = {}
    for mask, support in result.items():
        bucket = by_support[support]
        if not any(other != mask and mask & ~other == 0 for other in bucket):
            closed[mask] = support
    out = MiningResult(closed, result.item_labels, "apriori-closed", result.smin)
    return out

"""SaM — the Split and Merge algorithm [3].

Borgelt's SaM drives the Section 2.2 divide-and-conquer scheme with the
simplest conceivable data structure: a list of (transaction, weight)
pairs.  The *split* step pulls out the transactions containing the
current item (their suffixes become the conditional database), the
*merge* step folds those suffixes back into the remainder for the
exclude branch, collapsing duplicates by summing weights — which is why
the representation keeps shrinking as the recursion deepens.

The paper cites SaM as the purely horizontal representative of the
enumeration family (Section 2.2); it is included here to complete that
spectrum: Eclat (purely vertical), FP-growth (hybrid), SaM (purely
horizontal).

Closed and maximal targets use the same perfect-extension absorption
plus subsumption check as the other enumeration miners (see
:mod:`repro.enumeration.closedness`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common import finalize, prepare_for_mining
from ..data.database import TransactionDatabase
from ..kernels import resolve_backend
from ..obs import resolve_probe
from ..result import MiningResult
from ..runtime import MiningInterrupted, RunGuard, checker
from ..stats import OperationCounters
from .closedness import ClosedSetStore

__all__ = ["mine_sam"]


def mine_sam(
    db: TransactionDatabase,
    smin: int,
    target: str = "closed",
    item_order: str = "frequency-ascending",
    counters: Optional[OperationCounters] = None,
    guard: Optional[RunGuard] = None,
    backend=None,
    probe=None,
) -> MiningResult:
    """Mine frequent item sets with SaM.

    ``target`` is one of ``"all"``, ``"closed"``, ``"maximal"``.
    ``guard`` is polled at every split; the sets found before an
    interruption (exact supports; genuinely closed for the closed
    target) are attached to the exception as an anytime result.
    ``backend`` is accepted for API uniformity (validated, not used:
    SaM's split-and-merge walks weighted suffix lists whose shape
    changes at every step, so there is no static table to batch over).
    """
    if target not in ("all", "closed", "maximal"):
        raise ValueError(f"unknown target {target!r}")
    resolve_backend(backend)
    obs = resolve_probe(probe)
    with obs.phase("recode", algorithm="sam"):
        prepared, code_map = prepare_for_mining(
            db, smin, item_order=item_order, transaction_order="identity"
        )
    counters = obs.ensure_counters(counters)
    check = checker(guard, counters)

    # The working representation: {transaction mask: weight}, duplicates
    # already merged.  Splitting always takes the *highest* item code,
    # so extension items of a branch are strictly smaller — the same
    # divide order as the other miners, which the closed-target
    # subsumption check relies on.
    weighted: Dict[int, int] = {}
    for mask in prepared.transactions:
        if mask:
            weighted[mask] = weighted.get(mask, 0) + 1

    if target == "all":
        pairs: List[Tuple[int, int]] = []
        try:
            with obs.phase("mine", algorithm="sam", target=target):
                _sam_all(weighted, 0, smin, pairs, counters, check)
        except MiningInterrupted as exc:
            exc.attach_partial(
                lambda: finalize(pairs, code_map, db, "sam", smin),
                algorithm="sam",
            )
            obs.record_counters(counters)
            raise
        with obs.phase("report", algorithm="sam"):
            result = finalize(pairs, code_map, db, "sam", smin)
        obs.record_counters(counters)
        return result

    store = ClosedSetStore(counters)
    try:
        with obs.phase("mine", algorithm="sam", target=target):
            _sam_closed(weighted, 0, smin, store, counters, check)
    except MiningInterrupted as exc:
        exc.attach_partial(
            lambda: finalize(store.pairs(), code_map, db, "sam-closed", smin),
            algorithm="sam",
        )
        obs.record_counters(counters)
        raise
    with obs.phase("report", algorithm="sam"):
        result = finalize(store.pairs(), code_map, db, "sam-closed", smin)
        if target == "maximal":
            result = result.maximal()
            result.algorithm = "sam-maximal"
    obs.record_counters(counters)
    return result


def _split(
    weighted: Dict[int, int], counters: OperationCounters
) -> Tuple[int, Dict[int, int], Dict[int, int], int]:
    """Split off the highest item: (item, conditional, remainder, support)."""
    item = max(mask.bit_length() for mask in weighted) - 1
    bit = 1 << item
    conditional: Dict[int, int] = {}
    remainder: Dict[int, int] = {}
    support = 0
    for mask, weight in weighted.items():
        counters.node_visits += 1
        if mask & bit:
            support += weight
            suffix = mask ^ bit
            if suffix:
                conditional[suffix] = conditional.get(suffix, 0) + weight
        else:
            remainder[mask] = remainder.get(mask, 0) + weight
    return item, conditional, remainder, support


def _merge(
    into: Dict[int, int], source: Dict[int, int], counters: OperationCounters
) -> Dict[int, int]:
    """Fold the conditional suffixes back for the exclude branch."""
    for mask, weight in source.items():
        counters.support_updates += 1
        into[mask] = into.get(mask, 0) + weight
    return into


def _sam_all(
    weighted: Dict[int, int],
    prefix: int,
    smin: int,
    pairs: List[Tuple[int, int]],
    counters: OperationCounters,
    check,
) -> None:
    """Split-and-merge recursion reporting every frequent set."""
    stack: List[Tuple[Dict[int, int], int]] = [(weighted, prefix)]
    while stack:
        work, current = stack.pop()
        while work:
            check()
            counters.recursion_calls += 1
            item, conditional, remainder, support = _split(work, counters)
            if support >= smin:
                pairs.append((current | (1 << item), support))
                counters.reports += 1
                if conditional:
                    stack.append((dict(conditional), current | (1 << item)))
            work = _merge(remainder, conditional, counters)


def _sam_closed(
    weighted: Dict[int, int],
    prefix: int,
    smin: int,
    store: ClosedSetStore,
    counters: OperationCounters,
    check,
) -> None:
    """Closed-target SaM: resumable depth-first frames (subtree before
    right siblings, required by the subsumption check)."""
    stack: List[List] = [[weighted, prefix]]
    while stack:
        check()
        frame = stack[-1]
        work, current = frame
        if not work:
            stack.pop()
            continue
        counters.recursion_calls += 1
        item, conditional, remainder, support = _split(work, counters)
        frame[0] = _merge(remainder, conditional, counters)
        if support < smin:
            continue
        candidate = current | (1 << item)
        # Perfect extensions: items occurring in every conditional
        # transaction (weighted count equals the branch support).
        conditional_counts: Dict[int, int] = {}
        for mask, weight in conditional.items():
            remaining = mask
            while remaining:
                low = remaining & -remaining
                other = low.bit_length() - 1
                conditional_counts[other] = conditional_counts.get(other, 0) + weight
                remaining ^= low
        perfect = 0
        for other, count in conditional_counts.items():
            if count == support:
                perfect |= 1 << other
        candidate |= perfect

        counters.containment_checks += 1
        if store.subsumed(candidate, support):
            continue
        store.add(candidate, support)
        counters.reports += 1
        if conditional:
            reduced: Dict[int, int] = {}
            for mask, weight in conditional.items():
                mask &= ~perfect
                if mask:
                    reduced[mask] = reduced.get(mask, 0) + weight
            if reduced:
                stack.append([reduced, candidate])

"""The long-lived query daemon: ``repro-mine serve STORE``.

The paper's premise is *mine once, serve many*: the closed family is
computed by intersecting transactions, then queried repeatedly.  The
one-shot ``repro-mine query`` command pays a snapshot load per
invocation and throws the memo away; :class:`QueryServer` keeps a hot
:class:`~repro.core.incremental.IncrementalMiner` resident instead and
answers the same four verbs over HTTP/JSON, so repeat queries hit the
generation-memoised warm path the serving benchmarks measure.

Design points:

* **Pure reader.**  The server only ever reads snapshot generations
  (``snapshot-*.rsnp``); it never touches the writer's WAL or flight
  recorder, so it can attach to a live :class:`StreamingMiner` store —
  the same attached-reader rule ``repro-mine top`` follows.
* **Hot snapshot swap.**  A watcher polls the store directory; when a
  newer generation appears it is loaded *off* the request path and the
  resident miner is replaced by flipping one reference
  (:meth:`QueryServer.reload_if_changed`).  In-flight requests keep the
  generation they grabbed at entry, so every answer is internally
  consistent with exactly one snapshot — there is no torn state to
  observe.  A failed load keeps the old generation serving and counts
  ``serve.swap.failures``.
* **Admission control.**  A bounded queue
  (:class:`~repro.runtime.AdmissionController`) rejects beyond
  ``max_inflight + max_queue`` with **429** and a ``Retry-After`` hint;
  each admitted query runs under a fresh per-request
  :class:`~repro.runtime.RunGuard` wall-clock/memory budget
  (:func:`~repro.runtime.request_guard`) and a budget trip answers
  **503** — the guard's first check fires before the query body, so an
  exhausted budget leaves the store untouched.
* **Observability built in.**  Every endpoint lands a
  ``serve.http.<endpoint>.seconds`` latency histogram in the probe's
  registry (the same quantile machinery as the WAL and kernel
  metrics); ``/metrics`` is the registry's Prometheus text exposition
  and ``/healthz`` the read-only
  :func:`~repro.serving.health.compute_health` report as JSON.

The HTTP layer is deliberately minimal — stdlib ``asyncio`` streams,
one request per connection — because the protocol surface is four
read-only verbs plus two operational endpoints; see
``docs/serving.md`` for the endpoint catalogue and curl examples.
Everything answers ``GET``; the two item-taking verbs
(``/supersets_of``, ``/support_of``) additionally accept ``POST`` with
a JSON body — an item list, or ``{"items": [...], "smin": N}`` — for
clients whose item lists outgrow a query string.  A POST answers
**byte-identically** to the equivalent GET: the body's item list is
canonicalised to the same comma-separated spec the query parameter
carries and routed through the identical code path (the differential
suite pins that too).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..obs import LATENCY_BUCKETS, Probe
from ..runtime import AdmissionController, MiningInterrupted, Saturated, request_guard
from .health import compute_health
from .queries import QUERY_VERBS, parse_items, query_lines
from .snapshot import SnapshotError, load_snapshot

__all__ = ["QueryServer"]

#: HTTP reason phrases for the statuses the server emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Compact, key-sorted JSON: responses are byte-deterministic.
_JSON_KWARGS = dict(sort_keys=True, separators=(",", ":"))

#: Largest accepted POST body.  The verbs take item lists, not data
#: uploads — a megabyte of items is already far past any real query.
_MAX_BODY_BYTES = 1 << 20

#: The verbs that accept a POSTed JSON item list.
_POST_VERBS = ("supersets_of", "support_of")


class _HttpError(Exception):
    """Internal routing shortcut carrying a ready HTTP error."""

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class _Hot:
    """One resident snapshot generation: miner + its identity + lock.

    The lock serialises query execution against this miner — its memo
    dictionary and resident packed table are not thread-safe — and is
    *per generation*, so a swap never waits on it: requests that
    grabbed the old generation finish on the old lock while new
    requests queue on the new one.
    """

    __slots__ = ("miner", "covered", "path", "lock")

    def __init__(self, miner, covered: int, path: str) -> None:
        self.miner = miner
        self.covered = covered
        self.path = path
        self.lock = threading.Lock()


class QueryServer:
    """Resident HTTP/JSON query daemon over a snapshot store directory.

    Parameters
    ----------
    store:
        A store directory holding at least one ``snapshot-*.rsnp``
        generation (as written by ``repro-mine ingest`` / ``snapshot``).
        Raises :class:`ValueError` at :meth:`start` when none exists —
        the daemon is a reader, it cannot invent a repository.
    host, port:
        Listen address; port 0 asks the kernel for an ephemeral port
        (``self.port`` holds the real one after :meth:`start`).
    workers:
        Query executor threads.  Snapshot loads run on a dedicated
        extra thread, so ingest-driven swaps never queue behind slow
        queries (and vice versa).
    max_inflight, max_queue:
        Admission bounds: at most ``max_inflight`` queries execute
        while ``max_queue`` more wait; beyond that, 429.
    request_timeout, request_memory_limit_mb:
        Per-request budgets enforced by a fresh RunGuard around every
        query; a trip answers 503.  ``None`` disables the budget.
    poll_interval:
        Store watch period in seconds for the background swap task.
    backend:
        Kernel backend for the resident miners (``None`` = default).
    probe:
        A live :class:`repro.obs.Probe` to record into; one is created
        when omitted (``/metrics`` needs a registry to expose).
    """

    def __init__(
        self,
        store,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_inflight: int = 8,
        max_queue: int = 16,
        request_timeout: Optional[float] = None,
        request_memory_limit_mb: Optional[float] = None,
        retry_after: float = 1.0,
        poll_interval: float = 1.0,
        backend=None,
        probe: Optional[Probe] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be positive, got {poll_interval}"
            )
        self.store = os.fspath(store)
        self.host = host
        self.port = port
        self.workers = workers
        self.request_timeout = request_timeout
        self.request_memory_limit_mb = request_memory_limit_mb
        self.poll_interval = poll_interval
        self._backend = backend
        self._obs = probe if probe is not None else Probe()
        self._admission = AdmissionController(
            max_inflight=max_inflight,
            max_queue=max_queue,
            retry_after=retry_after,
        )
        self._hot: Optional[_Hot] = None
        self._swap_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serve-query"
        )
        # Dedicated lane for swap loads and health scans: a saturated
        # query pool must never delay a generation flip.
        self._aux = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-swap"
        )
        self._slots = asyncio.Semaphore(max_inflight)
        self._server: Optional[asyncio.base_events.Server] = None
        self._watch_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Hot generation management
    # ------------------------------------------------------------------

    @property
    def metrics(self):
        """The probe's metrics registry (what ``/metrics`` exposes)."""
        return self._obs.metrics

    @property
    def generation(self) -> Optional[int]:
        """Covered-transaction count of the resident generation."""
        hot = self._hot
        return hot.covered if hot is not None else None

    def _list_generations(self) -> List[Tuple[int, str]]:
        from .streaming import _list_snapshots

        return _list_snapshots(self.store)

    def _load_generation(self, covered: int, path: str) -> _Hot:
        with self._obs.phase("serve.swap.load", covered=covered):
            miner = load_snapshot(path, backend=self._backend, probe=self._obs)
        return _Hot(miner, covered, path)

    def load_initial(self) -> None:
        """Load the newest generation or fail; called by :meth:`start`."""
        snapshots = self._list_generations()
        if not snapshots:
            raise ValueError(
                f"no snapshot generation found in {self.store!r}; "
                "run 'repro-mine ingest' or 'repro-mine snapshot' first"
            )
        covered, path = snapshots[-1]
        self._hot = self._load_generation(covered, path)
        self._obs.count("serve.load.count")

    def reload_if_changed(self) -> bool:
        """Swap in a newer snapshot generation if one appeared.

        Synchronous and thread-safe (the background watcher, a test
        driver and an operator signal can all call it); returns whether
        a swap happened.  The load runs entirely outside the request
        path — requests keep answering from the old generation until
        the single reference flip — and a failed load keeps the old
        generation serving.
        """
        with self._swap_lock:
            hot = self._hot
            snapshots = self._list_generations()
            if not snapshots:
                return False
            covered, path = snapshots[-1]
            if hot is not None and covered <= hot.covered:
                return False
            try:
                fresh = self._load_generation(covered, path)
            except (SnapshotError, OSError):
                # Best effort: the writer may be mid-rename, or the
                # newest generation may be damaged.  Keep serving the
                # resident one; the next poll retries.
                self._obs.count("serve.swap.failures")
                return False
            self._hot = fresh
            self._obs.count("serve.swap.count")
            self._obs.event(
                "snapshot-swapped", covered=covered, path=os.path.basename(path)
            )
            return True

    async def _watch_store(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.poll_interval)
            try:
                await loop.run_in_executor(self._aux, self.reload_if_changed)
            except Exception:
                # The watcher must survive transient filesystem trouble.
                self._obs.count("serve.swap.failures")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Load the newest generation and start listening + watching."""
        loop = asyncio.get_running_loop()
        if self._hot is None:
            await loop.run_in_executor(self._aux, self.load_initial)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._watch_task = loop.create_task(self._watch_store())

    async def stop(self) -> None:
        """Stop listening, cancel the watcher, drain the executors."""
        if self._watch_task is not None:
            self._watch_task.cancel()
            try:
                await self._watch_task
            except asyncio.CancelledError:
                pass
            self._watch_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=True)
        self._aux.shutdown(wait=True)

    def run(
        self, ready: Optional[Callable[[str, int], None]] = None
    ) -> int:
        """Serve until SIGTERM/SIGINT; returns 0 on clean shutdown.

        ``ready`` is called with the bound ``(host, port)`` once the
        listener is up (the CLI prints the address to stderr).
        """
        return asyncio.run(self._run(ready))

    async def _run(self, ready: Optional[Callable[[str, int], None]]) -> int:
        await self.start()
        if ready is not None:
            ready(self.host, self.port)
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stopping.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await stopping.wait()
        except (KeyboardInterrupt, asyncio.CancelledError):  # pragma: no cover
            pass
        await self.stop()
        return 0

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request_line = await asyncio.wait_for(
                    reader.readline(), timeout=10.0
                )
            except asyncio.TimeoutError:
                return
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) < 2:
                return
            method, target = parts[0], parts[1]
            # Drain the headers, keeping Content-Length: POST verbs
            # carry a JSON body, everything else has none to read.
            content_length = 0
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1", "replace").partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        content_length = -1
            request_body = b""
            if 0 < content_length <= _MAX_BODY_BYTES:
                request_body = await asyncio.wait_for(
                    reader.readexactly(content_length), timeout=10.0
                )
            status, ctype, body, extra = await self._respond(
                method, target, request_body, content_length
            )
            head = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                f"Content-Type: {ctype}",
                f"Content-Length: {len(body)}",
                "Connection: close",
            ]
            head.extend(extra)
            writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
            )
            await writer.drain()
        except (ConnectionError, asyncio.TimeoutError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _respond(
        self, method: str, target: str, request_body: bytes = b"",
        content_length: int = 0,
    ) -> Tuple[int, str, bytes, List[str]]:
        """Route one request; returns (status, content-type, body, headers)."""
        split = urlsplit(target)
        endpoint = split.path.strip("/")
        started = time.perf_counter()
        try:
            if method == "POST" and endpoint in _POST_VERBS:
                if content_length > _MAX_BODY_BYTES:
                    raise _HttpError(
                        400,
                        f"POST body of {content_length} bytes exceeds the "
                        f"{_MAX_BODY_BYTES}-byte limit",
                    )
                if content_length < 0:
                    raise _HttpError(400, "malformed Content-Length header")
                params = parse_qs(split.query, keep_blank_values=True)
                items, smin = self._parse_post_body(request_body)
                # Canonicalise to the exact spec string a GET would
                # carry in ?items= — from here on the two methods run
                # the same code and emit the same bytes.
                params["items"] = [",".join(str(item) for item in items)]
                if smin is not None:
                    params["smin"] = [str(smin)]
                result = await self._query(endpoint, params)
            elif method != "GET":
                allowed = (
                    "GET or POST" if endpoint in _POST_VERBS else "GET"
                )
                raise _HttpError(
                    405, f"method {method} not allowed; use {allowed}"
                )
            elif endpoint == "metrics":
                body = self.metrics.to_prom().encode("utf-8")
                result = (
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    body,
                    [],
                )
            elif endpoint == "healthz":
                result = (200, "application/json", await self._healthz(), [])
            elif endpoint in QUERY_VERBS:
                params = parse_qs(split.query, keep_blank_values=True)
                result = await self._query(endpoint, params)
            else:
                raise _HttpError(
                    404,
                    f"unknown endpoint {split.path!r}; expected one of "
                    + ", ".join(f"/{verb}" for verb in QUERY_VERBS)
                    + ", /metrics, /healthz",
                )
        except _HttpError as exc:
            result = self._error_response(exc)
        except Exception as exc:  # pragma: no cover - defensive
            result = self._error_response(
                _HttpError(500, f"{type(exc).__name__}: {exc}")
            )
        status = result[0]
        self._obs.count("serve.http.requests")
        self._obs.count(f"serve.http.status.{status}")
        if endpoint in QUERY_VERBS or endpoint in ("metrics", "healthz"):
            self._obs.observe(
                f"serve.http.{endpoint}.seconds",
                time.perf_counter() - started,
                buckets=LATENCY_BUCKETS,
            )
        return result

    def _error_response(
        self, exc: _HttpError
    ) -> Tuple[int, str, bytes, List[str]]:
        body = json.dumps(
            {"error": exc.message, "status": exc.status}, **_JSON_KWARGS
        ).encode("utf-8")
        extra = []
        if exc.retry_after is not None:
            extra.append(f"Retry-After: {max(1, round(exc.retry_after))}")
        return exc.status, "application/json", body, extra

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    async def _healthz(self) -> bytes:
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            self._aux, compute_health, self.store
        )
        hot = self._hot
        payload = dataclasses.asdict(report)
        payload["server"] = {
            "generation": hot.covered if hot is not None else None,
            "snapshot": (
                os.path.basename(hot.path) if hot is not None else None
            ),
            "admission": self._admission.snapshot(),
        }
        return json.dumps(payload, **_JSON_KWARGS).encode("utf-8")

    @staticmethod
    def _parse_post_body(body: bytes) -> Tuple[List[object], Optional[int]]:
        """Decode a POSTed item list: ``[...]`` or ``{"items": [...]}``.

        Returns ``(items, smin)`` with ``smin`` ``None`` when the body
        does not carry one.  Items must be JSON strings or integers —
        the same universe a ``?items=`` query parameter can express.
        """
        shape = (
            "POST body must be JSON: an item list, or an object "
            "{\"items\": [...], \"smin\": N}"
        )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, shape) from None
        smin: Optional[int] = None
        if isinstance(payload, dict):
            if "items" not in payload:
                raise _HttpError(400, shape + " — 'items' is missing")
            items = payload["items"]
            smin = payload.get("smin")
            if smin is not None and (
                isinstance(smin, bool) or not isinstance(smin, int)
            ):
                raise _HttpError(
                    400, f"POST 'smin' must be an integer, got {smin!r}"
                )
        else:
            items = payload
        if not isinstance(items, list) or not items:
            raise _HttpError(400, shape + " — need a non-empty item list")
        for item in items:
            if isinstance(item, bool) or not isinstance(item, (str, int)):
                raise _HttpError(
                    400,
                    f"POST items must be strings or integers, got {item!r}",
                )
        return items, smin

    @staticmethod
    def _int_param(
        params: Dict[str, List[str]], name: str, default: Optional[int]
    ) -> Optional[int]:
        values = params.get(name)
        if not values:
            return default
        try:
            return int(values[-1])
        except ValueError:
            raise _HttpError(
                400, f"query parameter {name!r} must be an integer, "
                f"got {values[-1]!r}"
            ) from None

    async def _query(
        self, verb: str, params: Dict[str, List[str]]
    ) -> Tuple[int, str, bytes, List[str]]:
        smin = self._int_param(params, "smin", 1)
        k = self._int_param(params, "k", None)
        items_spec = params.get("items", [None])[-1]
        if verb == "top_k" and k is None:
            raise _HttpError(400, "top_k needs a 'k' query parameter")
        if verb in ("supersets_of", "support_of") and items_spec is None:
            raise _HttpError(
                400, f"{verb} needs an 'items' query parameter"
            )
        try:
            self._admission.admit()
        except Saturated as exc:
            raise _HttpError(429, str(exc), retry_after=exc.retry_after)
        loop = asyncio.get_running_loop()
        try:
            async with self._slots:
                self._admission.start()
                # One reference grab: this request answers from exactly
                # this generation, swap or no swap.
                hot = self._hot
                try:
                    lines = await loop.run_in_executor(
                        self._pool,
                        self._run_query,
                        hot,
                        verb,
                        smin,
                        k,
                        items_spec,
                    )
                except MiningInterrupted as exc:
                    self._obs.count("serve.admission.tripped")
                    raise _HttpError(
                        503,
                        f"request budget exceeded: {exc}",
                        retry_after=self._admission.retry_after,
                    ) from None
                except ValueError as exc:
                    raise _HttpError(400, str(exc)) from None
        finally:
            self._admission.release()
        payload = {
            "verb": verb,
            "store": self.store,
            "generation": hot.covered,
            "snapshot": os.path.basename(hot.path),
            "smin": smin,
            "lines": lines,
        }
        if k is not None:
            payload["k"] = k
        if items_spec is not None:
            payload["items"] = items_spec
        body = json.dumps(payload, **_JSON_KWARGS).encode("utf-8")
        return 200, "application/json", body, []

    def _run_query(
        self,
        hot: _Hot,
        verb: str,
        smin: int,
        k: Optional[int],
        items_spec: Optional[str],
    ) -> List[str]:
        """Execute one verb on the pool, serialised per generation.

        The per-generation lock makes the miner's memo/packed-table
        mutations safe; the per-request guard is installed under the
        same lock, so its hook never leaks across requests.
        """
        with hot.lock:
            with request_guard(
                hot.miner,
                timeout=self.request_timeout,
                memory_limit_mb=self.request_memory_limit_mb,
                probe=self._obs,
            ):
                items = (
                    parse_items(items_spec, hot.miner)
                    if items_spec is not None
                    else None
                )
                return query_lines(
                    hot.miner, verb, smin=smin, k=k, items=items
                )

"""Store health: what an operator asks a store without running it.

:func:`compute_health` assembles a :class:`HealthReport` from nothing
but the **on-disk** state of a streaming store directory — the flight
recorder tail (:mod:`repro.obs.recorder`), the WAL segments and the
snapshot generations — so it works identically on a live store (an
attached reader never touches the writer's files) and on one that was
``SIGKILL``-ed mid-operation.  This is the computation behind
``repro-mine top`` and the future ``repro serve`` ``/healthz``
endpoint.

The report answers the operational questions in order of urgency:

* **Is it broken?** — the writer's ``broken`` flag from the newest
  flight record's status (a mid-fold budget trip), plus whether the
  recorder or WAL tail is torn (evidence of a crash, repaired on the
  next writer open).
* **How far behind is the durable overlay?** — WAL lag in records and
  bytes past the newest snapshot generation, and that generation's
  age.
* **How fast is it?** — ingest/fold/compaction rates from the two
  newest flight records, and latency quantiles (p50/p95/p99) estimated
  from every histogram in the newest record's metrics snapshot.

Everything degrades gracefully: a store with no recorder still reports
WAL/snapshot facts, an empty directory reports zeros — the report says
what is knowable and leaves the rest ``None``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs import QUANTILES, estimate_quantile
from ..obs.recorder import FlightScan, scan_flight
from .wal import scan_wal

__all__ = ["HealthReport", "compute_health"]

#: Histogram families worth a quantile row in the rendered report, in
#: display order (prefix match).
_QUANTILE_PREFIXES = (
    "wal.", "serve.", "phase.serve.", "phase.query.", "kernel.",
)

#: Counters whose per-second rate the report derives from the two
#: newest flight records.
_RATE_COUNTERS = (
    "wal.appends",
    "wal.folded_records",
    "wal.folds",
    "compaction.runs",
)


@dataclass
class HealthReport:
    """Everything :func:`compute_health` learned; see the module docstring."""

    directory: str
    #: ``False`` when the writer reported a mid-fold break, or when no
    #: state at all was found.
    healthy: bool = True
    exists: bool = True
    broken: bool = False
    n_transactions: Optional[int] = None
    pending_records: Optional[int] = None
    last_fold_seconds: Optional[float] = None
    # -- WAL ----------------------------------------------------------
    wal_records: int = 0
    wal_bytes: int = 0
    wal_segments: int = 0
    wal_torn: bool = False
    wal_lag_records: int = 0
    wal_lag_bytes: int = 0
    # -- snapshots ----------------------------------------------------
    snapshot_path: Optional[str] = None
    snapshot_covered: int = 0
    snapshot_age_seconds: Optional[float] = None
    snapshot_generations: int = 0
    # -- flight recorder ----------------------------------------------
    flight_records: int = 0
    flight_torn: bool = False
    flight_age_seconds: Optional[float] = None
    trace_id: Optional[str] = None
    rates: Dict[str, float] = field(default_factory=dict)
    #: ``{histogram name: {"count": n, "p50": ..., "p95": ..., "p99": ...}}``
    quantiles: Dict[str, Dict[str, Optional[float]]] = field(
        default_factory=dict
    )
    notes: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """The multi-line rendering ``repro-mine top`` prints."""
        state = "BROKEN" if self.broken else (
            "HEALTHY" if self.healthy else "UNKNOWN"
        )
        head = f"store {self.directory}: {state}"
        if self.n_transactions is not None:
            head += (
                f" ({self.n_transactions} transactions, "
                f"{self.pending_records or 0} pending)"
            )
        lines = [head]
        lines.append(
            f"wal: {self.wal_records} replayable record(s) in "
            f"{self.wal_segments} segment(s), {self.wal_bytes} bytes"
            + ("; TORN TAIL" if self.wal_torn else "")
        )
        lines.append(
            f"wal lag past snapshot: {self.wal_lag_records} record(s) / "
            f"{self.wal_lag_bytes} bytes"
        )
        if self.snapshot_path is not None:
            age = (
                f", age {self.snapshot_age_seconds:.1f}s"
                if self.snapshot_age_seconds is not None
                else ""
            )
            lines.append(
                f"snapshot: {os.path.basename(self.snapshot_path)} "
                f"(covers {self.snapshot_covered}"
                f", {self.snapshot_generations} generation(s){age})"
            )
        else:
            lines.append("snapshot: none")
        if self.flight_records:
            age = (
                f", tail age {self.flight_age_seconds:.1f}s"
                if self.flight_age_seconds is not None
                else ""
            )
            lines.append(
                f"flight: {self.flight_records} record(s){age}"
                + ("; torn tail (will repair on next open)" if self.flight_torn else "")
            )
        else:
            lines.append("flight: no recorder data")
        if self.last_fold_seconds is not None:
            lines.append(f"last fold: {self.last_fold_seconds * 1e3:.2f} ms")
        if self.rates:
            lines.append(
                "rates: "
                + ", ".join(
                    f"{name} {rate:.1f}/s"
                    for name, rate in sorted(self.rates.items())
                )
            )
        if self.quantiles:
            lines.append("latency/size quantiles:")
            width = max(len(name) for name in self.quantiles)
            for name, row in sorted(self.quantiles.items()):
                cells = "  ".join(
                    f"p{int(q * 100):02d}={_fmt(row.get(f'p{int(q * 100)}'))}"
                    for q in QUANTILES
                )
                lines.append(
                    f"  {name.ljust(width)}  n={row['count']:<8} {cells}"
                )
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1000 and float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"


def _quantile_row(data: Dict) -> Dict[str, Optional[float]]:
    """p50/p95/p99 estimated from one snapshot histogram dict."""
    row: Dict[str, Optional[float]] = {"count": data.get("count", 0)}
    for q in QUANTILES:
        row[f"p{int(q * 100)}"] = estimate_quantile(
            data.get("buckets", ()),
            data.get("bucket_counts", ()),
            data.get("count", 0),
            q,
            lo=data.get("min"),
            hi=data.get("max"),
        )
    return row


def compute_health(
    directory,
    *,
    now: Optional[float] = None,
    flight_scan: Optional[FlightScan] = None,
) -> HealthReport:
    """Read-only health assessment of a store directory.

    Never raises on damage and never mutates the store: torn tails are
    reported, not repaired (the next writer open repairs them).  ``now``
    pins the wall clock for deterministic tests; ``flight_scan`` lets a
    polling caller (``repro-mine top --watch``) reuse a scan.
    """
    directory = os.fspath(directory)
    report = HealthReport(directory=directory)
    if now is None:
        now = time.time()

    # Late import: streaming imports health's sibling modules.
    from .streaming import _list_snapshots

    snapshots = _list_snapshots(directory)
    report.snapshot_generations = len(snapshots)
    if snapshots:
        report.snapshot_covered, report.snapshot_path = snapshots[-1]
        try:
            report.snapshot_age_seconds = max(
                0.0, now - os.path.getmtime(report.snapshot_path)
            )
        except OSError:
            pass

    wal_dir = os.path.join(directory, "wal")
    wal = scan_wal(wal_dir)
    report.wal_records = len(wal.records)
    report.wal_segments = len(wal.segments)
    report.wal_torn = not wal.clean
    if report.wal_torn:
        report.notes.append(
            f"wal tail torn ({wal.torn_reason}); recovery will truncate "
            f"{wal.truncated_bytes} byte(s)"
        )
    for info in wal.segments:
        report.wal_bytes += info.valid_end + info.torn_bytes
        if info.base_seq + info.n_records > report.snapshot_covered:
            report.wal_lag_bytes += info.valid_end + info.torn_bytes
    report.wal_lag_records = sum(
        1 for seq, _ in wal.records if seq >= report.snapshot_covered
    )

    scan = flight_scan if flight_scan is not None else scan_flight(
        os.path.join(directory, "flight")
    )
    report.flight_records = len(scan.records)
    report.flight_torn = not scan.clean
    if report.flight_torn:
        report.notes.append(
            f"flight recorder tail torn ({scan.torn_reason}); the next "
            "writer open repairs it"
        )
    if scan.records:
        tail = scan.records[-1]
        report.flight_age_seconds = max(0.0, now - tail.get("wall", now))
        report.trace_id = tail.get("trace_id")
        status = tail.get("status") or {}
        report.broken = bool(status.get("broken", False))
        report.n_transactions = status.get("n_transactions")
        report.pending_records = status.get("pending_records")
        report.last_fold_seconds = status.get("last_fold_seconds")
        for name, data in tail.get("metrics", {}).get("histograms", {}).items():
            if name.startswith(_QUANTILE_PREFIXES) and data.get("count"):
                report.quantiles[name] = _quantile_row(data)
        if len(scan.records) >= 2:
            prev = scan.records[-2]
            dt = tail.get("wall", 0.0) - prev.get("wall", 0.0)
            if dt > 0:
                tail_counters = tail.get("metrics", {}).get("counters", {})
                prev_counters = prev.get("metrics", {}).get("counters", {})
                for name in _RATE_COUNTERS:
                    delta = tail_counters.get(name, 0) - prev_counters.get(
                        name, 0
                    )
                    if delta:
                        report.rates[name] = delta / dt
    elif report.n_transactions is None and snapshots:
        # No recorder: the snapshot name still bounds the folded count.
        report.n_transactions = report.snapshot_covered

    report.exists = bool(
        snapshots or wal.segments or scan.records or os.path.isdir(directory)
    )
    report.healthy = report.exists and not report.broken
    if not report.exists:
        report.notes.append("no store state found")
    return report

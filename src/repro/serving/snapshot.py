"""Persistent repository snapshots: mine once, serve many.

A snapshot is the serialised IsTa repository — the complete closed-set
family of everything mined so far, together with the item recode tables
— in a compact versioned binary form.  Loading one warm-starts an
:class:`~repro.core.incremental.IncrementalMiner`: queries answer
straight from the decoded family and a delta batch costs only the new
intersections, never a cold re-mine.

The repository is stored as the flat closed family, not as the prefix
tree: the tree is *derivable* — rebuilding it from the family
reproduces the organic tree node-for-node
(:meth:`~repro.core.prefix_tree.PrefixTree.from_closed_family`), so the
tree records would be pure redundancy.  Storing the family keeps the
codec trivial, makes the bytes a canonical function of the mined
multiset alone (independent of ingestion order or representation
history), and lets the warm path decode with fixed-width reads instead
of walking variable-length node records.

Format (version 1; varints are unsigned LEB128)::

    offset  size  field
    0       4     magic  b"RSNP"
    4       1     version (= 1)
    5       var   n_items          number of item codes
            var   n_transactions   transactions folded into the repository
            var   n_sets           closed item sets in the family
            var   labels_size      byte length of the labels block
            ...   labels block     JSON array of the item labels, UTF-8,
                                   index = item code
            ...   family rows      n_sets fixed-width records, ascending
                                   by mask: item mask as
                                   ceil(n_items / 64) little-endian
                                   64-bit words, then the support as a
                                   32-bit little-endian integer
    end-4   4     CRC-32 (little-endian) over bytes [4, end-4)

Two miners holding the same repository produce byte-identical snapshots
regardless of how they were grown, and ``dumps(loads(data))``
reproduces ``data`` exactly.

Labels must be JSON scalars (``str``/``int``/``float``/``bool``) so the
recode table round-trips losslessly; richer label types are rejected at
save time rather than silently corrupted.

Decoding is lazy: :func:`loads_snapshot` validates the envelope (magic,
version, checksum, section sizes) but leaves the family rows as bytes.
The repository is materialised on first touch — directly into the flat
closed family (a bulk fixed-width decode, vectorised when numpy is
present) when a loaded snapshot serves queries and small delta batches,
or as a rebuilt prefix tree when the miner keeps streaming.  That
decode-to-flat path is what makes warm starts an order of magnitude
cheaper than re-mining; ``benchmarks/bench_serving.py`` gates the
ratio.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, Tuple

from ..core.incremental import IncrementalMiner
from ..core.prefix_tree import PrefixTree

try:  # pragma: no cover - exercised indirectly by both decode paths
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "dumps_snapshot",
    "loads_snapshot",
    "save_snapshot",
    "load_snapshot",
    "write_bytes_durable",
    "fsync_directory",
]

SNAPSHOT_MAGIC = b"RSNP"
SNAPSHOT_VERSION = 1

#: Label types that survive a JSON round trip unchanged.
_LABEL_TYPES = (str, int, float, bool)

#: Fixed width of the stored support field (u32 little-endian).
_SUPPORT_BYTES = 4


class SnapshotError(ValueError):
    """Raised for unreadable, corrupt or unencodable snapshots.

    Subclasses :class:`ValueError` so existing error handling (the CLI
    exit-code mapping in particular) treats snapshot problems as user
    errors without special-casing.
    """


def _append_uvarint(buf: bytearray, value: int) -> None:
    while value >= 0x80:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    shift = 0
    value = 0
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if byte < 0x80:
            return value, pos
        shift += 7


def dumps_snapshot(miner: IncrementalMiner) -> bytes:
    """Serialise a miner's repository to snapshot bytes.

    Emits the flat closed family in canonical (ascending-mask) order,
    so the bytes depend only on the mined multiset.  Raises
    :class:`SnapshotError` for labels that would not survive the JSON
    recode-table round trip, or for repositories beyond the format's
    fixed-width support field.
    """
    for label in miner._labels:
        if not isinstance(label, _LABEL_TYPES):
            raise SnapshotError(
                "snapshot labels must be str/int/float/bool to round-trip "
                f"losslessly; got {type(label).__name__}: {label!r}"
            )
    if miner.n_transactions >> (8 * _SUPPORT_BYTES):
        raise SnapshotError(
            f"snapshot format v{SNAPSHOT_VERSION} stores supports as "
            f"{8 * _SUPPORT_BYTES}-bit integers; "
            f"{miner.n_transactions} transactions exceed that"
        )
    with miner._obs.phase("serve.snapshot_save"):
        flat = miner._ensure_flat()
        mask_bytes = (miner.n_items + 63) // 64 * 8
        labels_block = json.dumps(miner._labels, ensure_ascii=False).encode("utf-8")
        buf = bytearray(SNAPSHOT_MAGIC)
        buf.append(SNAPSHOT_VERSION)
        _append_uvarint(buf, miner.n_items)
        _append_uvarint(buf, miner.n_transactions)
        _append_uvarint(buf, len(flat))
        _append_uvarint(buf, len(labels_block))
        buf += labels_block
        for mask in sorted(flat):
            buf += mask.to_bytes(mask_bytes, "little")
            buf += flat[mask].to_bytes(_SUPPORT_BYTES, "little")
        buf += (zlib.crc32(bytes(buf[4:])) & 0xFFFFFFFF).to_bytes(4, "little")
        data = bytes(buf)
    miner._obs.count("serving.snapshot.saved_bytes", len(data))
    return data


class _PendingRepository:
    """Validated-but-undecoded family rows of a loaded snapshot.

    Held by the miner until a query or mutation first touches the
    repository; then decoded into the flat closed family, or further
    into a rebuilt :class:`PrefixTree` when the access needs one.
    """

    __slots__ = ("_data", "_offset", "n_sets", "_n_words")

    def __init__(self, data: bytes, offset: int, n_sets: int, n_words: int) -> None:
        self._data = data
        self._offset = offset
        self.n_sets = n_sets
        self._n_words = n_words

    def build_flat(self) -> Dict[int, int]:
        """Bulk-decode the fixed-width rows into ``mask -> support``."""
        n_sets = self.n_sets
        n_words = self._n_words
        if _np is not None and n_sets:
            row_type = _np.dtype(
                [("mask", "<u8", (n_words,)), ("supp", "<u4")], align=False
            )
            rows = _np.frombuffer(
                self._data, dtype=row_type, count=n_sets, offset=self._offset
            )
            supps = rows["supp"]
            if int(supps.min()) < 1:
                raise SnapshotError("snapshot family row with support 0")
            masks = rows["mask"][:, 0].tolist()
            for word in range(1, n_words):
                shift = 64 * word
                masks = [
                    mask | (high << shift)
                    for mask, high in zip(masks, rows["mask"][:, word].tolist())
                ]
            flat = dict(zip(masks, supps.tolist()))
        else:
            data = self._data
            mask_bytes = n_words * 8
            row_bytes = mask_bytes + _SUPPORT_BYTES
            offset = self._offset
            flat = {}
            for _ in range(n_sets):
                mask = int.from_bytes(data[offset : offset + mask_bytes], "little")
                supp = int.from_bytes(
                    data[offset + mask_bytes : offset + row_bytes], "little"
                )
                if supp < 1:
                    raise SnapshotError("snapshot family row with support 0")
                flat[mask] = supp
                offset += row_bytes
        if len(flat) != n_sets:
            raise SnapshotError("snapshot family rows contain duplicate masks")
        if 0 in flat:
            raise SnapshotError("snapshot family row with empty mask")
        return flat

    def build_tree(self, counters, step: int) -> PrefixTree:
        """Rebuild the prefix tree from the family (lossless, see
        :meth:`PrefixTree.from_closed_family`)."""
        return PrefixTree.from_closed_family(
            iter(self.build_flat().items()), counters, step=step
        )


def loads_snapshot(
    data: bytes,
    counters=None,
    guard=None,
    backend=None,
    probe=None,
) -> IncrementalMiner:
    """Rehydrate an :class:`IncrementalMiner` from snapshot bytes.

    Validates the envelope (magic, version, CRC-32, header and section
    sizes) eagerly and raises :class:`SnapshotError` on any mismatch;
    the family rows themselves are decoded lazily on first repository
    access.  ``counters``/``guard``/``backend``/``probe`` configure the
    restored miner exactly as the :class:`IncrementalMiner` constructor
    would.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SnapshotError(
            f"snapshot data must be bytes, got {type(data).__name__}"
        )
    data = bytes(data)
    if len(data) < len(SNAPSHOT_MAGIC) + 1 + 4:
        raise SnapshotError("snapshot too short to hold an envelope")
    if data[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise SnapshotError(
            f"bad snapshot magic {data[:len(SNAPSHOT_MAGIC)]!r}; "
            f"expected {SNAPSHOT_MAGIC!r}"
        )
    version = data[len(SNAPSHOT_MAGIC)]
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {version}; "
            f"this reader handles version {SNAPSHOT_VERSION}"
        )
    stored_crc = int.from_bytes(data[-4:], "little")
    actual_crc = zlib.crc32(data[4:-4]) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        raise SnapshotError(
            f"snapshot checksum mismatch: stored {stored_crc:#010x}, "
            f"computed {actual_crc:#010x}"
        )
    pos = len(SNAPSHOT_MAGIC) + 1
    try:
        n_items, pos = _read_uvarint(data, pos)
        n_transactions, pos = _read_uvarint(data, pos)
        n_sets, pos = _read_uvarint(data, pos)
        labels_size, pos = _read_uvarint(data, pos)
        labels_block = data[pos : pos + labels_size]
        if len(labels_block) != labels_size:
            raise SnapshotError("snapshot labels block truncated")
        pos += labels_size
    except IndexError:
        raise SnapshotError("snapshot header truncated") from None
    try:
        labels = json.loads(labels_block.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"snapshot labels block unreadable: {exc}") from None
    if not isinstance(labels, list) or len(labels) != n_items:
        raise SnapshotError(
            "snapshot labels block inconsistent with the declared item count"
        )
    n_words = (n_items + 63) // 64
    row_bytes = n_words * 8 + _SUPPORT_BYTES
    if len(data) - 4 - pos != n_sets * row_bytes:
        raise SnapshotError(
            f"snapshot declares {n_sets} family rows of {row_bytes} bytes "
            f"but carries {len(data) - 4 - pos} bytes of rows"
        )
    pending = _PendingRepository(data, pos, n_sets, n_words)
    miner = IncrementalMiner._restore(
        labels,
        n_transactions,
        pending,
        counters=counters,
        guard=guard,
        backend=backend,
        probe=probe,
    )
    miner._obs.count("serving.snapshot.loaded_bytes", len(data))
    return miner


def fsync_directory(path) -> None:
    """fsync a directory so a just-renamed entry survives a power cut.

    ``os.replace`` makes the swap atomic against concurrent readers,
    but the *directory entry* itself is only durable once the directory
    inode reaches the disk; without this a crash right after the rename
    can leave a missing (or, on some filesystems, zero-length) file.
    Filesystems that refuse ``fsync`` on directory handles are
    tolerated silently — there is no stronger primitive to fall back
    to on them.
    """
    try:
        fd = os.open(os.fspath(path) or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def write_bytes_durable(path, data: bytes, on_step=None) -> None:
    """Write ``data`` to ``path`` atomically *and* durably.

    The full sequence is: write to a temporary name in the destination
    directory, ``fsync`` the temporary file (the bytes), atomically
    ``os.replace`` it into place (the name), then ``fsync`` the parent
    directory (the rename).  A crash at any point leaves either the
    old file or the new one — never a torn or vanishing entry.

    ``on_step`` is an optional callable invoked with ``"synced"``
    (temp file durable, rename pending) and ``"renamed"`` (entry
    swapped, directory fsync pending); the crash-injection tests hook
    these to kill the process between the steps.
    """
    path = os.fspath(path)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
    except Exception:
        # Best-effort cleanup on a write failure.  Ordinary exceptions
        # only: an InjectedCrash must leave the stale temp file behind,
        # exactly as a process kill would.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if on_step is not None:
        on_step("synced")
    os.replace(tmp_path, path)
    if on_step is not None:
        on_step("renamed")
    fsync_directory(os.path.dirname(path) or ".")


def save_snapshot(miner: IncrementalMiner, path) -> int:
    """Write a snapshot to ``path`` atomically and durably; returns the
    byte count.

    The snapshot lands under a temporary name in the destination
    directory, is fsynced, moved into place with :func:`os.replace`,
    and the directory entry is fsynced too (see
    :func:`write_bytes_durable`) — a crash at any point leaves either
    the previous snapshot or the complete new one.
    """
    data = dumps_snapshot(miner)
    write_bytes_durable(path, data)
    return len(data)


def load_snapshot(
    path,
    counters=None,
    guard=None,
    backend=None,
    probe=None,
) -> IncrementalMiner:
    """Read a snapshot file and rehydrate the miner (see :func:`loads_snapshot`)."""
    with open(os.fspath(path), "rb") as handle:
        data = handle.read()
    return loads_snapshot(
        data, counters=counters, guard=guard, backend=backend, probe=probe
    )

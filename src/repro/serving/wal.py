"""The write-ahead delta log: durable streaming ingest for the miner.

The warm delta fold (:meth:`~repro.core.incremental.IncrementalMiner.extend`)
makes folding a batch of new transactions ~13x cheaper than a cold
mine — but the fold lives in memory, and a process death between
``extend`` and ``save_snapshot`` silently loses every transaction since
the last snapshot.  This module closes that gap with the standard
database recipe: **append every transaction to an on-disk log before it
is folded**, so the durable state is always ``snapshot + log tail`` and
recovery is ``load_snapshot`` plus a replay of the tail.

Log layout
----------

A log is a directory of append-only *segment* files named
``segment-<base_seq>.wal``, where ``base_seq`` is the global sequence
number (0-based transaction count) of the segment's first record::

    offset  size  field
    0       4     magic  b"RWAL"
    4       1     version (= 1)
    5       var   base_seq (unsigned LEB128)
    ...           frames, back to back

Each frame is CRC-checked and length-prefixed so a torn tail is
detectable and recovery never replays a partial transaction::

    offset  size  field
    0       4     payload length N (u32, little-endian)
    4       4     CRC-32 of the payload (u32, little-endian)
    8       N     payload: one type byte, then the body

The only record type is ``TXN`` (``0x01``); its body is the
transaction's labels as a UTF-8 JSON array, the same label universe the
snapshot codec accepts (JSON scalars, so the round trip is lossless).
Sequence numbers are positional — ``base_seq`` plus the frame index —
which keeps frames small and makes any gap between segments detectable.

Durability policies
-------------------

``fsync="always"`` fsyncs after every append (every acked record
survives power loss); ``"batch"`` fsyncs at :meth:`WriteAheadLog.sync`
— the streaming miner calls it at each fold boundary, so a power cut
loses at most one micro-batch; ``"os"`` never fsyncs and leaves
flushing to the kernel (records survive a *process* crash but not a
power cut).  Segment files are opened unbuffered, so even under
``"os"`` every acked append has left the process — ``SIGKILL`` cannot
take it back.  See ``docs/robustness.md`` for the full guarantee
matrix.

Scanning and repair
-------------------

:func:`scan_wal` walks the segments, validates every frame, and stops
at the first torn or corrupt one — a truncated length prefix, a frame
extending past EOF, a CRC mismatch, an undecodable payload, or a
sequence gap between segments.  Everything before the stop point is
replayable; everything after is reported, never raised as an
unstructured exception.  :func:`repair_wal` then truncates the damaged
segment at its last valid frame and removes unreachable later segments
so the log can accept appends again.

Transient I/O errors (``EINTR``/``EAGAIN``-class) during appends are
retried with jittered exponential backoff and counted in
``wal.retries``; non-transient errors fail fast.
"""

from __future__ import annotations

import errno
import json
import os
import random
import time
import zlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..obs import LATENCY_BUCKETS, SIZE_BUCKETS, resolve_probe

__all__ = [
    "WAL_MAGIC",
    "WAL_VERSION",
    "FSYNC_POLICIES",
    "TRANSIENT_ERRNOS",
    "WalError",
    "WalScan",
    "SegmentInfo",
    "WriteAheadLog",
    "scan_wal",
    "repair_wal",
    "retry_io",
]

WAL_MAGIC = b"RWAL"
WAL_VERSION = 1

#: Supported fsync policies, strongest first.
FSYNC_POLICIES = ("always", "batch", "os")

#: Frame record types.
_RECORD_TXN = 0x01

#: Frame header: u32 payload length + u32 CRC-32, both little-endian.
_FRAME_HEADER = 8

#: errno values worth retrying: scheduler/signal noise, not real faults.
TRANSIENT_ERRNOS = frozenset(
    {errno.EINTR, errno.EAGAIN, errno.EWOULDBLOCK, errno.EBUSY}
)

#: Label types that survive the JSON round trip (mirrors the snapshot codec).
_LABEL_TYPES = (str, int, float, bool)


class WalError(ValueError):
    """Raised for unusable log directories or unencodable records.

    Subclasses :class:`ValueError` so the CLI's exit-code mapping
    treats WAL problems as user/input errors (exit 2), matching
    :class:`~repro.serving.snapshot.SnapshotError`.
    """


def retry_io(
    operation: Callable[[], object],
    *,
    attempts: int = 4,
    base_delay: float = 0.01,
    max_delay: float = 0.5,
    probe=None,
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[random.Random] = None,
):
    """Run ``operation`` with bounded jittered-backoff retries.

    Only *transient* :class:`OSError` values (:data:`TRANSIENT_ERRNOS`)
    are retried, at most ``attempts`` total tries, sleeping a jittered
    exponential backoff (``base_delay * 2**k``, capped at
    ``max_delay``, scaled by a uniform jitter in ``[0.5, 1.0]``)
    between tries.  Every retry increments the ``wal.retries`` counter
    on ``probe``.  Non-transient errors — and a transient one on the
    final attempt — propagate unchanged, so callers keep their
    fail-fast behaviour for real faults.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be at least 1, got {attempts}")
    obs = resolve_probe(probe)
    jitter = (rng.random if rng is not None else random.random)
    for attempt in range(attempts):
        try:
            return operation()
        except OSError as exc:
            if exc.errno not in TRANSIENT_ERRNOS or attempt == attempts - 1:
                raise
            obs.count("wal.retries")
            delay = min(base_delay * (2 ** attempt), max_delay)
            sleep(delay * (0.5 + 0.5 * jitter()))


def _append_uvarint(buf: bytearray, value: int) -> None:
    while value >= 0x80:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    shift = 0
    value = 0
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if byte < 0x80:
            return value, pos
        shift += 7


def _encode_record(labels) -> bytes:
    """One TXN frame: header + type byte + JSON label array."""
    for label in labels:
        if not isinstance(label, _LABEL_TYPES):
            raise WalError(
                "WAL transaction labels must be str/int/float/bool to "
                f"round-trip losslessly; got {type(label).__name__}: {label!r}"
            )
    payload = bytes([_RECORD_TXN]) + json.dumps(
        list(labels), ensure_ascii=False
    ).encode("utf-8")
    frame = bytearray(len(payload).to_bytes(4, "little"))
    frame += (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "little")
    frame += payload
    return bytes(frame)


def _decode_payload(payload: bytes) -> Optional[list]:
    """Labels of a TXN payload, or ``None`` when it does not parse."""
    if not payload or payload[0] != _RECORD_TXN:
        return None
    try:
        labels = json.loads(payload[1:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(labels, list):
        return None
    return labels


def _segment_name(base_seq: int) -> str:
    return f"segment-{base_seq:012d}.wal"


def _segment_header(base_seq: int) -> bytes:
    buf = bytearray(WAL_MAGIC)
    buf.append(WAL_VERSION)
    _append_uvarint(buf, base_seq)
    return bytes(buf)


@dataclass
class SegmentInfo:
    """One segment's scan outcome."""

    path: str
    base_seq: int
    n_records: int
    #: Byte offset just past the last valid frame (= truncation target).
    valid_end: int
    #: Bytes past ``valid_end`` that did not parse (0 = clean).
    torn_bytes: int = 0


@dataclass
class WalScan:
    """Everything a scan of a log directory learned.

    ``records`` holds ``(seq, labels)`` for every replayable record in
    sequence order.  A scan never raises on torn or corrupt content —
    it stops at the first invalid frame and reports what it dropped, so
    recovery can truncate instead of dying.
    """

    directory: str
    segments: List[SegmentInfo] = field(default_factory=list)
    records: List[Tuple[int, list]] = field(default_factory=list)
    #: Bytes of torn/corrupt tail dropped from the damaged segment.
    truncated_bytes: int = 0
    #: Segment the scan stopped in (``None`` = every frame valid).
    torn_segment: Optional[str] = None
    #: Why the scan stopped there (human-readable, one line).
    torn_reason: Optional[str] = None
    #: Later segment files made unreachable by the damage.
    dropped_segments: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.torn_segment is None and not self.dropped_segments

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended record would take."""
        if self.records:
            return self.records[-1][0] + 1
        for info in reversed(self.segments):
            return info.base_seq + info.n_records
        return 0


def _list_segments(directory: str) -> List[Tuple[int, str]]:
    """``(base_seq, path)`` of every segment file, in sequence order."""
    entries = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        if not (name.startswith("segment-") and name.endswith(".wal")):
            continue
        stem = name[len("segment-") : -len(".wal")]
        if not stem.isdigit():
            continue
        entries.append((int(stem), os.path.join(directory, name)))
    entries.sort()
    return entries


def scan_wal(directory) -> WalScan:
    """Validate every frame of every segment; never raises on damage.

    The scan walks segments in sequence order and stops at the first
    problem — torn frame, CRC mismatch, undecodable payload, bad
    header, or inter-segment sequence gap — recording the stop point
    and everything it made unreachable.  All records before the stop
    point are returned for replay.
    """
    directory = os.fspath(directory)
    scan = WalScan(directory=directory)
    segments = _list_segments(directory)
    expected_seq: Optional[int] = None
    for index, (name_seq, path) in enumerate(segments):
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            scan.torn_segment = path
            scan.torn_reason = f"unreadable segment: {exc}"
            scan.dropped_segments = [p for _, p in segments[index + 1 :]]
            return scan

        def stop(reason: str, valid_end: int, base_seq: int, n_records: int):
            scan.segments.append(
                SegmentInfo(
                    path, base_seq, n_records, valid_end, len(data) - valid_end
                )
            )
            scan.truncated_bytes += len(data) - valid_end
            scan.torn_segment = path
            scan.torn_reason = reason
            scan.dropped_segments = [p for _, p in segments[index + 1 :]]

        header = _segment_header(name_seq)
        if data[: len(header)] != header:
            stop("segment header mismatch (magic/version/base_seq)", 0, name_seq, 0)
            return scan
        if expected_seq is not None and name_seq != expected_seq:
            stop(
                f"sequence gap: segment starts at {name_seq}, "
                f"expected {expected_seq}",
                0,
                name_seq,
                0,
            )
            return scan
        pos = len(header)
        seq = name_seq
        n_records = 0
        while pos < len(data):
            if pos + _FRAME_HEADER > len(data):
                stop("torn frame header", pos, name_seq, n_records)
                return scan
            length = int.from_bytes(data[pos : pos + 4], "little")
            stored_crc = int.from_bytes(data[pos + 4 : pos + 8], "little")
            end = pos + _FRAME_HEADER + length
            if end > len(data):
                stop("torn frame payload", pos, name_seq, n_records)
                return scan
            payload = data[pos + _FRAME_HEADER : end]
            if (zlib.crc32(payload) & 0xFFFFFFFF) != stored_crc:
                stop("frame checksum mismatch", pos, name_seq, n_records)
                return scan
            labels = _decode_payload(payload)
            if labels is None:
                stop("undecodable frame payload", pos, name_seq, n_records)
                return scan
            scan.records.append((seq, labels))
            seq += 1
            n_records += 1
            pos = end
        scan.segments.append(SegmentInfo(path, name_seq, n_records, len(data)))
        expected_seq = seq
    return scan


def repair_wal(scan: WalScan, probe=None) -> int:
    """Truncate the torn segment and drop unreachable later ones.

    Takes the :class:`WalScan` that found the damage, physically
    truncates the damaged segment file at its last valid frame (so
    future appends produce a readable log again) and unlinks the
    segments past the gap.  Returns the number of bytes removed.
    Idempotent and a no-op on a clean scan.
    """
    obs = resolve_probe(probe)
    removed = 0
    if scan.torn_segment is not None:
        for info in scan.segments:
            if info.path == scan.torn_segment and info.torn_bytes:
                if info.n_records == 0 and info.valid_end == 0:
                    # Header itself was bad: the file holds nothing
                    # recoverable, remove it entirely.
                    removed += os.path.getsize(info.path)
                    os.unlink(info.path)
                else:
                    with open(info.path, "r+b") as handle:
                        handle.truncate(info.valid_end)
                        handle.flush()
                        os.fsync(handle.fileno())
                    removed += info.torn_bytes
                obs.count("wal.truncated_bytes", info.torn_bytes)
    for path in scan.dropped_segments:
        try:
            removed += os.path.getsize(path)
            os.unlink(path)
            obs.count("wal.segments_dropped")
        except OSError:
            pass
    if removed:
        from .snapshot import fsync_directory

        fsync_directory(scan.directory)
    return removed


class WriteAheadLog:
    """Appender over a log directory; one writer at a time.

    Parameters
    ----------
    directory:
        The log directory (created if missing).
    fsync:
        Durability policy — one of :data:`FSYNC_POLICIES`; see the
        module docstring for the guarantee each buys.
    segment_max_bytes:
        Roll to a fresh segment once the current one reaches this many
        bytes; bounded segments are what compaction prunes.
    start_seq:
        Sequence number of the first record if the directory holds no
        segments (a store whose log was fully pruned resumes from its
        snapshot's coverage).
    probe:
        Optional :class:`repro.obs.Probe` for the ``wal.*`` counters.
    fault_plan:
        Optional :class:`repro.runtime.FaultPlan`; the appender calls
        its named crash points (``wal.append``, ``wal.append.torn``,
        ``wal.append.flush``) around every write.
    """

    def __init__(
        self,
        directory,
        fsync: str = "batch",
        segment_max_bytes: int = 1 << 20,
        start_seq: int = 0,
        probe=None,
        fault_plan=None,
        retry_attempts: int = 4,
        retry_base_delay: float = 0.01,
        scan: Optional[WalScan] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; pick one of "
                f"{', '.join(FSYNC_POLICIES)}"
            )
        if segment_max_bytes < 1:
            raise WalError(
                f"segment_max_bytes must be positive, got {segment_max_bytes}"
            )
        self.directory = os.fspath(directory)
        self.fsync = fsync
        self.segment_max_bytes = segment_max_bytes
        self._obs = resolve_probe(probe)
        self._plan = fault_plan
        self._retry_attempts = retry_attempts
        self._retry_base_delay = retry_base_delay
        self._handle = None
        self._segment_bytes = 0
        self._synced = True
        os.makedirs(self.directory, exist_ok=True)
        if scan is None:
            scan = scan_wal(self.directory)
        if not scan.clean:
            raise WalError(
                f"WAL at {self.directory} is damaged "
                f"({scan.torn_reason}); run recovery to repair it first"
            )
        self.next_seq = scan.next_seq
        segments = _list_segments(self.directory)
        if start_seq > self.next_seq:
            # The covering snapshot is ahead of every logged record
            # (the log was pruned, or removed wholesale); the stale
            # segments carry nothing the snapshot does not, and keeping
            # them would open a sequence gap below the new base.
            for _, path in segments:
                os.unlink(path)
            segments = []
            self.next_seq = start_seq
        if segments:
            # Resume the live segment in place.
            self._resume_segment(segments[-1][0], segments[-1][1])
        else:
            self._roll_to(self.next_seq)

    # ------------------------------------------------------------------

    def _reach(self, point: str) -> None:
        if self._plan is not None:
            self._plan.reach(point)

    def _resume_segment(self, base_seq: int, path: str) -> None:
        self._handle = open(path, "ab", buffering=0)
        self._segment_bytes = os.path.getsize(path)
        self._segment_base = base_seq

    def _roll_to(self, base_seq: int) -> None:
        """Close the live segment and start a fresh one at ``base_seq``."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None
        path = os.path.join(self.directory, _segment_name(base_seq))
        if os.path.exists(path):
            raise WalError(f"segment {path} already exists")
        handle = open(path, "ab", buffering=0)
        handle.write(_segment_header(base_seq))
        self._handle = handle
        self._segment_bytes = handle.tell()
        self._segment_base = base_seq
        self._synced = False
        self._obs.count("wal.segments_rolled")

    def roll(self) -> None:
        """Start a new segment (making the previous one prunable).

        A no-op while the live segment holds no records — rolling
        would just recreate the same base sequence.
        """
        if self._handle is not None and self._segment_base == self.next_seq:
            return
        self._roll_to(self.next_seq)

    @property
    def segment_count(self) -> int:
        return len(_list_segments(self.directory))

    # ------------------------------------------------------------------

    def _write_all(self, data: bytes) -> None:
        handle = self._handle
        view = memoryview(data)
        while view:
            written = handle.write(view)
            view = view[written:]

    def append(self, labels) -> int:
        """Durably frame one transaction; returns its sequence number.

        The record is on its way to disk *before* the caller folds the
        transaction — the whole point of a write-ahead log.  The
        segment file is unbuffered, so an acked append survives a
        process kill under every fsync policy; ``fsync="always"``
        additionally survives power loss.  Transient I/O errors are
        retried with backoff (``wal.retries``); others propagate.
        """
        frame = _encode_record(labels)
        if self._segment_bytes >= self.segment_max_bytes:
            self.roll()
        # Clock reads only when a probe is attached: the probe-off path
        # must stay bit-identical in cost to the pre-histogram appender.
        timed = self._obs.active
        begin = perf_counter() if timed else 0.0
        self._reach("wal.append")
        if self._plan is not None:
            # The torn-write crash point: fail *mid-frame*, leaving a
            # half record for recovery to truncate — reachable only
            # through injection, since real frame writes are one
            # unbuffered write.
            try:
                self._plan.reach("wal.append.torn")
            except BaseException:
                self._write_all(frame[: max(1, len(frame) // 2)])
                raise
        retry_io(
            lambda: self._write_all(frame),
            attempts=self._retry_attempts,
            base_delay=self._retry_base_delay,
            probe=self._obs,
        )
        self._segment_bytes += len(frame)
        self._synced = False
        seq = self.next_seq
        self.next_seq = seq + 1
        self._obs.count("wal.appends")
        self._obs.count("wal.appended_bytes", len(frame))
        self._reach("wal.append.flush")
        if self.fsync == "always":
            self._fsync_now()
        if timed:
            # The latency histogram covers the durable part of the
            # append (write + policy fsync), which is what an operator
            # tuning the fsync policy wants the p99 of.
            self._obs.observe(
                "wal.append.seconds", perf_counter() - begin,
                buckets=LATENCY_BUCKETS,
            )
            self._obs.observe(
                "wal.record.bytes", len(frame), buckets=SIZE_BUCKETS
            )
        return seq

    def sync(self) -> None:
        """Durability point: fsync the live segment (policy-dependent).

        Under ``"always"`` every append already synced; under
        ``"batch"`` this is the fold-boundary fsync; under ``"os"`` it
        is a no-op beyond the unbuffered writes already issued.
        """
        if self.fsync == "os" or self._synced:
            return
        self._fsync_now()

    def _fsync_now(self) -> None:
        if self._handle is None:
            return
        retry_io(
            lambda: os.fsync(self._handle.fileno()),
            attempts=self._retry_attempts,
            base_delay=self._retry_base_delay,
            probe=self._obs,
        )
        self._synced = True
        self._obs.count("wal.fsyncs")

    # ------------------------------------------------------------------

    def prune_through(self, seq: int) -> int:
        """Remove segments whose records are *all* ≤ ``seq``.

        Only call once a snapshot covering ``seq`` is durable — the
        compactor's contract.  The live segment is never pruned (roll
        first to retire it).  Returns the number of files removed.
        """
        segments = _list_segments(self.directory)
        removed = 0
        live = self._handle.name if self._handle is not None else None
        for index, (base_seq, path) in enumerate(segments):
            if path == live:
                continue
            if index + 1 < len(segments):
                covers_through = segments[index + 1][0] - 1
            else:
                covers_through = self.next_seq - 1
            if covers_through <= seq:
                self._reach("wal.prune")
                os.unlink(path)
                removed += 1
                self._obs.count("wal.segments_pruned")
                self._reach("wal.prune.mid")
        if removed:
            from .snapshot import fsync_directory

            fsync_directory(self.directory)
        return removed

    def close(self) -> None:
        """Sync (per policy) and close the live segment."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.directory!r}, fsync={self.fsync!r}, "
            f"next_seq={self.next_seq})"
        )

"""Durable streaming ingest: WAL + micro-batch folds + tiered compaction.

A :class:`StreamingMiner` is the always-on form of the serving layer: a
single-writer *store directory* holding

* a canonical RSNP snapshot per compaction generation
  (``snapshot-<covered>.rsnp``, where ``<covered>`` is the number of
  ingested transactions the snapshot contains), and
* a write-ahead delta log (``wal/``, see :mod:`repro.serving.wal`)
  recording every transaction **before** it is folded.

The durable state is therefore always *snapshot + log tail*; the
in-memory repository is a pure cache of it.  Ingested transactions are
buffered and folded in micro-batches through the existing batched
:meth:`~repro.core.incremental.IncrementalMiner.extend` (the ~13x warm
delta fold), on a count and/or age cadence.  When enough log segments
accumulate, *compaction* merges the overlay generations back into a
canonical snapshot — written atomically and durably (temp file, fsync,
rename, directory fsync) — and prunes the log segments it covers.  WAL
segments are pruned **only after** the covering snapshot is durable;
that invariant is what the crash-at-every-point property tests pin.

Crash recovery (:meth:`StreamingMiner.open` — the same entry point as
normal startup, because recovery *is* startup) loads the newest
readable snapshot generation, repairs the log (truncating a torn final
record at the last valid CRC), replays the tail, and reports what it
did in a :class:`RecoveryReport`.  The recovered engine answers every
query identically to a process that never crashed, because the
closed-set family is a pure function of the transaction multiset and
the durable state always holds an exact prefix of the acked stream.

Failure semantics during operation:

* A :class:`~repro.runtime.MiningInterrupted` inside a fold (the
  per-fold :class:`~repro.runtime.RunGuard` budget tripped) leaves the
  in-memory repository holding a *reordered* partial batch — no longer
  provably a prefix of the log — so the store marks itself broken,
  refuses further ingest/compaction, and the caller re-opens it (cheap:
  snapshot + tail replay) to resume from the exact durable state.
  Nothing is lost; the interrupted batch is still in the log.
* Transient I/O errors in the append path retry with jittered backoff
  (``wal.retries``); non-transient ones propagate immediately.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from typing import Hashable, Iterable, List, Optional, Tuple

from ..obs import FlightRecorder, SIZE_BUCKETS, resolve_probe
from ..runtime import RunGuard
from ..runtime.guard import checker
from ..stats import OperationCounters
from ..core.incremental import IncrementalMiner
from .snapshot import (
    SnapshotError,
    dumps_snapshot,
    load_snapshot,
    write_bytes_durable,
)
from .wal import WalError, WalScan, WriteAheadLog, repair_wal, scan_wal

__all__ = ["StreamingMiner", "RecoveryReport", "CRASH_POINTS"]

#: Every named FaultPlan crash point the pipeline calls, in pipeline
#: order.  The crash-recovery property test iterates this list; adding
#: a new boundary here forces it through the kill-and-recover proof.
CRASH_POINTS = (
    "wal.append",         # before the record is framed to disk
    "wal.append.torn",    # mid-frame: a torn tail for recovery to cut
    "wal.append.flush",   # record written, fsync (if any) pending
    "fold",               # record durable, in-memory fold pending
    "compact",            # before the snapshot temp file is written
    "compact.save",       # temp snapshot durable, rename pending
    "compact.swap",       # renamed into place, directory fsync pending
    "compact.prune",      # snapshot durable, log pruning pending
    "wal.prune",          # before a covered segment is unlinked
    "wal.prune.mid",      # between unlinking covered segments
    "flight.emit",        # before a flight-recorder snapshot line
    "flight.emit.torn",   # mid-line: a torn recorder tail to repair
)

_SNAPSHOT_RE = re.compile(r"snapshot-(\d+)\.rsnp$")


def _snapshot_name(covered: int) -> str:
    return f"snapshot-{covered:012d}.rsnp"


def _list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(covered, path)`` of every snapshot generation, ascending."""
    entries = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        match = _SNAPSHOT_RE.fullmatch(name)
        if match:
            entries.append((int(match.group(1)), os.path.join(directory, name)))
    entries.sort()
    return entries


@dataclass
class RecoveryReport:
    """What opening a store found and did (the ``LoadReport`` of crash
    recovery).

    ``clean`` is ``True`` for an ordinary startup: a readable newest
    snapshot, no torn log tail, nothing dropped.  Anything else is
    still a *successful* recovery — the fields say exactly what was
    salvaged and what was cut.
    """

    directory: str
    snapshot_path: Optional[str] = None
    snapshot_transactions: int = 0
    replayed_records: int = 0
    recovered_transactions: int = 0
    segments_scanned: int = 0
    truncated_bytes: int = 0
    torn_segment: Optional[str] = None
    torn_reason: Optional[str] = None
    dropped_segments: List[str] = field(default_factory=list)
    corrupt_snapshots: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (
            self.torn_segment is None
            and not self.dropped_segments
            and not self.corrupt_snapshots
        )

    def describe(self) -> str:
        lines = [
            f"store {self.directory}: recovered "
            f"{self.recovered_transactions} transaction(s) "
            f"(snapshot {self.snapshot_transactions} + "
            f"{self.replayed_records} replayed)",
            f"transactions {self.recovered_transactions}",
        ]
        if self.snapshot_path is not None:
            lines.append(f"snapshot {os.path.basename(self.snapshot_path)}")
        lines.append(f"wal segments scanned: {self.segments_scanned}")
        if self.torn_segment is not None:
            lines.append(
                f"truncated {self.truncated_bytes} byte(s) of torn tail in "
                f"{os.path.basename(self.torn_segment)} ({self.torn_reason})"
            )
        for path in self.dropped_segments:
            lines.append(f"dropped unreachable segment {os.path.basename(path)}")
        for path in self.corrupt_snapshots:
            lines.append(
                f"ignored corrupt snapshot generation {os.path.basename(path)}"
            )
        return "\n".join(lines)


class StreamingMiner:
    """Durable, always-on ingest over an :class:`IncrementalMiner`.

    Construct with :meth:`open` (recovery and startup are the same
    code path).  Single writer per store directory; queries
    (:meth:`closed_sets`, :meth:`top_k`, :meth:`supersets_of`,
    :meth:`support_of`) delegate to the inner memoized engine.

    Parameters (all keyword-only on :meth:`open`)
    ---------------------------------------------
    fsync:
        WAL durability policy (``always``/``batch``/``os``); see
        :mod:`repro.serving.wal` and the guarantees matrix in
        ``docs/robustness.md``.
    batch_records / batch_age:
        Micro-batch fold cadence: fold when this many transactions are
        buffered, or when the oldest buffered one is this old
        (age checked on :meth:`ingest` and :meth:`tick`).
    compact_segments:
        Run compaction when the log holds more than this many segment
        files (the tier fan-in).
    segment_max_bytes:
        WAL segment roll threshold.
    keep_snapshots:
        Snapshot generations to retain (older ones are removed after a
        successful compaction; the latest is never removed).
    fold_timeout / fold_memory_limit_mb:
        Per-fold :class:`RunGuard` budget; a trip marks the store
        broken (see the module docstring) and propagates.
    flight / flight_interval / flight_segment_max_bytes /
    flight_keep_segments:
        Flight-recorder control (:class:`repro.obs.FlightRecorder`,
        written under ``<store>/flight/``).  ``flight=None`` (the
        default) turns the recorder on exactly when a probe is
        attached; ``True`` demands one (a recorder with nothing to
        record is a configuration error); ``False`` disables it.  The
        recorder emits at every fold/tick/compaction boundary, rate-
        limited to one record per ``flight_interval`` seconds.
    """

    def __init__(self, *args, **kwargs) -> None:
        raise TypeError(
            "use StreamingMiner.open(directory, ...) — recovery and "
            "startup share one entry point"
        )

    @classmethod
    def open(
        cls,
        directory,
        *,
        fsync: str = "batch",
        batch_records: int = 64,
        batch_age: Optional[float] = None,
        compact_segments: int = 4,
        segment_max_bytes: int = 1 << 20,
        keep_snapshots: int = 2,
        fold_timeout: Optional[float] = None,
        fold_memory_limit_mb: Optional[float] = None,
        flight: Optional[bool] = None,
        flight_interval: float = 1.0,
        flight_segment_max_bytes: int = 256 << 10,
        flight_keep_segments: int = 4,
        counters: Optional[OperationCounters] = None,
        backend=None,
        probe=None,
        fault_plan=None,
    ) -> "StreamingMiner":
        if batch_records < 1:
            raise WalError(
                f"batch_records must be at least 1, got {batch_records}"
            )
        if compact_segments < 1:
            raise WalError(
                f"compact_segments must be at least 1, got {compact_segments}"
            )
        if keep_snapshots < 1:
            raise WalError(
                f"keep_snapshots must be at least 1, got {keep_snapshots}"
            )
        self = object.__new__(cls)
        self._directory = os.fspath(directory)
        self._wal_dir = os.path.join(self._directory, "wal")
        self._obs = resolve_probe(probe)
        self._probe = probe
        self._plan = fault_plan
        self._batch_records = batch_records
        self._batch_age = batch_age
        self._compact_segments = compact_segments
        self._keep_snapshots = keep_snapshots
        self._fold_timeout = fold_timeout
        self._fold_memory_limit_mb = fold_memory_limit_mb
        self._backend = backend
        self._buffer: List[list] = []
        self._buffer_since: Optional[float] = None
        self._broken = False
        self._closed = False
        self._flight: Optional[FlightRecorder] = None
        self._last_fold_seconds: Optional[float] = None
        os.makedirs(self._directory, exist_ok=True)

        with self._obs.phase("serve.recover", store=self._directory):
            report = RecoveryReport(directory=self._directory)
            self._clean_stale_tmp()

            # Newest readable snapshot generation wins; a corrupt newest
            # falls back to the previous one — safe, because segments are
            # pruned only once their covering snapshot is durable, so the
            # older generation's tail is still in the log.
            miner = None
            covered = 0
            for covered_candidate, path in reversed(_list_snapshots(self._directory)):
                try:
                    miner = load_snapshot(
                        path, counters=counters, backend=backend, probe=probe
                    )
                except (SnapshotError, OSError):
                    report.corrupt_snapshots.append(path)
                    continue
                if miner.n_transactions != covered_candidate:
                    report.corrupt_snapshots.append(path)
                    miner = None
                    continue
                report.snapshot_path = path
                covered = covered_candidate
                break
            if miner is None:
                miner = IncrementalMiner(
                    counters=counters, backend=backend, probe=probe
                )
            report.snapshot_transactions = covered

            scan = scan_wal(self._wal_dir)
            report.segments_scanned = len(scan.segments) + (
                1 if scan.torn_segment not in {s.path for s in scan.segments}
                and scan.torn_segment is not None
                else 0
            )
            if not scan.clean:
                report.truncated_bytes = scan.truncated_bytes
                report.torn_segment = scan.torn_segment
                report.torn_reason = scan.torn_reason
                report.dropped_segments = list(scan.dropped_segments)
                repair_wal(scan, probe=probe)

            tail = [labels for seq, labels in scan.records if seq >= covered]
            if tail:
                miner.extend(tail)
                self._obs.count("wal.records_replayed", len(tail))
            report.replayed_records = len(tail)
            report.recovered_transactions = miner.n_transactions

            self._miner = miner
            self._wal = WriteAheadLog(
                self._wal_dir,
                fsync=fsync,
                segment_max_bytes=segment_max_bytes,
                start_seq=miner.n_transactions,
                probe=probe,
                fault_plan=fault_plan,
            )
            self._last_compacted = covered
            self.recovery = report

            if flight is None:
                flight = self._obs.active
            if flight:
                if not self._obs.active:
                    raise WalError(
                        "flight recorder needs an active probe; pass "
                        "probe=repro.obs.Probe() (or flight=False)"
                    )
                self._flight = FlightRecorder(
                    os.path.join(self._directory, "flight"),
                    self._obs,
                    interval=flight_interval,
                    segment_max_bytes=flight_segment_max_bytes,
                    keep_segments=flight_keep_segments,
                    status=self._flight_status,
                    fault_plan=fault_plan,
                )
                # First record immediately: a store that dies before its
                # first fold still leaves its recovery state on disk.
                self._flight.emit(force=True)
        return self

    # ------------------------------------------------------------------
    # Introspection / delegation
    # ------------------------------------------------------------------

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def miner(self) -> IncrementalMiner:
        """The inner memoized query engine."""
        return self._miner

    @property
    def n_transactions(self) -> int:
        """Transactions folded into the repository (excludes the buffer)."""
        return self._miner.n_transactions

    @property
    def pending_records(self) -> int:
        """Logged-but-unfolded transactions in the micro-batch buffer."""
        return len(self._buffer)

    @property
    def broken(self) -> bool:
        """``True`` after a mid-fold budget trip; re-open to resume."""
        return self._broken

    @property
    def flight(self) -> Optional[FlightRecorder]:
        """The attached flight recorder (``None`` when disabled)."""
        return self._flight

    def _flight_status(self) -> dict:
        """The writer-side status dict stamped on each flight record."""
        return {
            "broken": self._broken,
            "n_transactions": self._miner.n_transactions,
            "pending_records": len(self._buffer),
            "wal_next_seq": self._wal.next_seq,
            "last_compacted": self._last_compacted,
            "last_fold_seconds": self._last_fold_seconds,
        }

    def closed_sets(self, smin: int = 1):
        return self._miner.closed_sets(smin)

    def top_k(self, k: int, smin: int = 1):
        return self._miner.top_k(k, smin)

    def supersets_of(self, items: Iterable[Hashable], smin: int = 1):
        return self._miner.supersets_of(items, smin)

    def support_of(self, items: Iterable[Hashable]) -> int:
        return self._miner.support_of(items)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _reach(self, point: str) -> None:
        if self._plan is not None:
            self._plan.reach(point)

    def _require_usable(self) -> None:
        if self._closed:
            raise WalError(f"store {self._directory} is closed")
        if self._broken:
            raise WalError(
                f"store {self._directory} had a fold interrupted mid-batch; "
                "re-open it to resume from the durable state (nothing was "
                "lost — the batch is still in the log)"
            )

    def ingest(self, transaction: Iterable[Hashable]) -> int:
        """Durably log one transaction, then fold on the batch cadence.

        Returns the transaction's global sequence number.  When this
        call returns, the record has left the process (and, under
        ``fsync="always"``, reached the disk): a crash at any later
        moment cannot lose it.
        """
        self._require_usable()
        labels = list(transaction)
        seq = self._wal.append(labels)
        self._buffer.append(labels)
        if self._buffer_since is None:
            self._buffer_since = time.monotonic()
        if len(self._buffer) >= self._batch_records or self._age_exceeded():
            self.fold()
            self.maybe_compact()
        return seq

    def _age_exceeded(self) -> bool:
        return (
            self._batch_age is not None
            and self._buffer_since is not None
            and time.monotonic() - self._buffer_since >= self._batch_age
        )

    def tick(self) -> bool:
        """Age-based cadence hook for idle follow loops.

        Folds (and maybe compacts) if the oldest buffered transaction
        has exceeded ``batch_age``; returns whether a fold ran.
        """
        self._require_usable()
        folded = False
        if self._buffer and self._age_exceeded():
            self.fold()
            self.maybe_compact()
            folded = True
        elif self._flight is not None:
            # Idle ticks still freshen the recorder (fold emits itself),
            # so an attached reader sees a live store as live.
            self._flight.emit()
        return folded

    def fold(self) -> int:
        """Fold the buffered micro-batch into the repository.

        Syncs the log first (the ``fsync="batch"`` durability point),
        then runs the batched warm delta fold under a fresh per-fold
        guard budget.  Returns the number of transactions folded.
        """
        self._require_usable()
        if not self._buffer:
            return 0
        self._wal.sync()
        self._reach("fold")
        batch = self._buffer
        n = len(batch)
        guard = None
        if self._fold_timeout is not None or self._fold_memory_limit_mb is not None:
            # Ingest polls once per transaction; stride 1 keeps small
            # batches from slipping between samples (same reasoning as
            # the snapshot CLI).
            guard = RunGuard(
                timeout=self._fold_timeout,
                memory_limit_mb=self._fold_memory_limit_mb,
                stride=1,
            )
        miner = self._miner
        fold_begin = time.perf_counter()
        with self._obs.phase("serve.fold", records=n):
            miner._check = checker(guard, miner.counters)
            try:
                miner.extend(batch)
            except BaseException:
                # The fold applied an unknown reordered prefix of the
                # batch; the in-memory state is no longer provably a
                # prefix of the log, so compaction must not run again
                # in this process.  The durable state is untouched.
                self._broken = True
                if self._flight is not None:
                    # Best effort: leave the broken flag on disk for an
                    # attached reader before the exception unwinds.
                    try:
                        self._flight.emit(force=True)
                    except Exception:
                        pass
                raise
            finally:
                miner._check = checker(None)
                if guard is not None:
                    guard.finish()
        self._last_fold_seconds = time.perf_counter() - fold_begin
        self._buffer = []
        self._buffer_since = None
        self._obs.count("wal.folds")
        self._obs.count("wal.folded_records", n)
        self._obs.observe("serve.fold.records", n, buckets=SIZE_BUCKETS)
        if self._flight is not None:
            self._flight.emit()
        return n

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def maybe_compact(self) -> Optional[str]:
        """Compact when the log's segment tier is over its fan-in."""
        if self._wal.segment_count > self._compact_segments:
            return self.compact()
        return None

    def compact(self) -> Optional[str]:
        """Merge the overlay generations into a canonical snapshot.

        Folds anything still buffered, writes the full repository as a
        new snapshot generation — atomically and durably (temp file +
        fsync + rename + directory fsync) — and only then prunes the
        log segments the snapshot covers, plus snapshot generations
        beyond ``keep_snapshots``.  Returns the new snapshot path, or
        ``None`` when nothing changed since the last compaction.
        """
        self._require_usable()
        self.fold()
        covered = self._miner.n_transactions
        if covered == self._last_compacted and _list_snapshots(self._directory):
            return None
        self._reach("compact")
        path = os.path.join(self._directory, _snapshot_name(covered))
        with self._obs.phase("serve.compact", covered=covered):
            data = dumps_snapshot(self._miner)
            write_bytes_durable(path, data, on_step=self._compact_step)
            self._obs.count("compaction.runs")
            self._obs.count("compaction.snapshot_bytes", len(data))
            # The snapshot is durable from here on: pruning the covered
            # log segments (and surplus older generations) is safe.
            self._reach("compact.prune")
            self._wal.roll()
            pruned = self._wal.prune_through(covered - 1)
            self._obs.count("compaction.segments_pruned", pruned)
            for old_covered, old_path in _list_snapshots(self._directory)[
                : -self._keep_snapshots
            ]:
                try:
                    os.unlink(old_path)
                    self._obs.count("compaction.snapshots_removed")
                except OSError:
                    pass
        self._last_compacted = covered
        if self._flight is not None:
            # Compactions are rare and change the store's shape; force a
            # record so the generation flip is always on disk.
            self._flight.emit(force=True)
        return path

    def _compact_step(self, step: str) -> None:
        if step == "synced":
            self._reach("compact.save")
        elif step == "renamed":
            self._reach("compact.swap")

    def _clean_stale_tmp(self) -> None:
        """Remove temp files a crashed compaction left behind."""
        try:
            names = os.listdir(self._directory)
        except FileNotFoundError:
            return
        for name in names:
            if ".rsnp.tmp." in name:
                try:
                    os.unlink(os.path.join(self._directory, name))
                except OSError:
                    pass

    # ------------------------------------------------------------------

    def close(self, compact: bool = True) -> None:
        """Flush everything and close the log.

        A clean shutdown folds the buffer and (by default) compacts, so
        the next open loads one snapshot and replays nothing.  A broken
        store only closes the log — its durable state is already
        exactly right for the next open.
        """
        if self._closed:
            return
        if not self._broken:
            self.fold()
            if compact:
                self.compact()
        self._wal.close()
        if self._flight is not None:
            self._flight.close()
        self._closed = True

    def __enter__(self) -> "StreamingMiner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # An exception (including an injected crash) must leave the
        # on-disk state exactly as-is; only a clean exit flushes.
        if exc_type is None:
            self.close()
        else:
            if self._flight is not None:
                self._flight.__exit__(exc_type, exc, tb)
            self._closed = True

    def __repr__(self) -> str:
        return (
            f"StreamingMiner({self._directory!r}, "
            f"transactions={self._miner.n_transactions}, "
            f"pending={len(self._buffer)})"
        )

"""The canonical query-verb surface shared by ``query`` and ``serve``.

The serving layer answers the same four verbs from two entry points:
the one-shot ``repro-mine query`` command and the long-lived
``repro-mine serve`` daemon (:mod:`repro.serving.server`).  Their
answers must be *byte-identical* — the differential suite in
``tests/serving/test_server.py`` pins exactly that — so the parsing
and rendering live here, once, and both callers delegate:

* :func:`parse_items` — coerce a comma-separated CLI/URL item spec to
  the miner's label universe (string tokens fall back to their ``int``
  reading when that matches a label; unknown items pass through,
  ``support_of`` legitimately answers 0 for them);
* :func:`query_lines` — evaluate one verb and render the answer in the
  one-set-per-line ``item item (support)`` convention of the original
  fim tools, deterministically ordered (descending support, then the
  textual form of the labels).

``QUERY_VERBS`` names the four verbs; it is the single registry the
server's routing table and the differential suite iterate.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["QUERY_VERBS", "parse_items", "query_lines"]

#: The four query verbs of the serving surface, in documentation order.
QUERY_VERBS: Tuple[str, ...] = (
    "closed_sets",
    "top_k",
    "supersets_of",
    "support_of",
)


def parse_items(spec: str, miner) -> List[object]:
    """Split a comma-separated item spec, coercing tokens to known labels.

    Command-line and URL tokens are strings, but FIMI-derived labels are
    ints; a token that is not itself a label falls back to its int
    reading when that matches one.  Unknown items pass through
    unchanged — ``support_of`` legitimately answers 0 for them.
    """
    labels = set(miner.item_labels)
    items: List[object] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token not in labels:
            try:
                as_int = int(token)
            except ValueError:
                pass
            else:
                if as_int in labels:
                    items.append(as_int)
                    continue
        items.append(token)
    return items


def _family_lines(family) -> List[str]:
    """Render a ``labels -> support`` mapping in the canonical order."""
    ordered = sorted(
        family.items(),
        key=lambda e: (-e[1], [str(label) for label in e[0]]),
    )
    return [
        " ".join(str(label) for label in labels) + f" ({supp})"
        for labels, supp in ordered
    ]


def query_lines(
    miner,
    verb: str,
    *,
    smin: int = 1,
    k: Optional[int] = None,
    items: Optional[Iterable[object]] = None,
) -> List[str]:
    """Answer one query verb as its canonical text lines.

    ``verb`` is one of :data:`QUERY_VERBS`.  ``k`` is required for
    ``top_k``; ``items`` is required for ``supersets_of`` and
    ``support_of`` (a sequence of labels, e.g. from
    :func:`parse_items`).  Raises :class:`ValueError` for an unknown
    verb or a missing parameter — the callers map that to exit code 2
    (CLI) or HTTP 400 (server).
    """
    if verb == "support_of":
        if items is None:
            raise ValueError("support_of needs an item list")
        return [str(miner.support_of(items))]
    if verb == "top_k":
        if k is None:
            raise ValueError("top_k needs k")
        return [
            " ".join(str(label) for label in labels) + f" ({supp})"
            for labels, supp in miner.top_k(k, smin=smin)
        ]
    if verb == "supersets_of":
        if items is None:
            raise ValueError("supersets_of needs an item list")
        return _family_lines(miner.supersets_of(items, smin=smin))
    if verb == "closed_sets":
        return _family_lines(miner.closed_sets(smin))
    raise ValueError(
        f"unknown query verb {verb!r}; expected one of {', '.join(QUERY_VERBS)}"
    )

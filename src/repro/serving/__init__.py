"""Warm-path serving layer over the IsTa prefix-tree repository.

``repro.serving`` turns the incremental miner from a one-shot algorithm
into a mine-once, serve-many system:

* :mod:`~repro.serving.snapshot` — a compact, versioned, checksummed
  binary codec for the repository.  ``save_snapshot`` /
  ``load_snapshot`` warm-start an
  :class:`~repro.core.incremental.IncrementalMiner` so a delta batch
  costs only its new intersections, not a cold re-mine.
* :mod:`~repro.serving.build` — exact repository merges
  (:func:`merge_miners`) and the parallel bridge
  (:func:`build_miner_parallel`) that mines shards in worker processes
  and folds them into one servable repository.
* :mod:`~repro.serving.wal` — the CRC-framed, length-prefixed
  write-ahead delta log (:class:`WriteAheadLog`) with configurable
  fsync policy, torn-tail scan/repair, and retry-with-backoff on
  transient I/O errors.
* :mod:`~repro.serving.streaming` — :class:`StreamingMiner`, the
  durable always-on ingest engine: WAL + micro-batch folds + tiered
  snapshot compaction + crash recovery (``repro ingest`` /
  ``repro recover`` on the CLI).
* :mod:`~repro.serving.health` — :func:`compute_health`, the read-only
  :class:`HealthReport` assembled from a store's flight-recorder tail,
  WAL and snapshot generations (``repro top`` on the CLI).
* :mod:`~repro.serving.queries` — the canonical query-verb parsing and
  rendering shared by ``repro query`` and the daemon (what makes their
  answers byte-identical).
* :mod:`~repro.serving.server` — :class:`QueryServer`, the long-lived
  HTTP/JSON daemon with hot snapshot swap and admission control
  (``repro serve`` on the CLI).

The query surface itself (``closed_sets``, ``support_of``, ``top_k``,
``supersets_of``, memoization) lives on ``IncrementalMiner``, re-exported
here for convenience.
"""

from ..core.incremental import IncrementalMiner
from .build import build_miner_parallel, merge_miners
from .health import HealthReport, compute_health
from .queries import QUERY_VERBS, parse_items, query_lines
from .snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SnapshotError,
    dumps_snapshot,
    load_snapshot,
    loads_snapshot,
    save_snapshot,
    write_bytes_durable,
)
from .streaming import CRASH_POINTS, RecoveryReport, StreamingMiner
from .wal import WalError, WriteAheadLog, repair_wal, retry_io, scan_wal


def __getattr__(name):
    # The daemon drags asyncio along; every one-shot import of
    # ``repro`` (CLI mine/query runs, workers) should not pay for it.
    if name == "QueryServer":
        from .server import QueryServer

        return QueryServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "IncrementalMiner",
    "SnapshotError",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "dumps_snapshot",
    "loads_snapshot",
    "save_snapshot",
    "load_snapshot",
    "write_bytes_durable",
    "merge_miners",
    "build_miner_parallel",
    "StreamingMiner",
    "RecoveryReport",
    "CRASH_POINTS",
    "HealthReport",
    "compute_health",
    "QueryServer",
    "QUERY_VERBS",
    "parse_items",
    "query_lines",
    "WriteAheadLog",
    "WalError",
    "scan_wal",
    "repair_wal",
    "retry_io",
]

"""Building servable repositories: exact merges and the parallel bridge.

The IsTa paper (Section 5) notes that repositories of disjoint parts of
a database can be combined; this module makes that exact.  For
transaction multisets ``A`` and ``B`` with closed families ``F_A`` and
``F_B``:

* every closed set of ``A ∪ B`` is a set of ``F_A``, a set of ``F_B``,
  or an intersection ``a ∩ b`` of one from each (its cover splits into
  an ``A``-part and a ``B``-part; intersecting each part's transactions
  yields a closed superset on that side, and the set equals the
  intersection of those two closures);
* the support of any candidate ``x`` in the union is
  ``supp_A(x) + supp_B(x)``, where each side's support is the maximum
  support over that side's stored supersets of ``x`` (the Section 2.3
  smallest-closed-superset rule, answered by the guided descent);
* a candidate is closed in the union iff no *strict* superset among the
  candidates has equal support — sound because the union's closure of
  ``x`` is itself one of the candidates.

The merge is therefore provably exact, at a cost quadratic in the two
family sizes (the pairwise-intersection candidate generation).  That is
the right trade when the per-part mining dominates — the regime the
parallel snapshot build targets — but for a handful of transactions a
plain :meth:`IncrementalMiner.extend` is cheaper.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..core.incremental import IncrementalMiner
from ..core.prefix_tree import PrefixTree
from ..data.database import TransactionDatabase
from ..kernels import resolve_backend
from ..obs import resolve_probe
from ..parallel import map_in_processes, plan_shards
from .snapshot import dumps_snapshot, loads_snapshot

__all__ = ["merge_miners", "build_miner_parallel"]


def merge_miners(
    first: IncrementalMiner,
    second: IncrementalMiner,
    counters=None,
    guard=None,
    backend=None,
    probe=None,
) -> IncrementalMiner:
    """Exactly merge two repositories into one fresh miner.

    The result answers every query as if all of ``first``'s and
    ``second``'s transactions had been fed to a single miner (the two
    inputs are left untouched).  Label spaces may differ or overlap;
    ``second``'s items are recoded into ``first``'s space, with unseen
    labels appended.  See the module docstring for the candidate
    generation and support arithmetic that make this exact.
    """
    obs = resolve_probe(probe)
    kernel = obs.wrap_kernel(resolve_backend(backend))
    with obs.phase(
        "serve.merge",
        left=first.n_transactions,
        right=second.n_transactions,
    ):
        labels: List = list(first._labels)
        code_of: Dict = dict(first._label_to_code)
        remap: List[int] = []
        for label in second._labels:
            code = code_of.get(label)
            if code is None:
                code = len(labels)
                code_of[label] = code
                labels.append(label)
            remap.append(code)
        family_a = dict(first._family_pairs(1))
        family_b: Dict[int, int] = {}
        for mask, supp in second._family_pairs(1):
            recoded = 0
            remaining = mask
            while remaining:
                low = remaining & -remaining
                recoded |= 1 << remap[low.bit_length() - 1]
                remaining ^= low
            family_b[recoded] = supp
        # Candidates: both families plus all pairwise intersections.
        # family_a is scanned once per family_b set — pack it into a
        # resident table so each scan is one table-wide AND.
        candidates = set(family_a)
        candidates.update(family_b)
        n_bits = len(labels)
        table_a = kernel.pack(list(family_a), n_bits)
        for mask_b in family_b:
            for joint in kernel.intersect_rows(table_a, mask_b):
                if joint:
                    candidates.add(joint)
        # Per-side supports via the guided descent on each side's tree.
        # first's tree is already in the unified code space (its codes
        # are unchanged); second's family is rebuilt as a tree in the
        # unified space — lossless, see PrefixTree.from_closed_family.
        tree_a = first._ensure_tree()
        tree_b = PrefixTree.from_closed_family(iter(family_b.items()))
        supports: Dict[int, int] = {}
        for candidate in candidates:
            supports[candidate] = tree_a.superset_support(
                candidate
            ) + tree_b.superset_support(candidate)
        # Closedness: keep candidates no strict superset matches.  The
        # candidate tree's intermediate nodes carry the max support over
        # the candidates below them, so one strict descent per
        # candidate answers "does any strict superset tie my support?".
        candidate_tree = PrefixTree.from_closed_family(iter(supports.items()))
        merged_family = {
            candidate: supp
            for candidate, supp in supports.items()
            if candidate_tree.superset_support(candidate, strict=True) < supp
        }
        obs.count("serving.merge.candidates", len(supports))
        obs.count("serving.merge.kept", len(merged_family))
    merged = IncrementalMiner(
        counters=counters, guard=guard, backend=backend, probe=probe
    )
    merged._tree = None
    merged._flat = merged_family
    merged._labels = labels
    merged._label_to_code = code_of
    merged._n_transactions = first.n_transactions + second.n_transactions
    return merged


def _build_worker(payload: Dict) -> bytes:
    """Build one block's repository and ship it home as snapshot bytes.

    Runs in a worker process (must stay top-level for pickling).  The
    snapshot codec doubles as the wire format: compact, versioned, and
    already checksummed.
    """
    db = TransactionDatabase(
        list(payload["masks"]), payload["n_items"], list(payload["labels"])
    )
    miner = IncrementalMiner.from_database(db, backend=payload["backend"])
    return dumps_snapshot(miner)


def build_miner_parallel(
    db: TransactionDatabase,
    n_workers: Optional[int] = None,
    counters=None,
    guard=None,
    backend=None,
    probe=None,
) -> IncrementalMiner:
    """Build a servable repository from ``db`` across worker processes.

    The transactions are split into contiguous blocks (block order is
    irrelevant: the closed family of a multiset union does not depend
    on arrival order), each block is mined into its own repository by
    :meth:`IncrementalMiner.from_database` in a worker process, and the
    block repositories are folded together with the exact
    :func:`merge_miners` reduction.  ``n_workers=1`` (or a single
    planned block) runs inline with no processes — identical output.

    The result is bit-for-bit the repository a serial build would
    produce, so it can be snapshotted and served directly.
    """
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    if n_workers < 1:
        raise ValueError(f"n_workers must be at least 1, got {n_workers}")
    obs = resolve_probe(probe)
    kernel = resolve_backend(backend)
    ranges = plan_shards(db, "transactions", n_workers)
    if len(ranges) <= 1:
        return IncrementalMiner.from_database(
            db, counters=counters, guard=guard, backend=backend, probe=probe
        )
    with obs.phase("serve.parallel_build", blocks=len(ranges), workers=n_workers):
        payloads = [
            {
                "masks": db.transactions[start:end],
                "n_items": db.n_items,
                "labels": db.item_labels,
                "backend": kernel.name,
            }
            for start, end in ranges
        ]
        snapshots = map_in_processes(_build_worker, payloads, n_workers)
        obs.count("serving.parallel_build.blocks", len(snapshots))
        merged = loads_snapshot(snapshots[0], backend=backend)
        for snapshot in snapshots[1:]:
            merged = merge_miners(
                merged, loads_snapshot(snapshot, backend=backend), backend=backend
            )
    if counters is not None or guard is not None or probe is not None:
        final = IncrementalMiner(
            counters=counters, guard=guard, backend=backend, probe=probe
        )
        final._tree = None
        final._flat = dict(merged._family_pairs(1))
        final._labels = list(merged._labels)
        final._label_to_code = dict(merged._label_to_code)
        final._n_transactions = merged.n_transactions
        return final
    return merged

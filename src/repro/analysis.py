"""Descriptive statistics of databases and closed families.

Section 2.3 of the paper motivates closed sets as the lossless
compressed form of the frequent family ("can sometimes reduce it by
orders of magnitude").  This module quantifies exactly that, plus the
shape statistics that predict which algorithm family will win
(the transactions/items ratio the conclusions are about).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .data import itemset
from .data.database import TransactionDatabase
from .result import MiningResult

__all__ = [
    "DatabaseProfile",
    "FamilyProfile",
    "profile_database",
    "profile_family",
    "compression_ratio",
]


@dataclass(frozen=True)
class DatabaseProfile:
    """Shape statistics of a transaction database."""

    n_transactions: int
    n_items: int
    density: float
    mean_transaction_size: float
    max_transaction_size: int
    distinct_transactions: int
    items_per_transaction_ratio: float  # n_items / n_transactions

    @property
    def favours_intersection(self) -> bool:
        """The paper's regime test: many items, few transactions."""
        return self.items_per_transaction_ratio >= 2.0

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        regime = (
            "the intersection regime (few transactions, many items)"
            if self.favours_intersection
            else "the enumeration regime (many transactions, few items)"
        )
        return (
            f"{self.n_transactions} transactions over {self.n_items} items, "
            f"density {self.density:.3f}, mean transaction size "
            f"{self.mean_transaction_size:.1f} (max {self.max_transaction_size}), "
            f"{self.distinct_transactions} distinct transactions — {regime}."
        )


@dataclass(frozen=True)
class FamilyProfile:
    """Statistics of a closed frequent family."""

    n_sets: int
    total_items: int
    mean_size: float
    max_size: int
    size_histogram: Dict[int, int]
    support_histogram: Dict[int, int]
    mean_support: float
    max_support: int


def profile_database(db: TransactionDatabase) -> DatabaseProfile:
    """Compute the shape statistics of a database."""
    sizes = db.transaction_sizes()
    n = db.n_transactions
    return DatabaseProfile(
        n_transactions=n,
        n_items=db.n_items,
        density=db.density(),
        mean_transaction_size=(sum(sizes) / n) if n else 0.0,
        max_transaction_size=max(sizes, default=0),
        distinct_transactions=len(set(db.transactions)),
        items_per_transaction_ratio=(db.n_items / n) if n else float("inf"),
    )


def profile_family(result: MiningResult) -> FamilyProfile:
    """Compute the statistics of a mined family."""
    sizes = [itemset.size(mask) for mask in result]
    supports = [result[mask] for mask in result]
    size_histogram: Dict[int, int] = {}
    for size in sizes:
        size_histogram[size] = size_histogram.get(size, 0) + 1
    support_histogram: Dict[int, int] = {}
    for support in supports:
        support_histogram[support] = support_histogram.get(support, 0) + 1
    count = len(result)
    return FamilyProfile(
        n_sets=count,
        total_items=sum(sizes),
        mean_size=(sum(sizes) / count) if count else 0.0,
        max_size=max(sizes, default=0),
        size_histogram=size_histogram,
        support_histogram=support_histogram,
        mean_support=(sum(supports) / count) if count else 0.0,
        max_support=max(supports, default=0),
    )


def compression_ratio(
    closed: MiningResult, all_frequent: Optional[MiningResult] = None
) -> float:
    """How much smaller the closed family is than the full one.

    With ``all_frequent`` given the ratio is exact; otherwise it is the
    provable lower bound obtained by counting, for every closed set,
    the subsets it uniquely accounts for — at least ``2^k`` frequent
    sets are represented by a closed set with ``k`` perfect-extension
    items... which cannot be known from the closed family alone, so the
    bound without ``all_frequent`` is simply 1.0 (no claim).

    Returns ``len(all_frequent) / len(closed)``.
    """
    if not len(closed):
        return 1.0
    if all_frequent is None:
        return 1.0
    return len(all_frequent) / len(closed)

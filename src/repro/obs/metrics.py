"""Metric primitives: counters, gauges, histograms, and their registry.

The paper's evaluation is a *cost model* story — numbers of transaction
intersections, prefix-tree nodes, items eliminated by the
remaining-occurrence bound (Sections 3.3-3.5) — so the registry is
deliberately tiny and exact: plain Python integers/floats, no sampling,
no background threads.  A :class:`MetricsRegistry` is filled by a
:class:`~repro.obs.probe.Probe` during a mining run and exported as

* a JSON snapshot (:meth:`MetricsRegistry.to_json`) for machine
  checking (the benchmark invariant gate consumes this), or
* Prometheus text exposition format (:meth:`MetricsRegistry.to_prom`)
  for the future service scrape path.

Snapshots from worker processes merge associatively
(:meth:`MetricsRegistry.merge_snapshot`): counters add, gauges keep the
maximum, histograms combine bucket-wise — which is what makes the
per-worker aggregation of :func:`repro.parallel.mine_parallel` exact.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "prom_name",
    "escape_help",
    "escape_label_value",
    "estimate_quantile",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "QUANTILES",
]

#: Default histogram buckets: exponential decades with a 1-2-5 ladder,
#: wide enough for both seconds (guard headroom) and bytes (memory).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
)

#: Fine-grained latency buckets for the hot operational paths (WAL
#: appends, micro-batch folds, kernel primitives, query verbs): the
#: 1-2-5 ladder from a microsecond to ten seconds, so the p99 of a
#: microsecond-scale primitive does not collapse into one bucket.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0,
)

#: Size buckets (bytes / record counts): powers of four from 16 to
#: 64 MiB, for WAL record sizes, fold batch sizes and snapshot bytes.
SIZE_BUCKETS: Tuple[float, ...] = (
    16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
    262144.0, 1048576.0, 4194304.0, 16777216.0, 67108864.0,
)

#: The operational quantiles reported by the flight recorder and
#: ``repro-mine top``.
QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


class Counter:
    """Monotonically increasing count (operations, calls, bytes)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """Point-in-time value; merged across workers by maximum.

    The gauges of this package are all high-water marks (repository
    peak, memory high water), so the maximum is the correct merge.
    """

    __slots__ = ("name", "help", "value", "updated")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.updated = False

    def set(self, value: float) -> None:
        self.value = value
        self.updated = True

    def set_max(self, value: float) -> None:
        if not self.updated or value > self.value:
            self.value = value
            self.updated = True

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Cumulative-bucket histogram with count/sum/min/max.

    Buckets are upper bounds (``le`` semantics, as in Prometheus); an
    implicit ``+Inf`` bucket catches the rest.
    """

    __slots__ = ("name", "help", "buckets", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram buckets must be sorted, got {bounds}")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile from the cumulative buckets.

        Linear interpolation inside the winning bucket, clamped to the
        observed ``min``/``max`` so a one-sample histogram answers the
        sample itself rather than a bucket midpoint.  ``None`` when
        nothing was observed.
        """
        return estimate_quantile(
            self.buckets, self.bucket_counts, self.count, q,
            lo=self.min, hi=self.max,
        )

    def quantiles(self, qs: Sequence[float] = QUANTILES) -> Dict[float, Optional[float]]:
        """Estimates for several quantiles at once."""
        return {q: self.quantile(q) for q in qs}

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, sum={self.total})"


def estimate_quantile(
    buckets: Sequence[float],
    bucket_counts: Sequence[int],
    count: int,
    q: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> Optional[float]:
    """Quantile estimate from histogram bucket data (Prometheus-style).

    Works on the plain-dict form a snapshot (or a flight-recorder
    record) carries, so readers can compute p50/p95/p99 without
    rebuilding :class:`Histogram` objects.  Interpolates linearly
    within the winning bucket; the first bucket interpolates from
    ``lo`` (the observed minimum) when known, else from 0; the ``+Inf``
    bucket answers ``hi`` (the observed maximum) when known, else the
    last finite bound.  Returns ``None`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count <= 0:
        return None
    rank = q * count
    cumulative = 0
    for index, bound in enumerate(buckets):
        previous = cumulative
        cumulative += bucket_counts[index]
        if cumulative >= rank and bucket_counts[index]:
            lower = buckets[index - 1] if index else (lo if lo is not None else 0.0)
            lower = min(lower, bound)
            fraction = (rank - previous) / bucket_counts[index]
            value = lower + (bound - lower) * fraction
            if lo is not None:
                value = max(value, lo)
            if hi is not None:
                value = min(value, hi)
            return value
    # Landed in the +Inf bucket.
    if hi is not None:
        return hi
    return buckets[-1] if buckets else None


def escape_help(text: str) -> str:
    r"""Escape a HELP docstring per the text exposition format 0.0.4.

    Backslash and line feed are the only characters HELP lines escape
    (``\\`` and ``\n``); everything else passes through verbatim::

        >>> escape_help('multi\nline \\ text')
        'multi\\nline \\\\ text'
    """
    return text.replace("\\", r"\\").replace("\n", r"\n")


def escape_label_value(text: str) -> str:
    r"""Escape a label value per the text exposition format 0.0.4.

    Label values additionally escape the double quote that delimits
    them (``\\``, ``\n`` and ``\"``)::

        >>> escape_label_value('say "hi"\n')
        'say \\"hi\\"\\n'
    """
    return (
        text.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")
    )


def prom_name(name: str, kind: str) -> str:
    """Prometheus-conventional metric name for a registry name.

    Registry names are dotted lower-case paths (``kernel.intersect_many.calls``);
    the exposition name is ``repro_``-prefixed snake case with the
    conventional ``_total`` suffix for counters and ``_bytes`` /
    ``_seconds`` units kept as the caller spelled them::

        >>> prom_name("ops.intersections", "counter")
        'repro_ops_intersections_total'
    """
    base = "".join(ch if ch.isalnum() else "_" for ch in name.lower())
    while "__" in base:
        base = base.replace("__", "_")
    base = f"repro_{base.strip('_')}"
    if kind == "counter" and not base.endswith("_total"):
        base += "_total"
    return base


class MetricsRegistry:
    """Get-or-create home of every metric of one mining run."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create ---------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = Counter(name, help)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = Gauge(name, help)
        return metric

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, help, buckets)
        return metric

    def _check_free(self, name: str, own: Dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with a different type"
                )

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> Dict:
        """Plain-dict snapshot: JSON-serialisable and mergeable."""
        return {
            "counters": {
                name: metric.value for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
                if metric.updated
            },
            "histograms": {
                name: {
                    "count": metric.count,
                    "sum": metric.total,
                    "min": metric.min,
                    "max": metric.max,
                    "buckets": list(metric.buckets),
                    "bucket_counts": list(metric.bucket_counts),
                }
                for name, metric in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Dict, prefix: str = "") -> None:
        """Fold a worker snapshot in: counters add, gauges max, histograms sum.

        ``prefix`` optionally namespaces the merged metrics (unused by
        the parallel merge, which wants the *totals* to line up with a
        serial run's metric names).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(prefix + name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(prefix + name).set_max(value)
        for name, data in snapshot.get("histograms", {}).items():
            metric = self.histogram(prefix + name, buckets=data["buckets"])
            if list(metric.buckets) != list(data["buckets"]):
                raise ValueError(
                    f"histogram {name!r}: cannot merge differing bucket bounds"
                )
            metric.count += data["count"]
            metric.total += data["sum"]
            for index, extra in enumerate(data["bucket_counts"]):
                metric.bucket_counts[index] += extra
            if data["count"]:
                if metric.min is None or data["min"] < metric.min:
                    metric.min = data["min"]
                if metric.max is None or data["max"] > metric.max:
                    metric.max = data["max"]

    # -- export ----------------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prom(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Dotted registry names become ``repro_``-prefixed snake case;
        counters gain the conventional ``_total`` suffix.  See
        ``docs/observability.md`` for the naming catalogue.
        """
        lines: List[str] = []
        for name, metric in sorted(self._counters.items()):
            exposed = prom_name(name, "counter")
            if metric.help:
                lines.append(f"# HELP {exposed} {escape_help(metric.help)}")
            lines.append(f"# TYPE {exposed} counter")
            lines.append(f"{exposed} {metric.value}")
        for name, metric in sorted(self._gauges.items()):
            if not metric.updated:
                continue
            exposed = prom_name(name, "gauge")
            if metric.help:
                lines.append(f"# HELP {exposed} {escape_help(metric.help)}")
            lines.append(f"# TYPE {exposed} gauge")
            lines.append(f"{exposed} {_format_value(metric.value)}")
        for name, metric in sorted(self._histograms.items()):
            exposed = prom_name(name, "histogram")
            if metric.help:
                lines.append(f"# HELP {exposed} {escape_help(metric.help)}")
            lines.append(f"# TYPE {exposed} histogram")
            cumulative = 0
            for bound, count in zip(metric.buckets, metric.bucket_counts):
                cumulative += count
                le = escape_label_value(_format_value(bound))
                lines.append(f'{exposed}_bucket{{le="{le}"}} {cumulative}')
            cumulative += metric.bucket_counts[-1]
            lines.append(f'{exposed}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{exposed}_sum {_format_value(metric.total)}")
            lines.append(f"{exposed}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


def _format_value(value: float) -> str:
    """Prometheus float formatting: integral values without the dot."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)

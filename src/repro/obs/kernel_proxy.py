"""Kernel instrumentation: per-primitive call counts and bytes touched.

An :class:`InstrumentedBackend` wraps any
:class:`~repro.kernels.base.KernelBackend` and forwards every primitive
unchanged while incrementing two counters per primitive in the probe's
registry::

    kernel.<primitive>.calls   # invocations
    kernel.<primitive>.bytes   # estimated bytes of mask data touched

The byte figures are *estimates* (row count x packed row width, before
any early exit), which is the right currency for comparing backends:
they measure the work handed to the kernel, not what a short-circuit
saved.  The proxy is only ever constructed when a probe is active, so
the probe-off hot path runs the raw backend with zero indirection.

The ``*_bounded`` primitives additionally feed a registry-wide pair::

    ops.kernel.early_aborts    # entries settled below smin (sentinels)
    ops.kernel.words_skipped   # estimated words the early abort saved

Both are derived from the *returned* sentinel set, which is
data-dependent (see :data:`repro.kernels.base.BELOW_BOUND`), so the
counters are deterministic and machine-independent — gateable in
``benchmarks/bench_obs_invariants.py`` like the other ``ops.*``
counters.  ``words_skipped`` uses the half-split estimate (an aborted
row skips the second half of its words); it measures avoided work, so
it is an estimate by construction, like the byte figures.

The *batched* primitives (one call touches many rows) additionally
record a per-call latency histogram::

    kernel.<primitive>.seconds  # wall seconds per call, LATENCY_BUCKETS

so tail latency per kernel primitive is a first-class quantity
(``Histogram.quantiles`` / the flight recorder surface p50/p95/p99).
Scalar helpers (``popcount``) are deliberately *not* timed: a
``perf_counter`` pair costs about as much as the primitive itself, and
the per-call count/bytes pair already measures them.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Sequence, Tuple

from ..kernels.base import BELOW_BOUND, KernelBackend
from .metrics import LATENCY_BUCKETS

__all__ = ["InstrumentedBackend", "PRIMITIVES", "TIMED_PRIMITIVES"]

#: Every instrumented primitive, in interface order.
PRIMITIVES = (
    "pack",
    "unpack",
    "append_rows",
    "popcount",
    "popcount_many",
    "popcount_rows",
    "intersect_many",
    "intersect_count_many",
    "intersect_count_many_bounded",
    "intersect_count_rows",
    "intersect_count_rows_bounded",
    "intersect_rows",
    "intersect_table",
    "intersect_count_table",
    "intersect_count_table_bounded",
    "select_rows",
    "superset_rows",
    "subset_any",
    "superset_max_support",
    "superset_max_support_bounded",
    "intersect_selected",
    "column_counts",
    "bound_filter",
)

#: Batched/table primitives whose per-call wall time is worth a
#: histogram sample (one call amortises the two clock reads over many
#: rows; the scalar helpers would pay ~100% overhead for noise).
TIMED_PRIMITIVES = (
    "pack",
    "popcount_rows",
    "intersect_many",
    "intersect_count_many",
    "intersect_count_many_bounded",
    "intersect_count_rows",
    "intersect_count_rows_bounded",
    "intersect_table",
    "intersect_count_table",
    "intersect_count_table_bounded",
    "superset_max_support",
    "superset_max_support_bounded",
    "column_counts",
)


def _mask_bytes(n_bits: int) -> int:
    """Packed width of an ``n_bits``-wide mask, in bytes (word-rounded)."""
    return ((n_bits + 63) // 64) * 8


class InstrumentedBackend(KernelBackend):
    """Counting proxy around a concrete kernel backend."""

    __slots__ = (
        "_inner",
        "_calls",
        "_bytes",
        "_seconds",
        "_widths",
        "_early_aborts",
        "_words_skipped",
    )

    def __init__(self, inner: KernelBackend, registry) -> None:
        self._inner = inner
        # Pre-resolved counter objects: the per-call cost is two integer
        # adds, not a registry lookup.
        self._calls: Dict[str, object] = {}
        self._bytes: Dict[str, object] = {}
        for primitive in PRIMITIVES:
            self._calls[primitive] = registry.counter(
                f"kernel.{primitive}.calls",
                f"invocations of the {primitive} kernel primitive",
            )
            self._bytes[primitive] = registry.counter(
                f"kernel.{primitive}.bytes",
                f"estimated mask bytes touched by {primitive}",
            )
        self._seconds: Dict[str, object] = {}
        for primitive in TIMED_PRIMITIVES:
            self._seconds[primitive] = registry.histogram(
                f"kernel.{primitive}.seconds",
                f"wall seconds per {primitive} kernel call",
                buckets=LATENCY_BUCKETS,
            )
        # Packed-table widths, keyed by table identity; every table used
        # by a probed miner is packed through this proxy, so lookups hit.
        self._widths: Dict[int, int] = {}
        self._early_aborts = registry.counter(
            "ops.kernel.early_aborts",
            "bounded-primitive entries settled below smin (sentinels)",
        )
        self._words_skipped = registry.counter(
            "ops.kernel.words_skipped",
            "estimated words the bounded primitives' early abort saved",
        )

    # The wrapped backend's registry identity and vectorisation flag.

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._inner.name

    @property
    def vectorized(self) -> bool:  # type: ignore[override]
        return self._inner.vectorized

    @property
    def wrapped(self) -> KernelBackend:
        """The raw backend underneath (for tests and introspection)."""
        return self._inner

    def _hit(self, primitive: str, touched: int) -> None:
        self._calls[primitive].value += 1
        self._bytes[primitive].value += touched

    def _width(self, table) -> int:
        width = self._widths.get(id(table))
        if width is None:
            # Table packed outside the proxy: both table forms carry
            # their declared bit width (never force an int rebuild of a
            # rows-resident table just to measure it).
            n_bits = getattr(table, "n_bits", None)
            if n_bits is None:  # pragma: no cover - foreign table types
                rows = self._inner.unpack(table)
                n_bits = max((m.bit_length() for m in rows), default=0)
            width = _mask_bytes(n_bits)
            self._widths[id(table)] = width
        return width

    def _record_aborts(self, supports: Sequence[int], row_words: int) -> None:
        """Fold a bounded primitive's sentinel set into the abort pair."""
        aborted = sum(1 for support in supports if support == BELOW_BOUND)
        if aborted:
            self._early_aborts.value += aborted
            # Half-split estimate: a settled row skips its tail words.
            self._words_skipped.value += aborted * (row_words - row_words // 2)

    # -- packed tables ---------------------------------------------------

    def pack(self, masks: Sequence[int], n_bits: int):
        self._hit("pack", len(masks) * _mask_bytes(n_bits))
        start = perf_counter()
        table = self._inner.pack(masks, n_bits)
        self._seconds["pack"].observe(perf_counter() - start)
        self._widths[id(table)] = _mask_bytes(n_bits)
        return table

    def unpack(self, table) -> List[int]:
        self._hit("unpack", self._inner.table_len(table) * self._width(table))
        return self._inner.unpack(table)

    def table_len(self, table) -> int:
        return self._inner.table_len(table)

    # -- resident tables ---------------------------------------------------

    def append_rows(self, table, masks: Sequence[int]) -> None:
        self._hit("append_rows", len(masks) * self._width(table))
        self._inner.append_rows(table, masks)

    def table_generation(self, table) -> int:
        return self._inner.table_generation(table)

    def table_row(self, table, index: int) -> int:
        return self._inner.table_row(table, index)

    def select_rows(self, table, indices: Sequence[int]):
        width = self._width(table)
        self._hit("select_rows", len(indices) * width)
        selected = self._inner.select_rows(table, indices)
        self._widths[id(selected)] = width
        return selected

    def superset_rows(self, table, mask: int) -> List[int]:
        self._hit(
            "superset_rows", self._inner.table_len(table) * self._width(table)
        )
        return self._inner.superset_rows(table, mask)

    def intersect_rows(self, table, mask: int) -> List[int]:
        self._hit(
            "intersect_rows", self._inner.table_len(table) * self._width(table)
        )
        return self._inner.intersect_rows(table, mask)

    def intersect_table(self, table, mask: int, start: int = 0):
        width = self._width(table)
        rows = max(0, self._inner.table_len(table) - start)
        self._hit("intersect_table", rows * width)
        begin = perf_counter()
        joint = self._inner.intersect_table(table, mask, start)
        self._seconds["intersect_table"].observe(perf_counter() - begin)
        self._widths[id(joint)] = width
        return joint

    def intersect_count_table(self, table, mask: int, start: int = 0):
        width = self._width(table)
        rows = max(0, self._inner.table_len(table) - start)
        self._hit("intersect_count_table", rows * width)
        begin = perf_counter()
        joint, supports = self._inner.intersect_count_table(table, mask, start)
        self._seconds["intersect_count_table"].observe(perf_counter() - begin)
        self._widths[id(joint)] = width
        return joint, supports

    def intersect_count_table_bounded(
        self, table, mask: int, smin: int, start: int = 0
    ):
        width = self._width(table)
        rows = max(0, self._inner.table_len(table) - start)
        self._hit("intersect_count_table_bounded", rows * width)
        begin = perf_counter()
        joint, supports = self._inner.intersect_count_table_bounded(
            table, mask, smin, start
        )
        self._seconds["intersect_count_table_bounded"].observe(
            perf_counter() - begin
        )
        self._widths[id(joint)] = width
        self._record_aborts(supports, width // 8)
        return joint, supports

    def intersect_count_many_bounded(
        self, masks: Sequence[int], mask: int, n_bits: int, smin: int
    ) -> Tuple[List[int], List[int]]:
        self._hit("intersect_count_many_bounded", len(masks) * _mask_bytes(n_bits))
        begin = perf_counter()
        joints, supports = self._inner.intersect_count_many_bounded(
            masks, mask, n_bits, smin
        )
        self._seconds["intersect_count_many_bounded"].observe(
            perf_counter() - begin
        )
        self._record_aborts(supports, _mask_bytes(n_bits) // 8)
        return joints, supports

    def intersect_count_rows_bounded(
        self, table, indices: Sequence[int], mask: int, smin: int
    ) -> Tuple[List[int], List[int]]:
        width = self._width(table)
        self._hit("intersect_count_rows_bounded", len(indices) * width)
        begin = perf_counter()
        joints, supports = self._inner.intersect_count_rows_bounded(
            table, indices, mask, smin
        )
        self._seconds["intersect_count_rows_bounded"].observe(
            perf_counter() - begin
        )
        self._record_aborts(supports, width // 8)
        return joints, supports

    def superset_max_support_bounded(
        self, table, supports: Sequence[int], mask: int, smin: int
    ) -> int:
        # No sentinel comes back from this query; the abort pair only
        # tracks the intersection-family primitives.
        self._hit(
            "superset_max_support_bounded",
            self._inner.table_len(table) * self._width(table),
        )
        begin = perf_counter()
        result = self._inner.superset_max_support_bounded(
            table, supports, mask, smin
        )
        self._seconds["superset_max_support_bounded"].observe(
            perf_counter() - begin
        )
        return result

    # -- scalar helpers --------------------------------------------------

    def popcount(self, mask: int) -> int:
        self._hit("popcount", _mask_bytes(mask.bit_length()))
        return self._inner.popcount(mask)

    # -- batched primitives ----------------------------------------------

    def popcount_many(self, masks: Sequence[int]) -> List[int]:
        widest = max((m.bit_length() for m in masks), default=0)
        self._hit("popcount_many", len(masks) * _mask_bytes(widest))
        return self._inner.popcount_many(masks)

    def popcount_rows(self, table) -> List[int]:
        self._hit(
            "popcount_rows", self._inner.table_len(table) * self._width(table)
        )
        begin = perf_counter()
        result = self._inner.popcount_rows(table)
        self._seconds["popcount_rows"].observe(perf_counter() - begin)
        return result

    def intersect_many(self, masks: Sequence[int], mask: int, n_bits: int) -> List[int]:
        self._hit("intersect_many", len(masks) * _mask_bytes(n_bits))
        begin = perf_counter()
        result = self._inner.intersect_many(masks, mask, n_bits)
        self._seconds["intersect_many"].observe(perf_counter() - begin)
        return result

    def intersect_count_many(
        self, masks: Sequence[int], mask: int, n_bits: int
    ) -> Tuple[List[int], List[int]]:
        self._hit("intersect_count_many", len(masks) * _mask_bytes(n_bits))
        begin = perf_counter()
        result = self._inner.intersect_count_many(masks, mask, n_bits)
        self._seconds["intersect_count_many"].observe(perf_counter() - begin)
        return result

    def intersect_count_rows(
        self, table, indices: Sequence[int], mask: int
    ) -> Tuple[List[int], List[int]]:
        self._hit("intersect_count_rows", len(indices) * self._width(table))
        begin = perf_counter()
        result = self._inner.intersect_count_rows(table, indices, mask)
        self._seconds["intersect_count_rows"].observe(perf_counter() - begin)
        return result

    def subset_any(self, table, mask: int, start: int = 0) -> bool:
        rows = max(0, self._inner.table_len(table) - start)
        self._hit("subset_any", rows * self._width(table))
        return self._inner.subset_any(table, mask, start)

    def superset_max_support(self, table, supports: Sequence[int], mask: int) -> int:
        self._hit(
            "superset_max_support", self._inner.table_len(table) * self._width(table)
        )
        begin = perf_counter()
        result = self._inner.superset_max_support(table, supports, mask)
        self._seconds["superset_max_support"].observe(perf_counter() - begin)
        return result

    def intersect_selected(self, table, selector: int) -> int:
        rows = bin(selector).count("1") if selector >= 0 else 0
        self._hit("intersect_selected", rows * self._width(table))
        return self._inner.intersect_selected(table, selector)

    def column_counts(self, masks: Sequence[int], n_bits: int) -> List[int]:
        self._hit("column_counts", len(masks) * _mask_bytes(n_bits))
        begin = perf_counter()
        result = self._inner.column_counts(masks, n_bits)
        self._seconds["column_counts"].observe(perf_counter() - begin)
        return result

    def bound_filter(self, counts, mask: int, threshold: int) -> int:
        self._hit("bound_filter", len(counts) * 8)
        return self._inner.bound_filter(counts, mask, threshold)

    def __repr__(self) -> str:
        return f"<InstrumentedBackend around {self._inner!r}>"

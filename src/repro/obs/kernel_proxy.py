"""Kernel instrumentation: per-primitive call counts and bytes touched.

An :class:`InstrumentedBackend` wraps any
:class:`~repro.kernels.base.KernelBackend` and forwards every primitive
unchanged while incrementing two counters per primitive in the probe's
registry::

    kernel.<primitive>.calls   # invocations
    kernel.<primitive>.bytes   # estimated bytes of mask data touched

The byte figures are *estimates* (row count x packed row width, before
any early exit), which is the right currency for comparing backends:
they measure the work handed to the kernel, not what a short-circuit
saved.  The proxy is only ever constructed when a probe is active, so
the probe-off hot path runs the raw backend with zero indirection.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..kernels.base import KernelBackend

__all__ = ["InstrumentedBackend", "PRIMITIVES"]

#: Every instrumented primitive, in interface order.
PRIMITIVES = (
    "pack",
    "unpack",
    "popcount",
    "popcount_many",
    "popcount_rows",
    "intersect_many",
    "intersect_count_many",
    "intersect_count_rows",
    "subset_any",
    "superset_max_support",
    "intersect_selected",
    "column_counts",
    "bound_filter",
)


def _mask_bytes(n_bits: int) -> int:
    """Packed width of an ``n_bits``-wide mask, in bytes (word-rounded)."""
    return ((n_bits + 63) // 64) * 8


class InstrumentedBackend(KernelBackend):
    """Counting proxy around a concrete kernel backend."""

    __slots__ = ("_inner", "_calls", "_bytes", "_widths")

    def __init__(self, inner: KernelBackend, registry) -> None:
        self._inner = inner
        # Pre-resolved counter objects: the per-call cost is two integer
        # adds, not a registry lookup.
        self._calls: Dict[str, object] = {}
        self._bytes: Dict[str, object] = {}
        for primitive in PRIMITIVES:
            self._calls[primitive] = registry.counter(
                f"kernel.{primitive}.calls",
                f"invocations of the {primitive} kernel primitive",
            )
            self._bytes[primitive] = registry.counter(
                f"kernel.{primitive}.bytes",
                f"estimated mask bytes touched by {primitive}",
            )
        # Packed-table widths, keyed by table identity; every table used
        # by a probed miner is packed through this proxy, so lookups hit.
        self._widths: Dict[int, int] = {}

    # The wrapped backend's registry identity and vectorisation flag.

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._inner.name

    @property
    def vectorized(self) -> bool:  # type: ignore[override]
        return self._inner.vectorized

    @property
    def wrapped(self) -> KernelBackend:
        """The raw backend underneath (for tests and introspection)."""
        return self._inner

    def _hit(self, primitive: str, touched: int) -> None:
        self._calls[primitive].value += 1
        self._bytes[primitive].value += touched

    def _width(self, table) -> int:
        width = self._widths.get(id(table))
        if width is None:
            # Table packed outside the proxy: fall back to a row probe.
            rows = self._inner.unpack(table)
            width = _mask_bytes(max((m.bit_length() for m in rows), default=0))
            self._widths[id(table)] = width
        return width

    # -- packed tables ---------------------------------------------------

    def pack(self, masks: Sequence[int], n_bits: int):
        self._hit("pack", len(masks) * _mask_bytes(n_bits))
        table = self._inner.pack(masks, n_bits)
        self._widths[id(table)] = _mask_bytes(n_bits)
        return table

    def unpack(self, table) -> List[int]:
        self._hit("unpack", self._inner.table_len(table) * self._width(table))
        return self._inner.unpack(table)

    def table_len(self, table) -> int:
        return self._inner.table_len(table)

    # -- scalar helpers --------------------------------------------------

    def popcount(self, mask: int) -> int:
        self._hit("popcount", _mask_bytes(mask.bit_length()))
        return self._inner.popcount(mask)

    # -- batched primitives ----------------------------------------------

    def popcount_many(self, masks: Sequence[int]) -> List[int]:
        widest = max((m.bit_length() for m in masks), default=0)
        self._hit("popcount_many", len(masks) * _mask_bytes(widest))
        return self._inner.popcount_many(masks)

    def popcount_rows(self, table) -> List[int]:
        self._hit(
            "popcount_rows", self._inner.table_len(table) * self._width(table)
        )
        return self._inner.popcount_rows(table)

    def intersect_many(self, masks: Sequence[int], mask: int, n_bits: int) -> List[int]:
        self._hit("intersect_many", len(masks) * _mask_bytes(n_bits))
        return self._inner.intersect_many(masks, mask, n_bits)

    def intersect_count_many(
        self, masks: Sequence[int], mask: int, n_bits: int
    ) -> Tuple[List[int], List[int]]:
        self._hit("intersect_count_many", len(masks) * _mask_bytes(n_bits))
        return self._inner.intersect_count_many(masks, mask, n_bits)

    def intersect_count_rows(
        self, table, indices: Sequence[int], mask: int
    ) -> Tuple[List[int], List[int]]:
        self._hit("intersect_count_rows", len(indices) * self._width(table))
        return self._inner.intersect_count_rows(table, indices, mask)

    def subset_any(self, table, mask: int, start: int = 0) -> bool:
        rows = max(0, self._inner.table_len(table) - start)
        self._hit("subset_any", rows * self._width(table))
        return self._inner.subset_any(table, mask, start)

    def superset_max_support(self, table, supports: Sequence[int], mask: int) -> int:
        self._hit(
            "superset_max_support", self._inner.table_len(table) * self._width(table)
        )
        return self._inner.superset_max_support(table, supports, mask)

    def intersect_selected(self, table, selector: int) -> int:
        rows = bin(selector).count("1") if selector >= 0 else 0
        self._hit("intersect_selected", rows * self._width(table))
        return self._inner.intersect_selected(table, selector)

    def column_counts(self, masks: Sequence[int], n_bits: int) -> List[int]:
        self._hit("column_counts", len(masks) * _mask_bytes(n_bits))
        return self._inner.column_counts(masks, n_bits)

    def bound_filter(self, counts, mask: int, threshold: int) -> int:
        self._hit("bound_filter", len(counts) * 8)
        return self._inner.bound_filter(counts, mask, threshold)

    def __repr__(self) -> str:
        return f"<InstrumentedBackend around {self._inner!r}>"

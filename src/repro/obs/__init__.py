"""repro.obs — zero-overhead-when-off mining observability.

The paper's central claims are about *internal* costs — transaction
intersections, prefix-tree nodes, items eliminated by the
remaining-occurrence bound — so this package makes those costs
first-class run artifacts:

* :class:`MetricsRegistry` — counters / gauges / histograms with JSON
  and Prometheus text exports (:mod:`repro.obs.metrics`);
* :class:`Tracer` — span-based phase timing with JSON-lines export
  (:mod:`repro.obs.trace`);
* :class:`Probe` — the single object threaded through every algorithm
  driver, both kernel backends, :class:`~repro.runtime.RunGuard` and
  :func:`repro.parallel.mine_parallel` (:mod:`repro.obs.probe`);
* :class:`InstrumentedBackend` — the kernel-primitive counting proxy
  (:mod:`repro.obs.kernel_proxy`);
* :class:`FlightRecorder` — crash-safe periodic registry/span snapshots
  for long-lived pipelines, readable without attaching to the writer
  (:mod:`repro.obs.recorder`).

Usage::

    from repro import TransactionDatabase, mine
    from repro.obs import Probe

    probe = Probe()
    result = mine(db, smin=2, algorithm="ista", probe=probe)
    print(probe.metrics.to_prom())          # or .to_json()
    probe.tracer.write_jsonl(open("trace.jsonl", "w"))

Passing no probe (the default) keeps every hot path bit-identical to
the uninstrumented code; see ``docs/observability.md`` for the metric
catalogue and the trace schema.
"""

from .kernel_proxy import PRIMITIVES, TIMED_PRIMITIVES, InstrumentedBackend
from .metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    QUANTILES,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_help,
    escape_label_value,
    estimate_quantile,
    prom_name,
)
from .probe import NULL_PROBE, NullProbe, Probe, resolve_probe
from .recorder import (
    FLIGHT_VERSION,
    FlightRecorder,
    FlightScan,
    flight_tail,
    repair_flight,
    scan_flight,
)
from .trace import TRACE_VERSION, Span, Tracer

__all__ = [
    "Probe",
    "NullProbe",
    "NULL_PROBE",
    "resolve_probe",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "QUANTILES",
    "estimate_quantile",
    "escape_help",
    "escape_label_value",
    "prom_name",
    "Tracer",
    "Span",
    "TRACE_VERSION",
    "InstrumentedBackend",
    "PRIMITIVES",
    "TIMED_PRIMITIVES",
    "FlightRecorder",
    "FlightScan",
    "FLIGHT_VERSION",
    "scan_flight",
    "repair_flight",
    "flight_tail",
]

"""The flight recorder: crash-safe continuous telemetry for long runs.

The one-shot observability surface (``--metrics`` / ``--trace``) dumps
a registry *once, at exit* — useless for an always-on ingest pipeline,
which needs answers to "what is this store doing right now" and "what
was it doing when it died".  A :class:`FlightRecorder` closes that gap:
it periodically appends a **snapshot record** — the full
:class:`~repro.obs.metrics.MetricsRegistry` snapshot, the spans
recorded since the previous emit, and a caller-supplied status dict —
to size-bounded segment files inside a store directory, using the same
durable-append / torn-tail-repair discipline as the write-ahead log
(:mod:`repro.serving.wal`): unbuffered appends (a ``SIGKILL`` cannot
take back an acked record), per-record checksums, a tolerant reader
that stops at the first damaged byte instead of raising, and a repair
step that truncates the tear.

A reader (``repro-mine top``, :func:`repro.serving.health.compute_health`)
attaches to the segment files of a live **or dead** store without ever
touching the writer process.

File format
-----------

A recorder is a directory of append-only segment files named
``flight-<base_seq>.jsonl``.  Every line is one record, framed as::

    <crc32 as 8 lowercase hex chars> <compact JSON object>\\n

where the CRC covers the JSON bytes.  The first line of each segment
is a header record (``{"type": "flight", "version": 1, "base_seq": N}``);
subsequent lines are snapshot records::

    {"type": "snapshot", "seq": 17, "wall": 1754554378.1, "uptime": 42.0,
     "trace_id": "9f2c...", "status": {...}, "metrics": {...},
     "spans": [...], "spans_dropped": 0}

``metrics`` is exactly :meth:`MetricsRegistry.snapshot`; ``spans`` are
the tracer records completed since the previous emit (capped at
``max_spans``, most recent kept).  A line that is torn (no trailing
newline), fails its CRC, or does not parse marks the end of that
segment's readable content; bytes past it are reported, never raised.

Retention
---------

Segments roll at ``segment_max_bytes`` and only the newest
``keep_segments`` are retained, so a recorder's disk footprint is
bounded at roughly ``keep_segments * segment_max_bytes`` no matter how
long the writer lives.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "FLIGHT_VERSION",
    "FlightRecorder",
    "FlightScan",
    "FlightSegmentInfo",
    "scan_flight",
    "repair_flight",
    "flight_tail",
]

FLIGHT_VERSION = 1

#: ``<8 hex chars><space>`` before every JSON payload.
_LINE_PREFIX = 9


def _segment_name(base_seq: int) -> str:
    return f"flight-{base_seq:012d}.jsonl"


def _frame_line(record: Dict[str, Any]) -> bytes:
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%08x " % crc + payload + b"\n"


def _parse_line(line: bytes) -> Optional[Dict[str, Any]]:
    """The record of one complete framed line, or ``None`` if damaged."""
    if len(line) <= _LINE_PREFIX or not line.endswith(b"\n"):
        return None
    if line[_LINE_PREFIX - 1 : _LINE_PREFIX] != b" ":
        return None
    try:
        stored_crc = int(line[: _LINE_PREFIX - 1], 16)
    except ValueError:
        return None
    payload = line[_LINE_PREFIX:-1]
    if (zlib.crc32(payload) & 0xFFFFFFFF) != stored_crc:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    return record


def _list_segments(directory: str) -> List[Tuple[int, str]]:
    """``(base_seq, path)`` of every segment file, in sequence order."""
    entries = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        if not (name.startswith("flight-") and name.endswith(".jsonl")):
            continue
        stem = name[len("flight-") : -len(".jsonl")]
        if not stem.isdigit():
            continue
        entries.append((int(stem), os.path.join(directory, name)))
    entries.sort()
    return entries


@dataclass
class FlightSegmentInfo:
    """One segment's scan outcome."""

    path: str
    base_seq: int
    n_records: int
    #: Byte offset just past the last valid line (= truncation target).
    valid_end: int
    #: Bytes past ``valid_end`` that did not parse (0 = clean).
    torn_bytes: int = 0


@dataclass
class FlightScan:
    """Everything a tolerant read of a recorder directory learned.

    Unlike the WAL scan, damage in one segment does not make later
    segments unreachable — telemetry records are independent — so each
    segment is scanned to its own tear and the valid records of every
    segment are returned in sequence order.
    """

    directory: str
    segments: List[FlightSegmentInfo] = field(default_factory=list)
    #: Snapshot records, oldest first (headers are validated, not kept).
    records: List[Dict[str, Any]] = field(default_factory=list)
    truncated_bytes: int = 0
    torn_segments: List[str] = field(default_factory=list)
    torn_reason: Optional[str] = None

    @property
    def clean(self) -> bool:
        return not self.torn_segments

    @property
    def next_seq(self) -> int:
        """Sequence number the next emitted record would take."""
        if self.records:
            return self.records[-1]["seq"] + 1
        for info in reversed(self.segments):
            return info.base_seq + info.n_records
        return 0


def scan_flight(directory) -> FlightScan:
    """Validate every line of every segment; never raises on damage."""
    directory = os.fspath(directory)
    scan = FlightScan(directory=directory)
    for base_seq, path in _list_segments(directory):
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            scan.torn_segments.append(path)
            scan.torn_reason = f"unreadable segment: {exc}"
            continue
        pos = 0
        n_records = 0
        saw_header = False
        damaged = None
        while pos < len(data):
            newline = data.find(b"\n", pos)
            line = data[pos : newline + 1] if newline != -1 else data[pos:]
            record = _parse_line(line)
            if record is None:
                damaged = "torn or corrupt line"
                break
            if not saw_header:
                if (
                    record.get("type") != "flight"
                    or record.get("base_seq") != base_seq
                    or record.get("version") != FLIGHT_VERSION
                ):
                    damaged = "segment header mismatch"
                    break
                saw_header = True
            elif record.get("type") == "snapshot":
                scan.records.append(record)
                n_records += 1
            pos = newline + 1
        valid_end = pos
        torn = len(data) - valid_end
        scan.segments.append(
            FlightSegmentInfo(path, base_seq, n_records, valid_end, torn)
        )
        if damaged is not None:
            scan.truncated_bytes += torn
            scan.torn_segments.append(path)
            scan.torn_reason = damaged
    scan.records.sort(key=lambda record: record.get("seq", 0))
    return scan


def repair_flight(scan: FlightScan) -> int:
    """Truncate every torn segment at its last valid line.

    Returns the number of bytes removed.  A segment whose header itself
    was damaged is removed entirely.  Idempotent; a no-op on a clean
    scan.
    """
    removed = 0
    torn = set(scan.torn_segments)
    for info in scan.segments:
        if info.path not in torn or not info.torn_bytes:
            continue
        if info.valid_end == 0:
            try:
                removed += os.path.getsize(info.path)
                os.unlink(info.path)
            except OSError:
                pass
        else:
            with open(info.path, "r+b") as handle:
                handle.truncate(info.valid_end)
                handle.flush()
                os.fsync(handle.fileno())
            removed += info.torn_bytes
    return removed


def flight_tail(directory, n: int = 2) -> List[Dict[str, Any]]:
    """The newest ``n`` snapshot records, oldest first (read-only)."""
    scan = scan_flight(directory)
    return scan.records[-n:] if n else []


class FlightRecorder:
    """Periodic registry/span snapshots appended to segment files.

    Parameters
    ----------
    directory:
        Recorder directory (created if missing).  A torn tail left by
        a previous writer's death is repaired on open, exactly like
        the WAL appender refusing to append past damage.
    probe:
        The **active** :class:`repro.obs.Probe` whose registry and
        tracer are snapshotted.  A null probe is refused — a recorder
        with nothing to record is a configuration error.
    interval:
        Minimum seconds between emitted records; :meth:`emit` calls
        inside the window are free no-ops, so callers hook it at every
        natural boundary (fold, tick, compaction) without cadence math.
        ``0`` records at every call.
    segment_max_bytes / keep_segments:
        Size bound: segments roll at ``segment_max_bytes`` and only the
        newest ``keep_segments`` files are kept.
    status:
        Optional zero-argument callable returning a JSON-serialisable
        dict stored on each record under ``"status"`` — the streaming
        miner reports ``broken`` / ``pending_records`` /
        ``n_transactions`` through this.
    max_spans:
        Cap on spans shipped per record (most recent kept; the
        overflow is counted in ``spans_dropped``).
    fault_plan:
        Optional :class:`repro.runtime.FaultPlan`; the emitter calls
        the ``flight.emit`` / ``flight.emit.torn`` crash points around
        every write, so the crash-recovery property suite covers
        recorder damage too.
    """

    def __init__(
        self,
        directory,
        probe,
        *,
        interval: float = 1.0,
        segment_max_bytes: int = 256 << 10,
        keep_segments: int = 4,
        status: Optional[Callable[[], Dict[str, Any]]] = None,
        max_spans: int = 256,
        fault_plan=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not getattr(probe, "active", False):
            raise ValueError(
                "FlightRecorder needs an active Probe; the null probe "
                "records nothing worth persisting"
            )
        if segment_max_bytes < 1:
            raise ValueError(
                f"segment_max_bytes must be positive, got {segment_max_bytes}"
            )
        if keep_segments < 1:
            raise ValueError(
                f"keep_segments must be at least 1, got {keep_segments}"
            )
        self.directory = os.fspath(directory)
        self._probe = probe
        self.interval = interval
        self.segment_max_bytes = segment_max_bytes
        self.keep_segments = keep_segments
        self._status = status
        self._max_spans = max_spans
        self._plan = fault_plan
        self._clock = clock
        self._last_emit: Optional[float] = None
        self._span_cursor = probe.tracer.total - len(probe.tracer.records)
        self._handle = None
        self._segment_bytes = 0
        self._origin = time.perf_counter()
        os.makedirs(self.directory, exist_ok=True)
        scan = scan_flight(self.directory)
        if not scan.clean:
            self.truncated_bytes = repair_flight(scan)
            probe.count("flight.truncated_bytes", self.truncated_bytes)
        else:
            self.truncated_bytes = 0
        self.next_seq = scan.next_seq
        segments = _list_segments(self.directory)
        if segments and os.path.getsize(segments[-1][1]) < self.segment_max_bytes:
            self._handle = open(segments[-1][1], "ab", buffering=0)
            self._segment_bytes = os.path.getsize(segments[-1][1])
        else:
            self._roll()

    # ------------------------------------------------------------------

    def _reach(self, point: str) -> None:
        if self._plan is not None:
            self._plan.reach(point)

    def _roll(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        path = os.path.join(self.directory, _segment_name(self.next_seq))
        handle = open(path, "ab", buffering=0)
        header = _frame_line(
            {
                "type": "flight",
                "version": FLIGHT_VERSION,
                "base_seq": self.next_seq,
            }
        )
        handle.write(header)
        self._handle = handle
        self._segment_bytes = handle.tell()
        self._probe.count("flight.segments_rolled")
        self._prune()

    def _prune(self) -> None:
        segments = _list_segments(self.directory)
        live = self._handle.name if self._handle is not None else None
        for _, path in segments[: -self.keep_segments]:
            if path == live:
                continue
            try:
                os.unlink(path)
                self._probe.count("flight.segments_pruned")
            except OSError:
                pass

    def _take_spans(self) -> Tuple[List[Dict[str, Any]], int]:
        tracer = self._probe.tracer
        new = tracer.total - self._span_cursor
        self._span_cursor = tracer.total
        if new <= 0:
            return [], 0
        available = min(new, len(tracer.records))
        spans = tracer.records[len(tracer.records) - available :]
        dropped = new - available
        if len(spans) > self._max_spans:
            dropped += len(spans) - self._max_spans
            spans = spans[-self._max_spans :]
        return list(spans), dropped

    def emit(self, force: bool = False) -> bool:
        """Append one snapshot record if the cadence (or ``force``) says so.

        Returns whether a record was written.  The write is a single
        unbuffered append of one framed line, so a process kill leaves
        at worst one torn line for the next open (or any reader) to
        detect.
        """
        now = self._clock()
        if (
            not force
            and self._last_emit is not None
            and now - self._last_emit < self.interval
        ):
            return False
        spans, spans_dropped = self._take_spans()
        record = {
            "type": "snapshot",
            "seq": self.next_seq,
            "wall": time.time(),
            "uptime": round(time.perf_counter() - self._origin, 6),
            "trace_id": self._probe.tracer.trace_id,
            "metrics": self._probe.metrics.snapshot(),
            "spans": spans,
            "spans_dropped": spans_dropped,
        }
        if self._status is not None:
            record["status"] = self._status()
        line = _frame_line(record)
        if self._segment_bytes >= self.segment_max_bytes:
            self._roll()
        self._reach("flight.emit")
        if self._plan is not None:
            # The torn-write crash point: die mid-line, leaving half a
            # record for the tolerant reader / repair to cut.
            try:
                self._plan.reach("flight.emit.torn")
            except BaseException:
                self._handle.write(line[: max(1, len(line) // 2)])
                raise
        self._handle.write(line)
        self._segment_bytes += len(line)
        self.next_seq += 1
        self._last_emit = now
        self._probe.count("flight.emits")
        self._probe.count("flight.emitted_bytes", len(line))
        return True

    def close(self, final_emit: bool = True) -> None:
        """Emit one last record (by default) and close the live segment."""
        if self._handle is None:
            return
        if final_emit:
            try:
                self.emit(force=True)
            finally:
                if self._handle is not None:
                    self._handle.close()
                    self._handle = None
        else:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Mirror the streaming store: an exception (or injected crash)
        # must leave the on-disk state exactly as the writes left it.
        if exc_type is None:
            self.close()
        elif self._handle is not None:
            self._handle.close()
            self._handle = None

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({self.directory!r}, next_seq={self.next_seq}, "
            f"interval={self.interval})"
        )

"""Span-based phase tracing with trace context and JSON-lines export.

A :class:`Tracer` records *spans* — named intervals with attributes —
and point *events*.  The drivers emit the canonical phase spans
``load -> recode -> mine -> report`` (plus algorithm-specific extras),
so a trace answers the question the wall-clock column of the benchmark
tables cannot: *where* the time went.

Every tracer belongs to a **trace**: a ``trace_id`` minted at the
operation root (or inherited from a propagated
:meth:`Tracer.context`), and every span carries its own ``span_id``
plus the ``parent_id`` of the span that enclosed it when it opened.
Worker processes (:func:`repro.parallel.mine_parallel` shards) build
their tracers from the parent's propagated context, so when their
records are folded back in at the join (:meth:`Tracer.merge_remote`)
the merged stream reassembles into one tree — ``repro-mine trace
--render`` draws it.

The export format is JSON lines, one record per event, ordered by
completion time::

    {"type": "span", "name": "mine", "depth": 1, "start": 0.0012,
     "end": 0.8451, "duration": 0.8439, "span_id": "9f2c4a1b33d08e71",
     "parent_id": null, "attrs": {"algorithm": "ista"}}

``start`` / ``end`` are seconds relative to the tracer's origin (a
``time.perf_counter`` reading), ``wall`` on the tracer header record is
the absolute Unix time of the origin, so consumers can reconstruct
absolute timestamps without every record carrying one.

Long-lived processes (the streaming ingest pipeline) bound the record
buffer with ``max_records``: once full, the oldest records are dropped
(and counted in :attr:`Tracer.dropped`) — the flight recorder
(:mod:`repro.obs.recorder`) ships them to disk before that happens.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Tracer", "Span", "TRACE_VERSION"]

#: Trace JSONL schema version: 2 added trace_id/span_id/parent_id.
TRACE_VERSION = 2


def _mint_id() -> str:
    """A fresh 64-bit hex id for a span or trace."""
    return os.urandom(8).hex()


class Span:
    """One open interval; close it via the context-manager protocol."""

    __slots__ = ("tracer", "name", "attrs", "depth", "start", "end",
                 "span_id", "parent_id")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.start = 0.0
        self.end: Optional[float] = None
        self.span_id = _mint_id()
        self.parent_id: Optional[str] = None

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.depth = tracer._depth
        self.parent_id = tracer._open[-1] if tracer._open else tracer.parent_id
        tracer._depth += 1
        tracer._open.append(self.span_id)
        self.start = time.perf_counter() - tracer.origin
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self.tracer
        self.end = time.perf_counter() - tracer.origin
        tracer._depth -= 1
        if tracer._open and tracer._open[-1] == self.span_id:
            tracer._open.pop()
        if exc_type is not None:
            self.attrs.setdefault("status", "error")
            self.attrs.setdefault("error", exc_type.__name__)
        tracer._record(
            {
                "type": "span",
                "name": self.name,
                "depth": self.depth,
                "start": round(self.start, 9),
                "end": round(self.end, 9),
                "duration": round(self.end - self.start, 9),
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "attrs": self.attrs,
            }
        )


class Tracer:
    """Collects span/event records; export via :meth:`write_jsonl`.

    Parameters
    ----------
    trace_id, parent_id:
        Propagated trace context (both minted/``None`` when absent):
        workers receive them via :meth:`context` so their root spans
        attach under the parent's currently-open span.
    max_records:
        Soft bound on the in-memory record buffer.  ``None`` (the
        default) keeps everything, matching one-shot runs; long-lived
        pipelines set a bound and let the flight recorder drain the
        buffer to disk before records age out.
    """

    __slots__ = ("origin", "wall", "records", "trace_id", "parent_id",
                 "max_records", "dropped", "total", "_depth", "_open")

    def __init__(
        self,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        max_records: Optional[int] = None,
    ) -> None:
        self.origin = time.perf_counter()
        self.wall = time.time()
        self.records: List[Dict[str, Any]] = []
        self.trace_id = trace_id if trace_id else _mint_id()
        self.parent_id = parent_id
        self.max_records = max_records
        #: Records dropped from the buffer by the ``max_records`` bound.
        self.dropped = 0
        #: Records ever recorded (dropped included); the flight
        #: recorder's cursor arithmetic keys on this.
        self.total = 0
        self._depth = 0
        self._open: List[str] = []

    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager recording one named interval."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous point event."""
        self._record(
            {
                "type": "event",
                "name": name,
                "depth": self._depth,
                "at": round(time.perf_counter() - self.origin, 9),
                "parent_id": self._open[-1] if self._open else self.parent_id,
                "attrs": attrs,
            }
        )

    def context(self) -> Dict[str, Optional[str]]:
        """The propagation context for a child tracer (worker, fold).

        ``parent_id`` is the innermost currently-open span, so remote
        spans created from this context attach exactly where the
        operation stood when it fanned out.
        """
        return {
            "trace_id": self.trace_id,
            "parent_id": self._open[-1] if self._open else self.parent_id,
        }

    def merge_remote(
        self,
        records: Sequence[Dict[str, Any]],
        wall: Optional[float] = None,
        **extra_attrs: Any,
    ) -> None:
        """Fold a child tracer's records in, on this tracer's timeline.

        ``wall`` is the child tracer's wall-clock origin; the child's
        relative timestamps are shifted by the wall offset so the
        merged records share one timeline.  ``extra_attrs`` (for
        example ``shard=3``) are stamped onto every merged record's
        attributes without overwriting what the child put there.
        """
        offset = (wall - self.wall) if wall is not None else 0.0
        for record in records:
            merged = dict(record)
            for key in ("start", "end", "at"):
                if merged.get(key) is not None:
                    merged[key] = round(merged[key] + offset, 9)
            if extra_attrs:
                attrs = dict(merged.get("attrs") or {})
                for key, value in extra_attrs.items():
                    attrs.setdefault(key, value)
                merged["attrs"] = attrs
            self._record(merged)

    def _record(self, record: Dict[str, Any]) -> None:
        self.records.append(record)
        self.total += 1
        if self.max_records is not None and len(self.records) > self.max_records:
            surplus = len(self.records) - self.max_records
            del self.records[:surplus]
            self.dropped += surplus

    def write_jsonl(self, handle) -> None:
        """Write the trace as JSON lines to an open text handle.

        The first line is a header record carrying the wall-clock
        origin and the trace id; span records follow in completion
        order.
        """
        handle.write(
            json.dumps(
                {
                    "type": "trace",
                    "version": TRACE_VERSION,
                    "wall": self.wall,
                    "trace_id": self.trace_id,
                    "records": len(self.records),
                    "dropped": self.dropped,
                },
                sort_keys=True,
            )
            + "\n"
        )
        for record in self.records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"Tracer(trace_id={self.trace_id!r}, records={len(self.records)})"
        )

"""Span-based phase tracing with JSON-lines export.

A :class:`Tracer` records *spans* — named intervals with attributes —
and point *events*.  The drivers emit the canonical phase spans
``load -> recode -> mine -> report`` (plus algorithm-specific extras),
so a trace answers the question the wall-clock column of the benchmark
tables cannot: *where* the time went.

The export format is JSON lines, one record per event, ordered by
completion time::

    {"type": "span", "name": "mine", "depth": 1, "start": 0.0012,
     "end": 0.8451, "duration": 0.8439, "attrs": {"algorithm": "ista"}}

``start`` / ``end`` are seconds relative to the tracer's origin (a
``time.perf_counter`` reading), ``wall`` on the tracer header record is
the absolute Unix time of the origin, so consumers can reconstruct
absolute timestamps without every record carrying one.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

__all__ = ["Tracer", "Span"]


class Span:
    """One open interval; close it via the context-manager protocol."""

    __slots__ = ("tracer", "name", "attrs", "depth", "start", "end")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.start = 0.0
        self.end: Optional[float] = None

    def __enter__(self) -> "Span":
        self.depth = self.tracer._depth
        self.tracer._depth += 1
        self.start = time.perf_counter() - self.tracer.origin
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter() - self.tracer.origin
        self.tracer._depth -= 1
        if exc_type is not None:
            self.attrs.setdefault("status", "error")
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._record(
            {
                "type": "span",
                "name": self.name,
                "depth": self.depth,
                "start": round(self.start, 9),
                "end": round(self.end, 9),
                "duration": round(self.end - self.start, 9),
                "attrs": self.attrs,
            }
        )


class Tracer:
    """Collects span/event records; export via :meth:`write_jsonl`."""

    __slots__ = ("origin", "wall", "records", "_depth")

    def __init__(self) -> None:
        self.origin = time.perf_counter()
        self.wall = time.time()
        self.records: List[Dict[str, Any]] = []
        self._depth = 0

    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager recording one named interval."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous point event."""
        self._record(
            {
                "type": "event",
                "name": name,
                "depth": self._depth,
                "at": round(time.perf_counter() - self.origin, 9),
                "attrs": attrs,
            }
        )

    def _record(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def write_jsonl(self, handle) -> None:
        """Write the trace as JSON lines to an open text handle.

        The first line is a header record carrying the wall-clock
        origin; span records follow in completion order.
        """
        handle.write(
            json.dumps(
                {"type": "trace", "version": 1, "wall": self.wall,
                 "records": len(self.records)},
                sort_keys=True,
            )
            + "\n"
        )
        for record in self.records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"Tracer(records={len(self.records)})"

"""The probe: the one object threaded through miners, guard and workers.

A :class:`Probe` bundles a :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`~repro.obs.trace.Tracer` behind the narrow interface the
instrumented code calls:

* :meth:`Probe.phase` — span a named phase (``load``, ``recode``,
  ``mine``, ``report``, ``merge``); the duration also lands in a
  ``phase.<name>.seconds`` histogram so metrics stay self-contained;
* :meth:`Probe.record_counters` — fold an
  :class:`~repro.stats.OperationCounters` into ``ops.*`` metrics,
  *delta-aware* so fallback chains that reuse one counters object never
  double-count;
* :meth:`Probe.wrap_kernel` — interpose the per-primitive counting
  proxy (:mod:`repro.obs.kernel_proxy`);
* :meth:`Probe.sample_guard` — ingest a :class:`~repro.runtime.RunGuard`
  real-check sample (deadline headroom, memory high water);
* :meth:`Probe.merge_worker` — fold a worker-process snapshot in at the
  parallel join.

:data:`NULL_PROBE` is the do-nothing twin.  Every hook on it is a pass
(and :meth:`NullProbe.phase` hands back one shared no-op context
manager), so a driver written against the probe interface costs a few
dict-free attribute calls per *run* — not per operation — when
observability is off.  The probe-off differential test in
``tests/obs/test_overhead.py`` holds this to <5% wall clock.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..stats import OperationCounters
from .kernel_proxy import InstrumentedBackend
from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = ["Probe", "NullProbe", "NULL_PROBE", "resolve_probe"]

#: Gauge-style counter fields of OperationCounters (merged by maximum).
_GAUGE_FIELDS = frozenset({"repository_peak"})


class _NullSpan:
    """Shared no-op context manager for the null probe's phases."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullProbe:
    """The probe that observes nothing; see the module docstring."""

    __slots__ = ()

    active = False

    def phase(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def count(self, name: str, amount: int = 1) -> None:
        return None

    def observe(self, name: str, value: float, buckets=None) -> None:
        return None

    def gauge_max(self, name: str, value: float) -> None:
        return None

    def trace_context(self) -> Optional[Dict[str, Optional[str]]]:
        return None

    def wrap_kernel(self, kernel):
        return kernel

    def ensure_counters(
        self, counters: Optional[OperationCounters]
    ) -> OperationCounters:
        return counters if counters is not None else OperationCounters()

    def record_counters(self, counters: Optional[OperationCounters]) -> None:
        return None

    def sample_guard(
        self,
        elapsed: float,
        remaining: Optional[float],
        memory_used: Optional[int],
    ) -> None:
        return None

    def merge_worker(
        self,
        snapshot: Optional[Dict],
        index: Optional[int] = None,
        trace: Optional[Dict] = None,
    ) -> None:
        return None

    def __repr__(self) -> str:
        return "<NullProbe>"


#: The shared inactive probe; ``resolve_probe(None)`` returns it.
NULL_PROBE = NullProbe()


class Probe(NullProbe):
    """Live probe: metrics registry + tracer, see the module docstring."""

    __slots__ = ("metrics", "tracer", "_counter_marks")

    active = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        # Last-ingested snapshot per OperationCounters identity: fallback
        # chains pass one counters object through several attempts, and
        # each attempt's record_counters must only add the delta.
        self._counter_marks: Dict[int, Dict[str, int]] = {}

    # -- spans -----------------------------------------------------------

    def phase(self, name: str, **attrs: Any) -> "_ProbeSpan":
        return _ProbeSpan(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        self.tracer.event(name, **attrs)

    # -- metrics ---------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).inc(amount)

    def observe(self, name: str, value: float, buckets=None) -> None:
        self.metrics.histogram(name, buckets=buckets).observe(value)

    def trace_context(self) -> Dict[str, Optional[str]]:
        """The trace context a child process/tracer should inherit."""
        return self.tracer.context()

    def gauge_max(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set_max(value)

    def wrap_kernel(self, kernel):
        if isinstance(kernel, InstrumentedBackend):
            return kernel
        return InstrumentedBackend(kernel, self.metrics)

    def record_counters(self, counters: Optional[OperationCounters]) -> None:
        if counters is None:
            return
        current = counters.as_dict()
        previous = self._counter_marks.get(id(counters), {})
        for field, value in current.items():
            if field in _GAUGE_FIELDS:
                self.metrics.gauge(f"ops.{field}").set_max(value)
            else:
                # Register even the zero counters so every snapshot
                # carries the full cost-model catalogue.
                self.metrics.counter(f"ops.{field}").inc(
                    value - previous.get(field, 0)
                )
        self._counter_marks[id(counters)] = current

    # -- guard samples ---------------------------------------------------

    def sample_guard(
        self,
        elapsed: float,
        remaining: Optional[float],
        memory_used: Optional[int],
    ) -> None:
        self.metrics.counter("guard.real_checks").inc()
        if remaining is not None:
            self.metrics.histogram(
                "guard.headroom.seconds",
                "seconds left until the deadline at each real guard check",
            ).observe(max(0.0, remaining))
        if memory_used is not None:
            self.metrics.gauge(
                "guard.memory_high_water.bytes",
                "largest allocation delta observed by the memory meter",
            ).set_max(memory_used)

    # -- parallel merge --------------------------------------------------

    def merge_worker(
        self,
        snapshot: Optional[Dict],
        index: Optional[int] = None,
        trace: Optional[Dict] = None,
    ) -> None:
        """Fold one worker's metrics snapshot (and trace) in at the join.

        ``trace`` is the worker's shipped tracer payload
        (``{"wall": ..., "records": [...]}``); its spans are remapped
        onto this tracer's timeline so the merged trace renders as one
        tree under the span that was open at fan-out.
        """
        if trace and trace.get("records"):
            extra = {"shard": index} if index is not None else {}
            self.tracer.merge_remote(
                trace["records"], wall=trace.get("wall"), **extra
            )
        if not snapshot:
            return
        self.metrics.merge_snapshot(snapshot)
        self.metrics.counter("parallel.workers_merged").inc()
        if index is not None:
            self.tracer.event("worker-merged", shard=index)

    def __repr__(self) -> str:
        return f"Probe({self.metrics!r}, {self.tracer!r})"


class _ProbeSpan:
    """Span that records into both the tracer and the phase histogram."""

    __slots__ = ("_probe", "_name", "_span")

    def __init__(self, probe: Probe, name: str, attrs: Dict[str, Any]) -> None:
        self._probe = probe
        self._name = name
        self._span = probe.tracer.span(name, **attrs)

    def __enter__(self) -> "_ProbeSpan":
        self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.__exit__(exc_type, exc, tb)
        span = self._span
        self._probe.metrics.histogram(f"phase.{self._name}.seconds").observe(
            span.end - span.start
        )


def resolve_probe(probe: Optional[NullProbe]) -> NullProbe:
    """Normalise a ``probe=`` argument: ``None`` means the null probe."""
    if probe is None:
        return NULL_PROBE
    if not isinstance(probe, NullProbe):
        raise TypeError(
            f"probe must be a repro.obs.Probe (or None), got {type(probe).__name__}"
        )
    return probe

"""Data substrate: item sets, transaction databases, orders, IO, transforms."""

from .database import TransactionDatabase
from .io import LoadReport, parse_fimi, read_fimi, write_fimi
from .matrix import build_matrix, example_database
from .recode import prepare, recode_items, reorder_transactions
from .transforms import expression_to_database, transpose

__all__ = [
    "TransactionDatabase",
    "LoadReport",
    "parse_fimi",
    "read_fimi",
    "write_fimi",
    "build_matrix",
    "example_database",
    "prepare",
    "recode_items",
    "reorder_transactions",
    "expression_to_database",
    "transpose",
]

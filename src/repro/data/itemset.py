"""Bitmask item set kernel.

Every miner in this package represents an item set as a plain Python
integer used as a bitmask: bit ``i`` is set iff the item with code ``i``
is a member.  Python integers are arbitrary precision, so an item base
of tens of thousands of items (the gene-expression regime the paper
targets) still supports intersection, union and subset tests as single
C-level operations — the closest pure-Python analogue to the pointer
tricks the original C implementations rely on.

The functions in this module are the shared set algebra.  They are
deliberately small and allocation-free where possible; the miners call
them in their innermost loops.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "EMPTY",
    "from_items",
    "from_indices",
    "to_indices",
    "to_items",
    "iter_indices",
    "size",
    "contains",
    "is_subset",
    "intersect_all",
    "union_all",
    "singleton",
    "without",
    "lowest_item",
    "highest_item",
    "canonical_tuple",
]

#: The empty item set.
EMPTY = 0

# Popcount strategy, resolved once at import time.  ``int.bit_count``
# exists on Python >= 3.10 and is a single C call; the ``bin(...)``
# fallback covers older interpreters.  Resolving here keeps the
# per-call ``hasattr`` probe out of the miners' innermost loops, where
# :func:`size` is among the hottest calls in the package.
try:
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - Python < 3.10 only
    def _popcount(mask: int) -> int:
        return bin(mask).count("1")


def singleton(item: int) -> int:
    """Return the item set containing exactly ``item``.

    >>> singleton(3)
    8
    """
    if item < 0:
        raise ValueError(f"item codes must be non-negative, got {item}")
    return 1 << item


def from_indices(indices: Iterable[int]) -> int:
    """Build an item set from an iterable of item codes.

    Duplicates are tolerated (a set union is formed).

    >>> from_indices([0, 2, 2, 5])
    37
    """
    mask = 0
    for index in indices:
        if index < 0:
            raise ValueError(f"item codes must be non-negative, got {index}")
        mask |= 1 << index
    return mask


# ``from_items`` is the historical name used throughout the test-suite;
# item codes *are* the items at this layer.
from_items = from_indices


def to_indices(mask: int) -> List[int]:
    """Return the sorted list of item codes in ``mask``.

    >>> to_indices(37)
    [0, 2, 5]
    """
    return list(iter_indices(mask))


to_items = to_indices


def iter_indices(mask: int) -> Iterator[int]:
    """Yield the item codes of ``mask`` in ascending order.

    Uses the two's-complement trick ``mask & -mask`` to peel the lowest
    set bit, so the cost is proportional to the number of members, not
    to the size of the item base.
    """
    if mask < 0:
        raise ValueError("item set masks must be non-negative")
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def size(mask: int) -> int:
    """Number of items in the set (population count).

    >>> size(37)
    3
    """
    return _popcount(mask)


def contains(mask: int, item: int) -> bool:
    """Return ``True`` iff ``item`` is a member of ``mask``."""
    return bool(mask >> item & 1)


def is_subset(inner: int, outer: int) -> bool:
    """Return ``True`` iff every item of ``inner`` is in ``outer``.

    >>> is_subset(from_indices([1, 3]), from_indices([0, 1, 3]))
    True
    >>> is_subset(from_indices([1, 4]), from_indices([0, 1, 3]))
    False
    """
    return inner & ~outer == 0


def intersect_all(masks: Iterable[int]) -> int:
    """Intersect an iterable of item sets.

    Raises :class:`ValueError` on an empty iterable, because the neutral
    element of intersection is the full item base, which this function
    cannot know.
    """
    iterator = iter(masks)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("intersect_all() requires at least one item set") from None
    for mask in iterator:
        result &= mask
        if not result:
            break
    return result


def union_all(masks: Iterable[int]) -> int:
    """Union of an iterable of item sets (empty iterable gives ``EMPTY``)."""
    result = EMPTY
    for mask in masks:
        result |= mask
    return result


def without(mask: int, item: int) -> int:
    """Return ``mask`` with ``item`` removed (no-op if absent)."""
    return mask & ~(1 << item)


def lowest_item(mask: int) -> int:
    """Code of the smallest item in the set.

    Raises :class:`ValueError` on the empty set.
    """
    if not mask:
        raise ValueError("the empty item set has no lowest item")
    return (mask & -mask).bit_length() - 1


def highest_item(mask: int) -> int:
    """Code of the largest item in the set.

    Raises :class:`ValueError` on the empty set.
    """
    if not mask:
        raise ValueError("the empty item set has no highest item")
    return mask.bit_length() - 1


def canonical_tuple(mask: int, labels: Sequence[object] = None) -> Tuple[object, ...]:
    """Sorted tuple form of an item set, optionally mapped through labels.

    This is the canonical hashable representation used when results are
    handed back to users or compared across miners.
    """
    indices = to_indices(mask)
    if labels is None:
        return tuple(indices)
    return tuple(labels[i] for i in indices)

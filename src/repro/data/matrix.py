"""The matrix representation for table-based Carpenter (Table 1).

For a database ``T = (t_0, ..., t_{n-1})`` over item base ``B`` the
matrix ``M`` has shape ``(n, |B|)`` and entries

    ``M[k, i] = 0``                                   if ``i not in t_k``
    ``M[k, i] = |{ j : k <= j < n  and  i in t_j }|`` otherwise,

i.e. a non-zero entry simultaneously says "item *i* is in transaction
*k*" and "item *i* occurs this many more times from here to the end of
the database".  The table-based Carpenter variant
(:mod:`repro.carpenter.table_based`) forms intersections by indexing a
row of this matrix and reads its item-elimination bounds straight from
the entries.

The module also carries the paper's worked example (Table 1) so tests
can assert exact equality with the published matrix.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .database import TransactionDatabase

__all__ = ["build_matrix", "remaining_counts", "EXAMPLE_TRANSACTIONS", "example_database"]

#: The example database of Table 1 (items a..e).
EXAMPLE_TRANSACTIONS = [
    "abc",
    "ade",
    "bcd",
    "abcd",
    "bc",
    "abd",
    "de",
    "cde",
]


def example_database() -> TransactionDatabase:
    """The 8-transaction, 5-item example database of Table 1.

    >>> db = example_database()
    >>> db.n_transactions, db.n_items
    (8, 5)
    """
    return TransactionDatabase.from_iterable(
        [list(row) for row in EXAMPLE_TRANSACTIONS], item_order=list("abcde")
    )


def remaining_counts(db: TransactionDatabase, start: int) -> List[int]:
    """``remaining_counts(db, k)[i]`` = occurrences of item *i* in ``t_k .. t_{n-1}``.

    This is the counter family behind the item-elimination pruning of
    both improved Carpenter variants and of IsTa (Sections 3.1.1 / 3.2).
    """
    counts = [0] * db.n_items
    for transaction in db.transactions[start:]:
        remaining = transaction
        while remaining:
            low = remaining & -remaining
            counts[low.bit_length() - 1] += 1
            remaining ^= low
    return counts


def build_matrix(db: TransactionDatabase) -> np.ndarray:
    """Build the Table-1 matrix for ``db``.

    Computed in a single backward sweep: running occurrence counters are
    updated from the last transaction to the first, and each row stores
    the counters masked to the items the transaction actually contains.

    >>> build_matrix(example_database())[0]
    array([4, 5, 5, 0, 0])
    """
    n = db.n_transactions
    matrix = np.zeros((n, db.n_items), dtype=np.int64)
    counters = [0] * db.n_items
    for k in range(n - 1, -1, -1):
        transaction = db.transactions[k]
        remaining = transaction
        while remaining:
            low = remaining & -remaining
            item = low.bit_length() - 1
            counters[item] += 1
            matrix[k, item] = counters[item]
            remaining ^= low
    return matrix

"""Reading and writing transaction databases and expression matrices.

Two on-disk formats are supported:

* **FIMI format** — the plain-text format of the FIMI workshop
  repository that the paper benchmarks against: one transaction per
  line, items separated by whitespace.  Items may be arbitrary tokens;
  purely numeric files round-trip as integers.
* **Expression matrices** — tab-separated numeric matrices with a
  header row of condition names and a leading column of gene names, the
  shape of the Hughes et al. compendium the paper mines.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Hashable, List, Sequence, TextIO, Tuple, Union

import numpy as np

from .database import TransactionDatabase

__all__ = [
    "read_fimi",
    "write_fimi",
    "parse_fimi",
    "format_fimi",
    "read_expression_matrix",
    "write_expression_matrix",
]

PathOrFile = Union[str, Path, TextIO]


def _open_for_read(source: PathOrFile):
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def _open_for_write(target: PathOrFile):
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8"), True
    return target, False


def parse_fimi(text: str) -> TransactionDatabase:
    """Parse FIMI-format text into a database.

    Blank lines are empty transactions (kept: the miners must cope with
    them).  Tokens that all look like integers are converted to ``int``
    labels so numeric files round-trip.

    >>> db = parse_fimi("1 2 3\\n2 3\\n")
    >>> db.n_transactions
    2
    """
    return read_fimi(_io.StringIO(text))


def read_fimi(source: PathOrFile) -> TransactionDatabase:
    """Read a FIMI-format transaction file."""
    handle, should_close = _open_for_read(source)
    try:
        rows: List[List[str]] = []
        for line in handle:
            stripped = line.strip()
            rows.append(stripped.split() if stripped else [])
    finally:
        if should_close:
            handle.close()
    all_numeric = all(token.lstrip("-").isdigit() for row in rows for token in row)
    if all_numeric:
        typed_rows: List[List[Hashable]] = [[int(token) for token in row] for row in rows]
        order = sorted({token for row in typed_rows for token in row})
    else:
        typed_rows = [list(row) for row in rows]
        order = sorted({token for row in typed_rows for token in row}, key=str)
    # Deduplicate within a transaction while keeping the bag semantics
    # across transactions (a FIMI line is a set).
    return TransactionDatabase.from_iterable(typed_rows, item_order=order)


def format_fimi(db: TransactionDatabase) -> str:
    """Serialise a database to FIMI text (items in code order per line)."""
    lines = []
    for transaction in db.transactions:
        labels = db.decode(transaction)
        lines.append(" ".join(str(label) for label in labels))
    return "\n".join(lines) + ("\n" if lines else "")


def write_fimi(db: TransactionDatabase, target: PathOrFile) -> None:
    """Write a database in FIMI format."""
    handle, should_close = _open_for_write(target)
    try:
        handle.write(format_fimi(db))
    finally:
        if should_close:
            handle.close()


def read_expression_matrix(
    source: PathOrFile,
) -> Tuple[np.ndarray, List[str], List[str]]:
    """Read a tab-separated expression matrix.

    Returns ``(values, gene_names, condition_names)`` where ``values``
    has shape ``(n_genes, n_conditions)``.
    """
    handle, should_close = _open_for_read(source)
    try:
        header = handle.readline().rstrip("\n")
        if not header:
            raise ValueError("expression matrix file is empty")
        condition_names = header.split("\t")[1:]
        gene_names: List[str] = []
        rows: List[List[float]] = []
        for line_number, line in enumerate(handle, start=2):
            stripped = line.rstrip("\n")
            if not stripped:
                continue
            fields = stripped.split("\t")
            if len(fields) != len(condition_names) + 1:
                raise ValueError(
                    f"line {line_number}: expected {len(condition_names) + 1} "
                    f"fields, got {len(fields)}"
                )
            gene_names.append(fields[0])
            rows.append([float(field) for field in fields[1:]])
    finally:
        if should_close:
            handle.close()
    values = np.array(rows, dtype=float) if rows else np.empty((0, len(condition_names)))
    return values, gene_names, condition_names


def write_expression_matrix(
    values: np.ndarray,
    gene_names: Sequence[str],
    condition_names: Sequence[str],
    target: PathOrFile,
) -> None:
    """Write an expression matrix in the format of :func:`read_expression_matrix`."""
    values = np.asarray(values, dtype=float)
    if values.shape != (len(gene_names), len(condition_names)):
        raise ValueError(
            f"matrix shape {values.shape} does not match "
            f"{len(gene_names)} genes x {len(condition_names)} conditions"
        )
    handle, should_close = _open_for_write(target)
    try:
        handle.write("gene\t" + "\t".join(condition_names) + "\n")
        for name, row in zip(gene_names, values):
            handle.write(name + "\t" + "\t".join(f"{v:.6g}" for v in row) + "\n")
    finally:
        if should_close:
            handle.close()

"""Reading and writing transaction databases and expression matrices.

Two on-disk formats are supported:

* **FIMI format** — the plain-text format of the FIMI workshop
  repository that the paper benchmarks against: one transaction per
  line, items separated by whitespace.  Items may be arbitrary tokens;
  purely numeric files round-trip as integers.
* **Expression matrices** — tab-separated numeric matrices with a
  header row of condition names and a leading column of gene names, the
  shape of the Hughes et al. compendium the paper mines.
"""

from __future__ import annotations

import io as _io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, List, Optional, Sequence, TextIO, Tuple, Union

import numpy as np

from ..runtime.errors import CorruptInputError
from .database import TransactionDatabase

__all__ = [
    "read_fimi",
    "write_fimi",
    "parse_fimi",
    "format_fimi",
    "read_expression_matrix",
    "write_expression_matrix",
    "LoadReport",
]

PathOrFile = Union[str, Path, TextIO]


@dataclass
class LoadReport:
    """What a loader did with a file — filled in when passed to a reader.

    With ``errors="skip"`` the corrupt lines are dropped instead of
    raising; this report says how many and which, so callers can decide
    whether the surviving data is still worth mining.
    """

    source: str = ""
    lines_read: int = 0
    lines_skipped: int = 0
    skipped_line_numbers: List[int] = field(default_factory=list)


def _source_name(source: PathOrFile) -> str:
    if isinstance(source, (str, Path)):
        return str(source)
    return getattr(source, "name", "<stream>") or "<stream>"


def _open_for_read(source: PathOrFile):
    if isinstance(source, (str, Path)):
        # surrogateescape keeps undecodable bytes visible as lone
        # surrogates instead of crashing in the codec, so corruption is
        # reported with a file name and line number below.
        return open(source, "r", encoding="utf-8", errors="surrogateescape"), True
    return source, False


def _corrupt_token(token: str) -> bool:
    """True for tokens carrying control bytes or undecodable garbage."""
    return not token.isprintable()


def _open_for_write(target: PathOrFile):
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8"), True
    return target, False


def parse_fimi(
    text: str,
    errors: str = "raise",
    report: Optional[LoadReport] = None,
) -> TransactionDatabase:
    """Parse FIMI-format text into a database.

    Blank lines are empty transactions (kept: the miners must cope with
    them).  Tokens that all look like integers are converted to ``int``
    labels so numeric files round-trip.

    >>> db = parse_fimi("1 2 3\\n2 3\\n")
    >>> db.n_transactions
    2
    """
    return read_fimi(_io.StringIO(text), errors=errors, report=report)


def read_fimi(
    source: PathOrFile,
    errors: str = "raise",
    report: Optional[LoadReport] = None,
) -> TransactionDatabase:
    """Read a FIMI-format transaction file.

    Lines containing control bytes or undecodable garbage raise
    :class:`~repro.runtime.CorruptInputError` naming the file and line
    (``errors="raise"``, the default), or are dropped and counted in
    ``report`` (``errors="skip"``).
    """
    if errors not in ("raise", "skip"):
        raise ValueError(f"errors must be 'raise' or 'skip', got {errors!r}")
    name = _source_name(source)
    if report is not None:
        report.source = name
    handle, should_close = _open_for_read(source)
    try:
        rows: List[List[str]] = []
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            tokens = stripped.split() if stripped else []
            bad = next((t for t in tokens if _corrupt_token(t)), None)
            if bad is not None:
                if errors == "raise":
                    raise CorruptInputError(
                        f"{name}, line {line_number}: corrupt token "
                        f"{bad!r:.40} (control or undecodable bytes)",
                        source=name,
                        line_number=line_number,
                    )
                if report is not None:
                    report.lines_skipped += 1
                    report.skipped_line_numbers.append(line_number)
                continue
            rows.append(tokens)
            if report is not None:
                report.lines_read += 1
    finally:
        if should_close:
            handle.close()
    all_numeric = all(token.lstrip("-").isdigit() for row in rows for token in row)
    if all_numeric:
        typed_rows: List[List[Hashable]] = [[int(token) for token in row] for row in rows]
        order = sorted({token for row in typed_rows for token in row})
    else:
        typed_rows = [list(row) for row in rows]
        order = sorted({token for row in typed_rows for token in row}, key=str)
    # Deduplicate within a transaction while keeping the bag semantics
    # across transactions (a FIMI line is a set).
    return TransactionDatabase.from_iterable(typed_rows, item_order=order)


def format_fimi(db: TransactionDatabase) -> str:
    """Serialise a database to FIMI text (items in code order per line)."""
    lines = []
    for transaction in db.transactions:
        labels = db.decode(transaction)
        lines.append(" ".join(str(label) for label in labels))
    return "\n".join(lines) + ("\n" if lines else "")


def write_fimi(db: TransactionDatabase, target: PathOrFile) -> None:
    """Write a database in FIMI format."""
    handle, should_close = _open_for_write(target)
    try:
        handle.write(format_fimi(db))
    finally:
        if should_close:
            handle.close()


def read_expression_matrix(
    source: PathOrFile,
) -> Tuple[np.ndarray, List[str], List[str]]:
    """Read a tab-separated expression matrix.

    Returns ``(values, gene_names, condition_names)`` where ``values``
    has shape ``(n_genes, n_conditions)``.
    """
    name = _source_name(source)
    handle, should_close = _open_for_read(source)
    try:
        header = handle.readline().rstrip("\n")
        if not header:
            raise CorruptInputError(
                f"{name}: expression matrix file is empty", source=name
            )
        condition_names = header.split("\t")[1:]
        gene_names: List[str] = []
        rows: List[List[float]] = []
        for line_number, line in enumerate(handle, start=2):
            stripped = line.rstrip("\n")
            if not stripped:
                continue
            fields = stripped.split("\t")
            if len(fields) != len(condition_names) + 1:
                raise CorruptInputError(
                    f"{name}, line {line_number}: expected "
                    f"{len(condition_names) + 1} fields, got {len(fields)}",
                    source=name,
                    line_number=line_number,
                )
            gene_names.append(fields[0])
            try:
                rows.append([float(field) for field in fields[1:]])
            except ValueError as exc:
                raise CorruptInputError(
                    f"{name}, line {line_number}: non-numeric value ({exc})",
                    source=name,
                    line_number=line_number,
                ) from exc
    finally:
        if should_close:
            handle.close()
    values = np.array(rows, dtype=float) if rows else np.empty((0, len(condition_names)))
    return values, gene_names, condition_names


def write_expression_matrix(
    values: np.ndarray,
    gene_names: Sequence[str],
    condition_names: Sequence[str],
    target: PathOrFile,
) -> None:
    """Write an expression matrix in the format of :func:`read_expression_matrix`."""
    values = np.asarray(values, dtype=float)
    if values.shape != (len(gene_names), len(condition_names)):
        raise ValueError(
            f"matrix shape {values.shape} does not match "
            f"{len(gene_names)} genes x {len(condition_names)} conditions"
        )
    handle, should_close = _open_for_write(target)
    try:
        handle.write("gene\t" + "\t".join(condition_names) + "\n")
        for name, row in zip(gene_names, values):
            handle.write(name + "\t" + "\t".join(f"{v:.6g}" for v in row) + "\n")
    finally:
        if should_close:
            handle.close()

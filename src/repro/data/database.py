"""Transaction database representation.

A :class:`TransactionDatabase` stores a multiset of transactions over an
item base, in the sense of Section 2.1 of the paper.  Internally every
transaction is a bitmask integer over *item codes* ``0 .. n_items - 1``
(see :mod:`repro.data.itemset`); user-facing item *labels* are kept in a
parallel table so that databases built from strings, gene identifiers or
integers round-trip faithfully.

The class offers both of the classic representations the paper discusses
(Section 2.2):

* horizontal — ``db.transactions`` is the list of transaction bitmasks;
* vertical — ``db.vertical()`` gives, per item, the bitmask of the
  indices of transactions containing it (tid masks), from which covers
  and supports fall out as single intersections / popcounts.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from . import itemset

__all__ = ["TransactionDatabase"]


class TransactionDatabase:
    """A bag of transactions over a fixed item base.

    Parameters
    ----------
    transactions:
        Sequence of bitmask integers, one per transaction.
    n_items:
        Size of the item base (item codes are ``0 .. n_items - 1``).
    item_labels:
        Optional user-facing labels, ``item_labels[code]`` is the label
        of the item with that code.  Defaults to the codes themselves.

    Most users should build databases through :meth:`from_iterable`,
    which assigns codes automatically, or through
    :func:`repro.data.io.read_fimi`.
    """

    __slots__ = ("transactions", "n_items", "item_labels", "_label_to_code", "_vertical")

    def __init__(
        self,
        transactions: Sequence[int],
        n_items: int,
        item_labels: Optional[Sequence[Hashable]] = None,
    ) -> None:
        if n_items < 0:
            raise ValueError(f"n_items must be non-negative, got {n_items}")
        if item_labels is not None and len(item_labels) != n_items:
            raise ValueError(
                f"item_labels has {len(item_labels)} entries, expected {n_items}"
            )
        transactions = list(transactions)
        limit = 1 << n_items
        for position, mask in enumerate(transactions):
            if not isinstance(mask, int) or mask < 0:
                raise TypeError(
                    f"transaction {position} is not a non-negative bitmask: {mask!r}"
                )
            if mask >= limit:
                raise ValueError(
                    f"transaction {position} references items beyond the "
                    f"item base of size {n_items}"
                )
        self.transactions: List[int] = transactions
        self.n_items = n_items
        self.item_labels: List[Hashable] = (
            list(item_labels) if item_labels is not None else list(range(n_items))
        )
        self._label_to_code: Optional[Dict[Hashable, int]] = None
        self._vertical: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_iterable(
        cls,
        transactions: Iterable[Iterable[Hashable]],
        item_order: Optional[Sequence[Hashable]] = None,
    ) -> "TransactionDatabase":
        """Build a database from an iterable of item collections.

        Item codes are assigned in ``item_order`` if given, otherwise in
        first-appearance order; the item base is implicitly the union of
        all transactions (as the paper notes is common practice).

        >>> db = TransactionDatabase.from_iterable([["a", "b"], ["b", "c"]])
        >>> db.n_transactions, db.n_items
        (2, 3)
        """
        label_to_code: Dict[Hashable, int] = {}
        labels: List[Hashable] = []
        if item_order is not None:
            for label in item_order:
                if label in label_to_code:
                    raise ValueError(f"duplicate label in item_order: {label!r}")
                label_to_code[label] = len(labels)
                labels.append(label)
        masks: List[int] = []
        for transaction in transactions:
            mask = 0
            for label in transaction:
                code = label_to_code.get(label)
                if code is None:
                    if item_order is not None:
                        raise ValueError(
                            f"transaction item {label!r} missing from item_order"
                        )
                    code = len(labels)
                    label_to_code[label] = code
                    labels.append(label)
                mask |= 1 << code
            masks.append(mask)
        db = cls(masks, len(labels), labels)
        db._label_to_code = label_to_code
        return db

    @classmethod
    def from_masks(
        cls,
        masks: Sequence[int],
        n_items: Optional[int] = None,
        item_labels: Optional[Sequence[Hashable]] = None,
    ) -> "TransactionDatabase":
        """Build a database directly from bitmasks.

        If ``n_items`` is omitted it is inferred from the highest item
        used in any transaction.
        """
        masks = list(masks)
        if n_items is None:
            n_items = max((m.bit_length() for m in masks), default=0)
        return cls(masks, n_items, item_labels)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def n_transactions(self) -> int:
        """Number of transactions (the ``n`` of the paper)."""
        return len(self.transactions)

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[int]:
        return iter(self.transactions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransactionDatabase):
            return NotImplemented
        return (
            self.transactions == other.transactions
            and self.n_items == other.n_items
            and self.item_labels == other.item_labels
        )

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(n_transactions={self.n_transactions}, "
            f"n_items={self.n_items})"
        )

    def label_of(self, code: int) -> Hashable:
        """User-facing label of an item code."""
        return self.item_labels[code]

    def code_of(self, label: Hashable) -> int:
        """Item code of a user-facing label (KeyError if unknown)."""
        if self._label_to_code is None:
            self._label_to_code = {
                lab: code for code, lab in enumerate(self.item_labels)
            }
        return self._label_to_code[label]

    def encode(self, items: Iterable[Hashable]) -> int:
        """Encode a collection of labels as a bitmask item set."""
        return itemset.from_indices(self.code_of(label) for label in items)

    def decode(self, mask: int) -> Tuple[Hashable, ...]:
        """Decode a bitmask item set into a tuple of labels (code order)."""
        return itemset.canonical_tuple(mask, self.item_labels)

    # ------------------------------------------------------------------
    # Derived representations
    # ------------------------------------------------------------------

    def vertical(self) -> List[int]:
        """Per-item transaction-index bitmasks (the vertical representation).

        ``vertical()[i]`` has bit ``k`` set iff item ``i`` is in
        transaction ``k``.  Computed once and cached.
        """
        if self._vertical is None:
            tid_masks = [0] * self.n_items
            for tid, transaction in enumerate(self.transactions):
                bit = 1 << tid
                remaining = transaction
                while remaining:
                    low = remaining & -remaining
                    tid_masks[low.bit_length() - 1] |= bit
                    remaining ^= low
            self._vertical = tid_masks
        return self._vertical

    def item_supports(self) -> List[int]:
        """Support of each single item, indexed by item code."""
        return [itemset.size(mask) for mask in self.vertical()]

    def cover(self, mask: int) -> int:
        """Cover ``K_T(I)`` of an item set as a tid bitmask (Section 2.1).

        The cover of the empty set is all transactions.
        """
        all_tids = (1 << self.n_transactions) - 1
        result = all_tids
        vertical = self.vertical()
        remaining = mask
        while remaining and result:
            low = remaining & -remaining
            result &= vertical[low.bit_length() - 1]
            remaining ^= low
        return result

    def support(self, mask: int) -> int:
        """Support ``s_T(I)`` — the size of the cover."""
        return itemset.size(self.cover(mask))

    def density(self) -> float:
        """Fraction of set bits in the transaction/item matrix."""
        cells = self.n_transactions * self.n_items
        if cells == 0:
            return 0.0
        ones = sum(itemset.size(t) for t in self.transactions)
        return ones / cells

    def transaction_sizes(self) -> List[int]:
        """Number of items per transaction, in database order."""
        return [itemset.size(t) for t in self.transactions]

    # ------------------------------------------------------------------
    # Filtering / restructuring
    # ------------------------------------------------------------------

    def without_empty(self) -> "TransactionDatabase":
        """Copy with empty transactions dropped."""
        return TransactionDatabase(
            [t for t in self.transactions if t], self.n_items, self.item_labels
        )

    def filter_items(self, keep_mask: int) -> "TransactionDatabase":
        """Restrict all transactions to the items in ``keep_mask``.

        The item base is compacted: kept items are re-coded to
        ``0 .. k-1`` preserving relative order, and labels follow.
        """
        kept = itemset.to_indices(keep_mask)
        new_code = {old: new for new, old in enumerate(kept)}
        masks = []
        for transaction in self.transactions:
            reduced = transaction & keep_mask
            mask = 0
            remaining = reduced
            while remaining:
                low = remaining & -remaining
                mask |= 1 << new_code[low.bit_length() - 1]
                remaining ^= low
            masks.append(mask)
        labels = [self.item_labels[old] for old in kept]
        return TransactionDatabase(masks, len(kept), labels)

    def filter_infrequent(self, smin: int) -> "TransactionDatabase":
        """Drop items with support below ``smin`` (standard first pass)."""
        supports = self.item_supports()
        keep = 0
        for code, support in enumerate(supports):
            if support >= smin:
                keep |= 1 << code
        return self.filter_items(keep)

    def select_transactions(self, tids: Sequence[int]) -> "TransactionDatabase":
        """Copy containing the transactions at the given indices, in order."""
        return TransactionDatabase(
            [self.transactions[tid] for tid in tids], self.n_items, self.item_labels
        )

    def as_sets(self) -> List[Tuple[Hashable, ...]]:
        """All transactions as tuples of labels (for display / export)."""
        return [self.decode(t) for t in self.transactions]

"""Database and matrix transforms used to build the paper's workloads.

* :func:`transpose` — swap the roles of items and transactions.  The
  paper uses this twice: genes-as-transactions versus genes-as-items on
  the expression data (Section 4), and the transposed BMS-WebView-1
  click-stream data (Figure 8).
* :func:`binarize_expression` — the ±0.2 log-expression discretisation
  rule: values above the upper threshold become an "over-expressed"
  item, values below the lower threshold an "under-expressed" item,
  values in between produce nothing.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .database import TransactionDatabase

__all__ = [
    "transpose",
    "binarize_expression",
    "expression_to_database",
]


def transpose(db: TransactionDatabase) -> TransactionDatabase:
    """Exchange items and transactions.

    Transaction ``k`` of the result contains item ``j`` iff transaction
    ``j`` of the input contains item ``k``.  Labels of the new items are
    the old transaction indices; labels of the old items become the
    identity of the new transactions and are therefore dropped.

    The operation is an involution up to labels:
    ``transpose(transpose(db))`` has the same bitmask rows as ``db``.
    """
    # The vertical representation *is* the transposed horizontal one.
    rows = db.vertical()
    return TransactionDatabase(
        list(rows), db.n_transactions, list(range(db.n_transactions))
    )


def binarize_expression(
    values: np.ndarray,
    upper: float = 0.2,
    lower: float = -0.2,
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply the paper's discretisation rule to a log-expression matrix.

    Returns a pair of boolean matrices ``(over, under)`` of the same
    shape as ``values``: ``over[g, c]`` is true iff gene ``g`` is
    over-expressed under condition ``c`` (value > ``upper``), and
    ``under[g, c]`` iff it is under-expressed (value < ``lower``).
    """
    if lower >= upper:
        raise ValueError(f"lower threshold {lower} must be below upper {upper}")
    values = np.asarray(values, dtype=float)
    return values > upper, values < lower


def expression_to_database(
    values: np.ndarray,
    gene_names: Sequence[str] = None,
    condition_names: Sequence[str] = None,
    upper: float = 0.2,
    lower: float = -0.2,
    orientation: str = "genes-as-transactions",
) -> TransactionDatabase:
    """Turn a log-expression matrix into a transaction database.

    Two orientations, as in Section 4 of the paper:

    * ``"genes-as-transactions"`` — each gene is a transaction; the
      items are ``(condition, "+")`` / ``(condition, "-")`` pairs,
      i.e. relationships among experimental conditions are mined.
      (Many transactions, few items.)
    * ``"conditions-as-transactions"`` — the transposed view: each
      condition is a transaction over ``(gene, "+")`` / ``(gene, "-")``
      items.  (Few transactions, very many items — the regime the
      intersection algorithms target.)
    """
    values = np.asarray(values, dtype=float)
    n_genes, n_conditions = values.shape
    if gene_names is None:
        gene_names = [f"g{i}" for i in range(n_genes)]
    if condition_names is None:
        condition_names = [f"c{j}" for j in range(n_conditions)]
    if len(gene_names) != n_genes or len(condition_names) != n_conditions:
        raise ValueError("name lists do not match the matrix shape")
    over, under = binarize_expression(values, upper, lower)

    if orientation == "genes-as-transactions":
        labels: List[object] = [(name, "+") for name in condition_names]
        labels += [(name, "-") for name in condition_names]
        transactions = []
        for g in range(n_genes):
            row = []
            for c in range(n_conditions):
                if over[g, c]:
                    row.append((condition_names[c], "+"))
                elif under[g, c]:
                    row.append((condition_names[c], "-"))
            transactions.append(row)
        return TransactionDatabase.from_iterable(transactions, item_order=labels)
    if orientation == "conditions-as-transactions":
        labels = [(name, "+") for name in gene_names]
        labels += [(name, "-") for name in gene_names]
        transactions = []
        for c in range(n_conditions):
            row = []
            for g in range(n_genes):
                if over[g, c]:
                    row.append((gene_names[g], "+"))
                elif under[g, c]:
                    row.append((gene_names[g], "-"))
            transactions.append(row)
        return TransactionDatabase.from_iterable(transactions, item_order=labels)
    raise ValueError(
        f"unknown orientation {orientation!r}; expected 'genes-as-transactions' "
        f"or 'conditions-as-transactions'"
    )

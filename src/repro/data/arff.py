"""ARFF import/export for transaction databases.

The original Carpenter implementation shipped as a Weka module (the
GEMini package the paper tried to benchmark against), so Weka's ARFF is
the natural interchange format for this problem domain.  Two common
encodings of transaction data are supported:

* **binary/nominal attributes** — one attribute per item with values
  ``{0, 1}`` (or ``{false, true}``); a transaction contains the items
  whose value is 1/true;
* **sparse instances** — ``{index value, ...}`` rows, the usual choice
  for large item bases.

Only the subset of ARFF needed for these encodings is implemented;
numeric non-binary attributes are rejected with a clear error rather
than silently discretised (use :mod:`repro.data.transforms` for
thresholding real-valued matrices).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, TextIO, Union

from ..runtime.errors import CorruptInputError
from .database import TransactionDatabase
from .io import LoadReport

__all__ = ["read_arff", "write_arff", "parse_arff", "format_arff"]

PathOrFile = Union[str, Path, TextIO]

_TRUE_VALUES = {"1", "true", "t", "yes", "y"}
_FALSE_VALUES = {"0", "false", "f", "no", "n", "?"}


def parse_arff(
    text: str,
    errors: str = "raise",
    report: Optional[LoadReport] = None,
    source: str = "<string>",
) -> TransactionDatabase:
    """Parse ARFF text into a transaction database.

    Malformed content raises :class:`~repro.runtime.CorruptInputError`
    naming the source and line.  ``errors="skip"`` drops malformed
    *data* rows instead (counted in ``report``); header errors always
    raise — a broken header leaves nothing trustworthy to mine.
    """
    if errors not in ("raise", "skip"):
        raise ValueError(f"errors must be 'raise' or 'skip', got {errors!r}")
    if report is not None:
        report.source = source
    attribute_names: List[str] = []
    transactions: List[List[str]] = []
    in_data = False
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        lowered = line.lower()
        if not in_data:
            if lowered.startswith("@relation"):
                continue
            if lowered.startswith("@attribute"):
                attribute_names.append(_parse_attribute(line, line_number, source))
                continue
            if lowered.startswith("@data"):
                if not attribute_names:
                    raise CorruptInputError(
                        f"{source}: @data before any @attribute",
                        source=source,
                        line_number=line_number,
                    )
                in_data = True
                continue
            raise CorruptInputError(
                f"{source}, line {line_number}: unexpected header line {line!r}",
                source=source,
                line_number=line_number,
            )
        else:
            try:
                transactions.append(
                    _parse_instance(line, attribute_names, line_number, source)
                )
            except CorruptInputError:
                if errors == "raise":
                    raise
                if report is not None:
                    report.lines_skipped += 1
                    report.skipped_line_numbers.append(line_number)
                continue
            if report is not None:
                report.lines_read += 1
    if not in_data:
        raise CorruptInputError(
            f"{source}: no @data section found", source=source
        )
    return TransactionDatabase.from_iterable(transactions, item_order=attribute_names)


def _parse_attribute(line: str, line_number: int, source: str) -> str:
    """Extract the name of a binary/nominal attribute declaration."""
    body = line[len("@attribute"):].strip()
    if body.startswith("'"):
        end = body.index("'", 1)
        name, rest = body[1:end], body[end + 1 :].strip()
    elif body.startswith('"'):
        end = body.index('"', 1)
        name, rest = body[1:end], body[end + 1 :].strip()
    else:
        parts = body.split(None, 1)
        if len(parts) != 2:
            raise CorruptInputError(
                f"{source}, line {line_number}: malformed @attribute",
                source=source,
                line_number=line_number,
            )
        name, rest = parts
    rest_lower = rest.lower()
    if rest_lower.startswith("{"):
        values = {value.strip().strip("'\"").lower() for value in rest.strip("{}").split(",")}
        if not values <= (_TRUE_VALUES | _FALSE_VALUES):
            raise CorruptInputError(
                f"{source}, line {line_number}: attribute {name!r} is not binary "
                f"(values {sorted(values)}); threshold real data first",
                source=source,
                line_number=line_number,
            )
    elif rest_lower not in ("numeric", "integer", "real"):
        raise CorruptInputError(
            f"{source}, line {line_number}: unsupported attribute type {rest!r}",
            source=source,
            line_number=line_number,
        )
    return name


def _parse_instance(
    line: str, attribute_names: List[str], line_number: int, source: str
) -> List[str]:
    """One @data row -> list of contained item names."""
    if line.startswith("{"):
        if not line.endswith("}"):
            raise CorruptInputError(
                f"{source}, line {line_number}: unterminated sparse instance",
                source=source,
                line_number=line_number,
            )
        body = line[1:-1].strip()
        items = []
        if body:
            for entry in body.split(","):
                parts = entry.split()
                if len(parts) != 2:
                    raise CorruptInputError(
                        f"{source}, line {line_number}: malformed sparse "
                        f"entry {entry!r}",
                        source=source,
                        line_number=line_number,
                    )
                try:
                    index = int(parts[0])
                except ValueError:
                    raise CorruptInputError(
                        f"{source}, line {line_number}: malformed sparse "
                        f"entry {entry!r}",
                        source=source,
                        line_number=line_number,
                    ) from None
                if not 0 <= index < len(attribute_names):
                    raise CorruptInputError(
                        f"{source}, line {line_number}: attribute index "
                        f"{index} out of range",
                        source=source,
                        line_number=line_number,
                    )
                if parts[1].lower() in _TRUE_VALUES:
                    items.append(attribute_names[index])
        return items
    values = [value.strip() for value in line.split(",")]
    if len(values) != len(attribute_names):
        raise CorruptInputError(
            f"{source}, line {line_number}: expected {len(attribute_names)} "
            f"values, got {len(values)}",
            source=source,
            line_number=line_number,
        )
    items = []
    for name, value in zip(attribute_names, values):
        lowered = value.lower().strip("'\"")
        if lowered in _TRUE_VALUES:
            items.append(name)
        elif lowered not in _FALSE_VALUES:
            raise CorruptInputError(
                f"{source}, line {line_number}: non-binary value {value!r} "
                f"for {name!r}",
                source=source,
                line_number=line_number,
            )
    return items


def read_arff(
    source: PathOrFile,
    errors: str = "raise",
    report: Optional[LoadReport] = None,
) -> TransactionDatabase:
    """Read an ARFF file (binary nominal or sparse encoding)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8", errors="surrogateescape") as handle:
            return parse_arff(
                handle.read(), errors=errors, report=report, source=str(source)
            )
    name = getattr(source, "name", "<stream>") or "<stream>"
    return parse_arff(source.read(), errors=errors, report=report, source=name)


def format_arff(
    db: TransactionDatabase,
    relation: str = "transactions",
    sparse: bool = True,
) -> str:
    """Serialise a database to ARFF text.

    ``sparse=True`` (default) writes ``{index 1, ...}`` instances —
    appropriate for the wide item bases this package targets.
    """
    lines = [f"@relation {relation}", ""]
    for label in db.item_labels:
        lines.append(f"@attribute '{label}' {{0, 1}}")
    lines.append("")
    lines.append("@data")
    for mask in db.transactions:
        if sparse:
            entries = []
            remaining = mask
            while remaining:
                low = remaining & -remaining
                entries.append(f"{low.bit_length() - 1} 1")
                remaining ^= low
            lines.append("{" + ", ".join(entries) + "}")
        else:
            lines.append(
                ",".join("1" if mask >> i & 1 else "0" for i in range(db.n_items))
            )
    return "\n".join(lines) + "\n"


def write_arff(
    db: TransactionDatabase,
    target: PathOrFile,
    relation: str = "transactions",
    sparse: bool = True,
) -> None:
    """Write a database in ARFF format."""
    text = format_arff(db, relation, sparse)
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)

"""ARFF import/export for transaction databases.

The original Carpenter implementation shipped as a Weka module (the
GEMini package the paper tried to benchmark against), so Weka's ARFF is
the natural interchange format for this problem domain.  Two common
encodings of transaction data are supported:

* **binary/nominal attributes** — one attribute per item with values
  ``{0, 1}`` (or ``{false, true}``); a transaction contains the items
  whose value is 1/true;
* **sparse instances** — ``{index value, ...}`` rows, the usual choice
  for large item bases.

Only the subset of ARFF needed for these encodings is implemented;
numeric non-binary attributes are rejected with a clear error rather
than silently discretised (use :mod:`repro.data.transforms` for
thresholding real-valued matrices).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, TextIO, Union

from .database import TransactionDatabase

__all__ = ["read_arff", "write_arff", "parse_arff", "format_arff"]

PathOrFile = Union[str, Path, TextIO]

_TRUE_VALUES = {"1", "true", "t", "yes", "y"}
_FALSE_VALUES = {"0", "false", "f", "no", "n", "?"}


def parse_arff(text: str) -> TransactionDatabase:
    """Parse ARFF text into a transaction database."""
    attribute_names: List[str] = []
    transactions: List[List[str]] = []
    in_data = False
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        lowered = line.lower()
        if not in_data:
            if lowered.startswith("@relation"):
                continue
            if lowered.startswith("@attribute"):
                attribute_names.append(_parse_attribute(line, line_number))
                continue
            if lowered.startswith("@data"):
                if not attribute_names:
                    raise ValueError("@data before any @attribute")
                in_data = True
                continue
            raise ValueError(f"line {line_number}: unexpected header line {line!r}")
        transactions.append(_parse_instance(line, attribute_names, line_number))
    if not in_data:
        raise ValueError("no @data section found")
    return TransactionDatabase.from_iterable(transactions, item_order=attribute_names)


def _parse_attribute(line: str, line_number: int) -> str:
    """Extract the name of a binary/nominal attribute declaration."""
    body = line[len("@attribute"):].strip()
    if body.startswith("'"):
        end = body.index("'", 1)
        name, rest = body[1:end], body[end + 1 :].strip()
    elif body.startswith('"'):
        end = body.index('"', 1)
        name, rest = body[1:end], body[end + 1 :].strip()
    else:
        parts = body.split(None, 1)
        if len(parts) != 2:
            raise ValueError(f"line {line_number}: malformed @attribute")
        name, rest = parts
    rest_lower = rest.lower()
    if rest_lower.startswith("{"):
        values = {value.strip().strip("'\"").lower() for value in rest.strip("{}").split(",")}
        if not values <= (_TRUE_VALUES | _FALSE_VALUES):
            raise ValueError(
                f"line {line_number}: attribute {name!r} is not binary "
                f"(values {sorted(values)}); threshold real data first"
            )
    elif rest_lower not in ("numeric", "integer", "real"):
        raise ValueError(
            f"line {line_number}: unsupported attribute type {rest!r}"
        )
    return name


def _parse_instance(
    line: str, attribute_names: List[str], line_number: int
) -> List[str]:
    """One @data row -> list of contained item names."""
    if line.startswith("{"):
        if not line.endswith("}"):
            raise ValueError(f"line {line_number}: unterminated sparse instance")
        body = line[1:-1].strip()
        items = []
        if body:
            for entry in body.split(","):
                parts = entry.split()
                if len(parts) != 2:
                    raise ValueError(
                        f"line {line_number}: malformed sparse entry {entry!r}"
                    )
                index = int(parts[0])
                if not 0 <= index < len(attribute_names):
                    raise ValueError(
                        f"line {line_number}: attribute index {index} out of range"
                    )
                if parts[1].lower() in _TRUE_VALUES:
                    items.append(attribute_names[index])
        return items
    values = [value.strip() for value in line.split(",")]
    if len(values) != len(attribute_names):
        raise ValueError(
            f"line {line_number}: expected {len(attribute_names)} values, "
            f"got {len(values)}"
        )
    items = []
    for name, value in zip(attribute_names, values):
        lowered = value.lower().strip("'\"")
        if lowered in _TRUE_VALUES:
            items.append(name)
        elif lowered not in _FALSE_VALUES:
            raise ValueError(
                f"line {line_number}: non-binary value {value!r} for {name!r}"
            )
    return items


def read_arff(source: PathOrFile) -> TransactionDatabase:
    """Read an ARFF file (binary nominal or sparse encoding)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return parse_arff(handle.read())
    return parse_arff(source.read())


def format_arff(
    db: TransactionDatabase,
    relation: str = "transactions",
    sparse: bool = True,
) -> str:
    """Serialise a database to ARFF text.

    ``sparse=True`` (default) writes ``{index 1, ...}`` instances —
    appropriate for the wide item bases this package targets.
    """
    lines = [f"@relation {relation}", ""]
    for label in db.item_labels:
        lines.append(f"@attribute '{label}' {{0, 1}}")
    lines.append("")
    lines.append("@data")
    for mask in db.transactions:
        if sparse:
            entries = []
            remaining = mask
            while remaining:
                low = remaining & -remaining
                entries.append(f"{low.bit_length() - 1} 1")
                remaining ^= low
            lines.append("{" + ", ".join(entries) + "}")
        else:
            lines.append(
                ",".join("1" if mask >> i & 1 else "0" for i in range(db.n_items))
            )
    return "\n".join(lines) + "\n"


def write_arff(
    db: TransactionDatabase,
    target: PathOrFile,
    relation: str = "transactions",
    sparse: bool = True,
) -> None:
    """Write a database in ARFF format."""
    text = format_arff(db, relation, sparse)
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)

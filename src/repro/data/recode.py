"""Item coding and transaction processing orders (Section 3.4).

The paper reports that the intersection miners are fastest when

* item codes are assigned by *ascending* frequency — the rarest item
  gets code 0, the next rarest code 1, and so on — and
* transactions are processed in order of *increasing size*, breaking
  ties lexicographically w.r.t. a descending item order.

This module implements those orders plus the obvious alternatives so the
claim can be ablated (``benchmarks/bench_ablation_orders.py``).
"""

from __future__ import annotations

import random
from typing import List

from . import itemset
from .database import TransactionDatabase

__all__ = [
    "ITEM_ORDERS",
    "TRANSACTION_ORDERS",
    "item_order_permutation",
    "recode_items",
    "transaction_order_permutation",
    "reorder_transactions",
    "prepare",
]

#: Names accepted by :func:`item_order_permutation`.
ITEM_ORDERS = ("frequency-ascending", "frequency-descending", "identity", "random")

#: Names accepted by :func:`transaction_order_permutation`.
TRANSACTION_ORDERS = (
    "size-ascending",
    "size-descending",
    "identity",
    "random",
    "lexicographic",
)


def item_order_permutation(
    db: TransactionDatabase, order: str = "frequency-ascending", seed: int = 0
) -> List[int]:
    """Permutation ``perm`` such that old code ``c`` becomes ``perm[c]``.

    Frequency ties are broken by the old code so the permutation is
    deterministic.
    """
    codes = list(range(db.n_items))
    if order == "identity":
        return codes
    if order == "random":
        rng = random.Random(seed)
        shuffled = codes[:]
        rng.shuffle(shuffled)
        perm = [0] * db.n_items
        for new, old in enumerate(shuffled):
            perm[old] = new
        return perm
    supports = db.item_supports()
    if order == "frequency-ascending":
        ranked = sorted(codes, key=lambda c: (supports[c], c))
    elif order == "frequency-descending":
        ranked = sorted(codes, key=lambda c: (-supports[c], c))
    else:
        raise ValueError(f"unknown item order {order!r}; expected one of {ITEM_ORDERS}")
    perm = [0] * db.n_items
    for new, old in enumerate(ranked):
        perm[old] = new
    return perm


def recode_items(
    db: TransactionDatabase, order: str = "frequency-ascending", seed: int = 0
) -> TransactionDatabase:
    """Return a copy of ``db`` with item codes permuted per ``order``."""
    perm = item_order_permutation(db, order, seed)
    if perm == list(range(db.n_items)):
        return db
    masks = []
    for transaction in db.transactions:
        mask = 0
        remaining = transaction
        while remaining:
            low = remaining & -remaining
            mask |= 1 << perm[low.bit_length() - 1]
            remaining ^= low
        masks.append(mask)
    labels: List[object] = [None] * db.n_items
    for old, new in enumerate(perm):
        labels[new] = db.item_labels[old]
    return TransactionDatabase(masks, db.n_items, labels)


def _lexicographic_key(transaction: int) -> List[int]:
    """Items of a transaction in descending code order (the paper's tie key)."""
    return sorted(itemset.to_indices(transaction), reverse=True)


def transaction_order_permutation(
    db: TransactionDatabase, order: str = "size-ascending", seed: int = 0
) -> List[int]:
    """Indices of ``db.transactions`` in the requested processing order."""
    tids = list(range(db.n_transactions))
    if order == "identity":
        return tids
    if order == "random":
        rng = random.Random(seed)
        rng.shuffle(tids)
        return tids
    if order == "size-ascending":
        return sorted(
            tids,
            key=lambda k: (
                itemset.size(db.transactions[k]),
                _lexicographic_key(db.transactions[k]),
            ),
        )
    if order == "size-descending":
        return sorted(
            tids,
            key=lambda k: (
                -itemset.size(db.transactions[k]),
                _lexicographic_key(db.transactions[k]),
            ),
        )
    if order == "lexicographic":
        return sorted(tids, key=lambda k: _lexicographic_key(db.transactions[k]))
    raise ValueError(
        f"unknown transaction order {order!r}; expected one of {TRANSACTION_ORDERS}"
    )


def reorder_transactions(
    db: TransactionDatabase, order: str = "size-ascending", seed: int = 0
) -> TransactionDatabase:
    """Return a copy of ``db`` with transactions in the requested order."""
    tids = transaction_order_permutation(db, order, seed)
    if tids == list(range(db.n_transactions)):
        return db
    return db.select_transactions(tids)


def prepare(
    db: TransactionDatabase,
    item_order: str = "frequency-ascending",
    transaction_order: str = "size-ascending",
    seed: int = 0,
) -> TransactionDatabase:
    """Apply the paper's default preprocessing: recode items, sort transactions."""
    return reorder_transactions(
        recode_items(db, item_order, seed), transaction_order, seed
    )

"""Fallback policy: degrade along an algorithm chain when a budget trips.

The paper's own benchmarks show that each algorithm family has regimes
where it blows past feasible time or memory (IsTa's repository on
transposed BMS-WebView-1, table-based Carpenter's quadratic matrix).
A :class:`FallbackPolicy` tells :func:`repro.mining.mine` what to do
when the run guard stops an attempt: try the next algorithm in the
chain with a fresh budget, and — if every attempt trips — optionally
hand back the best anytime result salvaged along the way instead of
raising.

The default chain mirrors the crossover structure of the paper's
figures: start from whatever was asked for, then fall through
``carpenter-table → carpenter-lists → ista → lcm`` (the last being the
enumeration family's most robust closed-set miner).  Cobbler's
mid-search row/column switch is the in-algorithm precedent for exactly
this kind of regime change.

This module is self-contained (names only, no miner imports); the
driving loop lives in :mod:`repro.mining`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

__all__ = ["FallbackPolicy", "DEFAULT_CHAIN"]

#: The default degradation chain (requested algorithm always goes first).
DEFAULT_CHAIN: Tuple[str, ...] = (
    "carpenter-table",
    "carpenter-lists",
    "ista",
    "lcm",
)


@dataclass(frozen=True)
class FallbackPolicy:
    """What to do when the guard stops a mining attempt.

    Attributes
    ----------
    chain:
        Algorithm names to try, in order, after the requested algorithm
        trips its budget.  Entries equal to the requested algorithm are
        skipped; for ``target="all"`` the closed-only intersection
        miners are skipped too.
    on_partial:
        ``"raise"`` (default): if every attempt trips, re-raise the
        last interruption (it still carries the best salvaged partial
        result on its ``partial`` attribute).  ``"return"``: hand the
        best anytime result back as the return value, marked with
        ``interrupted=True``.
    """

    chain: Tuple[str, ...] = DEFAULT_CHAIN
    on_partial: str = "raise"

    def __post_init__(self) -> None:
        if self.on_partial not in ("raise", "return"):
            raise ValueError(
                f"on_partial must be 'raise' or 'return', got {self.on_partial!r}"
            )

    @classmethod
    def coerce(
        cls,
        value: Union[bool, str, Sequence[str], "FallbackPolicy", None],
        on_partial: str = "raise",
    ) -> Optional["FallbackPolicy"]:
        """Build a policy from the loosely-typed ``fallback=`` argument.

        ``None`` and ``False`` mean no fallback (returns ``None``);
        ``True`` or ``"default"`` select :data:`DEFAULT_CHAIN`; a
        comma-separated string or a sequence of names selects a custom
        chain; an existing policy passes through (its own ``on_partial``
        wins).
        """
        if value is None or value is False:
            return None
        if isinstance(value, FallbackPolicy):
            return value
        if value is True or value == "default":
            return cls(DEFAULT_CHAIN, on_partial)
        if isinstance(value, str):
            names = tuple(name.strip() for name in value.split(",") if name.strip())
            if not names:
                raise ValueError(f"empty fallback chain {value!r}")
            return cls(names, on_partial)
        if isinstance(value, (list, tuple)):
            if not value:
                raise ValueError("empty fallback chain")
            return cls(tuple(value), on_partial)
        raise ValueError(f"cannot build a fallback policy from {value!r}")

"""Deterministic fault injection for the resource-governed runtime.

A :class:`FaultPlan` attached to a :class:`~repro.runtime.guard.RunGuard`
forces a chosen trip — timeout, memory-budget, cancellation, or a
corrupt-transaction event — once the guard's ``check()`` call count
reaches a chosen operation count.  Because the miners poll the guard at
deterministic points (their loop and recursion heads) and the plan keys
on the check count rather than the clock, an injected fault fires at
the same place on every run: the tests use this to prove that every
guard actually unwinds every algorithm cleanly, without needing slow
pathological inputs.

``max_trips`` bounds how many times the plan fires before disarming
itself, which is how the fallback tests force the first *k* attempts of
a chain to fail and let attempt *k+1* succeed.  Every firing is
recorded in :attr:`FaultPlan.trips`.

Set the guard's ``stride`` to 1 when exact firing positions matter —
with a larger stride the fault fires at the first *real* check at or
after the threshold.

Beyond guard-count trips, a plan can simulate a *hard crash* at a
named pipeline boundary: durable subsystems (the write-ahead log and
snapshot compaction of :mod:`repro.serving`) call
:meth:`FaultPlan.reach` with a point name at every step that touches
disk, and a plan armed with ``crash_at`` raises
:class:`InjectedCrash` — a :class:`BaseException`, so ordinary
``except Exception`` recovery code cannot swallow it, exactly like a
``SIGKILL`` would not be caught — the ``crash_on_hit``-th time that
point is reached.  The crash-recovery property tests kill the ingest
pipeline at every named point this way and prove the recovered state
answers queries identically to a never-crashed run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .errors import (
    CorruptInputError,
    MemoryBudgetExceeded,
    MiningCancelled,
    MiningTimeout,
)

__all__ = ["FaultPlan", "InjectedCrash"]


class InjectedCrash(BaseException):
    """A simulated process death from :meth:`FaultPlan.reach`.

    Deliberately **not** an :class:`Exception` subclass: a real crash
    gives cleanup code no chance to run, so the simulation must not be
    absorbable by the broad ``except Exception`` handlers that guard
    ordinary I/O.  Tests catch it explicitly, then re-open the crashed
    store to exercise recovery.

    ``point`` is the named boundary that fired and ``hits`` how many
    times it had been reached.
    """

    def __init__(self, point: str, hits: int) -> None:
        super().__init__(f"injected crash at point {point!r} (hit {hits})")
        self.point = point
        self.hits = hits


@dataclass
class FaultPlan:
    """Force guard trips at chosen ``check()`` counts.

    Each ``*_at`` threshold is an operation count (number of guard
    checks) at or beyond which the corresponding fault fires; ``None``
    disables that fault.  When several thresholds are crossed at once
    they fire in the order timeout, memory, cancel, corrupt.
    """

    timeout_at: Optional[int] = None
    memory_at: Optional[int] = None
    cancel_at: Optional[int] = None
    corrupt_at: Optional[int] = None
    #: Named pipeline boundary at which :meth:`reach` raises
    #: :class:`InjectedCrash` (``None`` disables crash injection).
    crash_at: Optional[str] = None
    #: Fire on the Nth arrival at ``crash_at`` (1 = the first).
    crash_on_hit: int = 1
    #: Disarm after this many firings (``None`` = never disarm).
    max_trips: Optional[int] = None
    #: Record of firings: ``(fault kind, check count)`` tuples.
    trips: List[Tuple[str, int]] = field(default_factory=list)
    #: Arrival counts per named point, whether or not they fired.
    point_hits: Dict[str, int] = field(default_factory=dict)

    @property
    def armed(self) -> bool:
        """Will the plan still fire?"""
        return self.max_trips is None or len(self.trips) < self.max_trips

    def reach(self, point: str) -> None:
        """Record arrival at a named pipeline boundary; maybe crash.

        Called by crash-point-instrumented code (the WAL appender, the
        snapshot compactor) at every boundary whose loss semantics are
        worth testing.  Arrivals are always counted; the plan raises
        :class:`InjectedCrash` when ``point`` matches ``crash_at`` on
        its ``crash_on_hit``-th arrival while the plan is armed.
        """
        hits = self.point_hits.get(point, 0) + 1
        self.point_hits[point] = hits
        if not self.armed:
            return
        if self.crash_at == point and hits >= self.crash_on_hit:
            self.trips.append((f"crash:{point}", hits))
            raise InjectedCrash(point, hits)

    def fire(self, guard: Any) -> None:
        """Consulted by the guard at every real check; raises on a hit."""
        if not self.armed:
            return
        n = guard.checks
        kwargs = guard._interrupt_kwargs()
        kwargs["injected"] = True
        if self.timeout_at is not None and n >= self.timeout_at:
            self.trips.append(("timeout", n))
            raise MiningTimeout(
                f"injected timeout at operation count {n}", **kwargs
            )
        if self.memory_at is not None and n >= self.memory_at:
            self.trips.append(("memory", n))
            raise MemoryBudgetExceeded(
                f"injected memory spike at operation count {n}", **kwargs
            )
        if self.cancel_at is not None and n >= self.cancel_at:
            self.trips.append(("cancel", n))
            raise MiningCancelled(
                f"injected cancellation at operation count {n}", **kwargs
            )
        if self.corrupt_at is not None and n >= self.corrupt_at:
            self.trips.append(("corrupt", n))
            raise CorruptInputError(
                f"injected corrupt transaction at operation count {n}"
            )

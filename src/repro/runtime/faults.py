"""Deterministic fault injection for the resource-governed runtime.

A :class:`FaultPlan` attached to a :class:`~repro.runtime.guard.RunGuard`
forces a chosen trip — timeout, memory-budget, cancellation, or a
corrupt-transaction event — once the guard's ``check()`` call count
reaches a chosen operation count.  Because the miners poll the guard at
deterministic points (their loop and recursion heads) and the plan keys
on the check count rather than the clock, an injected fault fires at
the same place on every run: the tests use this to prove that every
guard actually unwinds every algorithm cleanly, without needing slow
pathological inputs.

``max_trips`` bounds how many times the plan fires before disarming
itself, which is how the fallback tests force the first *k* attempts of
a chain to fail and let attempt *k+1* succeed.  Every firing is
recorded in :attr:`FaultPlan.trips`.

Set the guard's ``stride`` to 1 when exact firing positions matter —
with a larger stride the fault fires at the first *real* check at or
after the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from .errors import (
    CorruptInputError,
    MemoryBudgetExceeded,
    MiningCancelled,
    MiningTimeout,
)

__all__ = ["FaultPlan"]


@dataclass
class FaultPlan:
    """Force guard trips at chosen ``check()`` counts.

    Each ``*_at`` threshold is an operation count (number of guard
    checks) at or beyond which the corresponding fault fires; ``None``
    disables that fault.  When several thresholds are crossed at once
    they fire in the order timeout, memory, cancel, corrupt.
    """

    timeout_at: Optional[int] = None
    memory_at: Optional[int] = None
    cancel_at: Optional[int] = None
    corrupt_at: Optional[int] = None
    #: Disarm after this many firings (``None`` = never disarm).
    max_trips: Optional[int] = None
    #: Record of firings: ``(fault kind, check count)`` tuples.
    trips: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def armed(self) -> bool:
        """Will the plan still fire?"""
        return self.max_trips is None or len(self.trips) < self.max_trips

    def fire(self, guard: Any) -> None:
        """Consulted by the guard at every real check; raises on a hit."""
        if not self.armed:
            return
        n = guard.checks
        kwargs = guard._interrupt_kwargs()
        kwargs["injected"] = True
        if self.timeout_at is not None and n >= self.timeout_at:
            self.trips.append(("timeout", n))
            raise MiningTimeout(
                f"injected timeout at operation count {n}", **kwargs
            )
        if self.memory_at is not None and n >= self.memory_at:
            self.trips.append(("memory", n))
            raise MemoryBudgetExceeded(
                f"injected memory spike at operation count {n}", **kwargs
            )
        if self.cancel_at is not None and n >= self.cancel_at:
            self.trips.append(("cancel", n))
            raise MiningCancelled(
                f"injected cancellation at operation count {n}", **kwargs
            )
        if self.corrupt_at is not None and n >= self.corrupt_at:
            self.trips.append(("corrupt", n))
            raise CorruptInputError(
                f"injected corrupt transaction at operation count {n}"
            )

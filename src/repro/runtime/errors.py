"""Structured exception hierarchy of the resource-governed runtime.

Every failure mode a mining call can hit has a typed exception here, so
callers (the CLI, the benchmark harness, a serving layer) can react per
cause instead of pattern-matching messages:

* :class:`CorruptInputError` — unreadable input data, carrying the
  source name and line number.  It subclasses :class:`ValueError` so
  code written against the previous bare-``ValueError`` behaviour keeps
  working.
* :class:`MiningInterrupted` — a run stopped by the
  :class:`~repro.runtime.guard.RunGuard` before finishing, specialised
  into :class:`MiningTimeout`, :class:`MemoryBudgetExceeded` and
  :class:`MiningCancelled`.  Interruptions carry partial-progress
  state: the operation-counter snapshot at the moment of the trip, the
  elapsed wall-clock time, and (when the interrupted driver could
  salvage one) an anytime :class:`~repro.result.MiningResult`.

This module is dependency-free on purpose: it is imported by the data
loaders as well as the miners, and must not pull the mining stack in.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

__all__ = [
    "MiningError",
    "CorruptInputError",
    "MiningInterrupted",
    "MiningTimeout",
    "MemoryBudgetExceeded",
    "MiningCancelled",
]


class MiningError(Exception):
    """Base class of every structured error raised by this package."""


class CorruptInputError(MiningError, ValueError):
    """Input data that cannot be read as a transaction database.

    ``source`` is the file name (or ``"<stream>"``) and ``line_number``
    the 1-based offending line, when known.
    """

    def __init__(
        self,
        message: str,
        source: Optional[str] = None,
        line_number: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.source = source
        self.line_number = line_number


class MiningInterrupted(MiningError):
    """A mining run stopped by the run guard before completion.

    Attributes
    ----------
    algorithm:
        Name of the driver that was interrupted (filled in by the
        driver on its way out; empty if the guard fired outside one).
    counters:
        Snapshot of the :class:`~repro.stats.OperationCounters` at the
        moment of the trip (a plain dict; empty if no counters were
        bound to the guard).
    elapsed:
        Wall-clock seconds since the guard started.
    checks:
        Number of ``guard.check()`` calls performed — the operation
        count fault injection keys on.
    partial:
        An anytime :class:`~repro.result.MiningResult` salvaged from
        the interrupted run, or ``None`` if the driver could not build
        one.  See ``docs/robustness.md`` for the per-algorithm
        semantics.
    processed:
        For cumulative miners, the number of transactions fully
        processed before the trip (``None`` elsewhere).
    injected:
        ``True`` when the trip came from a
        :class:`~repro.runtime.faults.FaultPlan` rather than a real
        budget violation.
    """

    def __init__(
        self,
        message: str,
        *,
        algorithm: str = "",
        counters: Optional[Dict[str, int]] = None,
        elapsed: Optional[float] = None,
        checks: int = 0,
        injected: bool = False,
    ) -> None:
        super().__init__(message)
        self.algorithm = algorithm
        self.counters = dict(counters) if counters else {}
        self.elapsed = elapsed
        self.checks = checks
        self.injected = injected
        self.partial: Optional[Any] = None
        self.processed: Optional[int] = None
        self.fallback_path: Optional[list] = None

    def attach_partial(
        self,
        build: Callable[[], Any],
        algorithm: str = "",
        processed: Optional[int] = None,
    ) -> "MiningInterrupted":
        """Record partial progress on the way out of a driver.

        ``build`` is a zero-argument callable producing the anytime
        result; it runs inside a ``try`` so a failure to salvage never
        masks the original interruption.
        """
        if algorithm:
            self.algorithm = algorithm
        self.processed = processed
        try:
            self.partial = build()
        except Exception:  # salvage is best-effort by definition
            self.partial = None
        return self


class MiningTimeout(MiningInterrupted):
    """The guard's deadline or wall-clock timeout fired."""


class MemoryBudgetExceeded(MiningInterrupted):
    """The guard's memory budget was exceeded.

    ``used_bytes`` and ``limit_bytes`` quantify the violation (both
    ``None`` for fault-injected trips).
    """

    def __init__(
        self,
        message: str,
        *,
        used_bytes: Optional[int] = None,
        limit_bytes: Optional[int] = None,
        **kwargs,
    ) -> None:
        super().__init__(message, **kwargs)
        self.used_bytes = used_bytes
        self.limit_bytes = limit_bytes


class MiningCancelled(MiningInterrupted):
    """The run's cancellation token was cancelled."""

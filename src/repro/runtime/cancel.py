"""Cooperative cancellation.

A :class:`CancellationToken` is shared between the party that wants to
stop a mining run (a request handler, a UI thread, a signal handler)
and the :class:`~repro.runtime.guard.RunGuard` polling it from inside
the mining loops.  Cancellation is cooperative: the miner notices the
token at its next guard check and unwinds with
:class:`~repro.runtime.errors.MiningCancelled`.

>>> token = CancellationToken()
>>> token.cancelled
False
>>> token.cancel("user pressed ^C")
>>> token.cancelled
True
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = ["CancellationToken"]


class CancellationToken:
    """Thread-safe one-shot cancellation flag with an optional reason."""

    __slots__ = ("_event", "_reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        """Request cancellation.  Idempotent; the first reason wins."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        """Has cancellation been requested?"""
        return self._event.is_set()

    @property
    def reason(self) -> Optional[str]:
        """The reason passed to :meth:`cancel`, if any."""
        return self._reason

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"CancellationToken({state})"

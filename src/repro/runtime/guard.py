"""The run guard: deadlines, memory budgets, cancellation, progress.

Every algorithm driver polls a :class:`RunGuard` at its recursion/loop
heads through :meth:`RunGuard.check`.  The check is *stride-sampled*:
only every ``stride``-th call performs the real (clock + memory +
cancellation + fault-plan) inspection, so the per-iteration cost in the
hot loops is one attribute decrement and a compare.  The very first
call always performs a real check, so an already-expired deadline or a
pre-cancelled token trips before any work is done.

Budgets
-------

* **Deadline / timeout** — ``timeout`` seconds of wall clock from guard
  creation, or an absolute ``deadline`` on :func:`time.monotonic`.
* **Memory** — ``memory_limit_mb`` of *additional* allocation since the
  guard started.  Two meters are available: ``"tracemalloc"``
  (default), which measures Python-level allocations exactly but slows
  allocation-heavy code while tracing, and ``"rss"``, which reads
  ``resource.getrusage`` peak RSS — near-free but coarse and
  monotonic.  The meter only engages when a limit is set.
* **Cancellation** — a :class:`~repro.runtime.cancel.CancellationToken`
  polled at every real check.
* **Fault plan** — a :class:`~repro.runtime.faults.FaultPlan` consulted
  first at every real check, so tests can force any trip at a chosen
  operation count.

``progress`` is an optional callback invoked at most every
``progress_interval`` seconds with a :class:`ProgressInfo` snapshot —
enough to drive a spinner, a log line, or an external watchdog.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, NamedTuple, Optional

from .cancel import CancellationToken
from .errors import MemoryBudgetExceeded, MiningCancelled, MiningTimeout

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

import tracemalloc

__all__ = ["RunGuard", "ProgressInfo", "checker"]


class ProgressInfo(NamedTuple):
    """Snapshot handed to the progress callback."""

    elapsed: float        # seconds since the guard started
    checks: int           # guard.check() calls so far
    counters: Dict[str, int]  # operation-counter snapshot (may be empty)


def _noop() -> None:
    return None


def checker(guard: Optional["RunGuard"], counters: Any = None) -> Callable[[], None]:
    """The guard's check callable, or a no-op when no guard is active.

    Drivers call this once in their preamble::

        check = checker(guard, counters)
        while stack:
            check()
            ...

    Binding ``counters`` lets the guard snapshot the driver's operation
    counts into any exception it raises.
    """
    if guard is None:
        return _noop
    if counters is not None and guard.counters is None:
        guard.counters = counters
    return guard.check


class RunGuard:
    """Deadline + memory budget + cancellation + progress, polled cheaply."""

    __slots__ = (
        "timeout",
        "memory_limit_mb",
        "cancel",
        "fault_plan",
        "progress",
        "progress_interval",
        "stride",
        "memory_meter",
        "counters",
        "probe",
        "checks",
        "real_checks",
        "_deadline",
        "_started",
        "_countdown",
        "_memory_limit_bytes",
        "_memory_baseline",
        "_owns_tracing",
        "_next_progress",
        "_finished",
    )

    def __init__(
        self,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        cancel: Optional[CancellationToken] = None,
        fault_plan: Optional[Any] = None,
        progress: Optional[Callable[[ProgressInfo], None]] = None,
        progress_interval: float = 1.0,
        stride: int = 64,
        memory_meter: str = "tracemalloc",
        probe: Optional[Any] = None,
    ) -> None:
        if timeout is not None and timeout < 0:
            raise ValueError(f"timeout must be non-negative, got {timeout}")
        if memory_limit_mb is not None and memory_limit_mb <= 0:
            raise ValueError(
                f"memory limit must be positive, got {memory_limit_mb}"
            )
        if stride < 1:
            raise ValueError(f"stride must be positive, got {stride}")
        if memory_meter not in ("tracemalloc", "rss"):
            raise ValueError(f"unknown memory meter {memory_meter!r}")
        if memory_meter == "rss" and _resource is None:
            raise ValueError("memory meter 'rss' needs the resource module")
        self.timeout = timeout
        self.memory_limit_mb = memory_limit_mb
        self.cancel = cancel
        self.fault_plan = fault_plan
        self.progress = progress
        self.progress_interval = progress_interval
        self.stride = stride
        self.memory_meter = memory_meter
        #: Operation counters bound by the running driver (see
        #: :func:`checker`); snapshotted into raised exceptions.
        self.counters: Any = None
        #: Optional observability probe (duck-typed to avoid importing
        #: :mod:`repro.obs` here): every *real* check feeds it one
        #: ``sample_guard(elapsed, remaining, memory_used)`` sample —
        #: deadline headroom and memory high water, the two quantities a
        #: post-mortem of a budget trip needs.  ``None`` (or an inactive
        #: probe) costs nothing.
        self.probe = probe if probe is not None and getattr(probe, "active", False) else None
        self.checks = 0
        self.real_checks = 0
        self._started = time.monotonic()
        if deadline is not None:
            self._deadline = deadline
        elif timeout is not None:
            self._deadline = self._started + timeout
        else:
            self._deadline = None
        self._countdown = 1  # first check() is always a real check
        self._owns_tracing = False
        self._finished = False
        self._memory_limit_bytes = (
            int(memory_limit_mb * 1024 * 1024) if memory_limit_mb is not None else None
        )
        self._memory_baseline = 0
        if self._memory_limit_bytes is not None:
            if memory_meter == "tracemalloc":
                if not tracemalloc.is_tracing():
                    tracemalloc.start()
                    self._owns_tracing = True
                self._memory_baseline = tracemalloc.get_traced_memory()[0]
            else:
                self._memory_baseline = self._rss_bytes()
        self._next_progress = (
            self._started + progress_interval if progress is not None else None
        )

    # ------------------------------------------------------------------

    def check(self) -> None:
        """Poll the guard; raises a typed interruption when a budget trips.

        Cheap by design: all but every ``stride``-th call return after a
        decrement.  Call at every loop/recursion head.
        """
        self.checks += 1
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.stride
        self._real_check()

    def elapsed(self) -> float:
        """Wall-clock seconds since the guard started."""
        return time.monotonic() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline, ``None`` if unbounded."""
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()

    def memory_used(self) -> Optional[int]:
        """Bytes allocated since the guard started (``None`` if unmetered)."""
        if self._memory_limit_bytes is None:
            return None
        if self.memory_meter == "tracemalloc":
            if not tracemalloc.is_tracing():
                return 0
            return tracemalloc.get_traced_memory()[0] - self._memory_baseline
        return self._rss_bytes() - self._memory_baseline

    def respawn(self) -> "RunGuard":
        """A fresh guard with the same configuration and a new deadline.

        The fallback machinery gives every attempt in the chain its own
        budget; the cancellation token and fault plan are *shared* (a
        cancelled token cancels every attempt, and a fault plan's trip
        accounting spans the whole chain).
        """
        self.finish()
        return RunGuard(
            timeout=self.timeout,
            memory_limit_mb=self.memory_limit_mb,
            cancel=self.cancel,
            fault_plan=self.fault_plan,
            progress=self.progress,
            progress_interval=self.progress_interval,
            stride=self.stride,
            memory_meter=self.memory_meter,
            probe=self.probe,
        )

    def finish(self) -> None:
        """Release guard resources (stops tracemalloc if this guard started it).

        Idempotent: safe to call from a ``finally`` block *and* from
        :meth:`__exit__` on the same guard.
        """
        if self._finished:
            return
        self._finished = True
        if self._owns_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()

    # Context-manager protocol: ``with RunGuard(...) as guard`` releases
    # the memory meter even when an exception escapes between start and
    # close — the leak the process-isolation bench path used to hit when
    # tracemalloc stayed enabled after a failed run.
    def __enter__(self) -> "RunGuard":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    # ------------------------------------------------------------------

    def _rss_bytes(self) -> int:
        # ru_maxrss is KiB on Linux, bytes on macOS; normalise to bytes.
        peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        import sys

        return peak if sys.platform == "darwin" else peak * 1024

    def _snapshot(self) -> Dict[str, int]:
        counters = self.counters
        if counters is None:
            return {}
        try:
            return counters.as_dict()
        except Exception:
            return {}

    def _interrupt_kwargs(self) -> Dict[str, Any]:
        return {
            "counters": self._snapshot(),
            "elapsed": self.elapsed(),
            "checks": self.checks,
        }

    def _real_check(self) -> None:
        self.real_checks += 1
        if self.fault_plan is not None:
            self.fault_plan.fire(self)
        if self.cancel is not None and self.cancel.cancelled:
            reason = self.cancel.reason
            message = "mining cancelled" + (f": {reason}" if reason else "")
            raise MiningCancelled(message, **self._interrupt_kwargs())
        now = time.monotonic()
        if self.probe is not None:
            self.probe.sample_guard(
                now - self._started,
                None if self._deadline is None else self._deadline - now,
                self.memory_used(),
            )
        if self._deadline is not None and now >= self._deadline:
            if self.timeout is not None:
                message = (
                    f"mining exceeded the {self.timeout}s timeout "
                    f"after {now - self._started:.3f}s"
                )
            else:
                message = f"mining exceeded its deadline after {now - self._started:.3f}s"
            raise MiningTimeout(message, **self._interrupt_kwargs())
        if self._memory_limit_bytes is not None:
            used = self.memory_used()
            if used is not None and used > self._memory_limit_bytes:
                raise MemoryBudgetExceeded(
                    f"mining exceeded the {self.memory_limit_mb} MB memory "
                    f"budget ({used / (1024 * 1024):.1f} MB allocated)",
                    used_bytes=used,
                    limit_bytes=self._memory_limit_bytes,
                    **self._interrupt_kwargs(),
                )
        if self._next_progress is not None and now >= self._next_progress:
            self._next_progress = now + self.progress_interval
            self.progress(
                ProgressInfo(now - self._started, self.checks, self._snapshot())
            )

    def __repr__(self) -> str:
        parts = []
        if self.timeout is not None:
            parts.append(f"timeout={self.timeout}")
        if self.memory_limit_mb is not None:
            parts.append(f"memory_limit_mb={self.memory_limit_mb}")
        if self.cancel is not None:
            parts.append(f"cancel={self.cancel!r}")
        if self.fault_plan is not None:
            parts.append("fault_plan=...")
        parts.append(f"checks={self.checks}")
        return f"RunGuard({', '.join(parts)})"

"""Resource-governed mining runtime.

Everything a caller needs to bound, cancel, observe and gracefully
degrade a mining run:

* :class:`RunGuard` — deadline, memory budget, cancellation and
  progress polling, stride-sampled for near-zero hot-loop cost;
* the structured exception hierarchy (:class:`MiningTimeout`,
  :class:`MemoryBudgetExceeded`, :class:`MiningCancelled`,
  :class:`CorruptInputError`), each interruption carrying the
  operation-counter snapshot and any salvaged anytime result;
* :class:`CancellationToken` — cooperative cancellation from another
  thread or handler;
* :class:`FallbackPolicy` — degrade along an algorithm chain when a
  budget trips (driven by :func:`repro.mining.mine`);
* :class:`FaultPlan` — deterministic fault injection for tests;
* :class:`AdmissionController` / :func:`request_guard` — bounded
  concurrency accounting and the per-request guard adapter used by the
  ``repro serve`` daemon.

See ``docs/robustness.md`` for the full story.  This package is
deliberately free of imports from the rest of ``repro`` so that the
data loaders can use its exceptions without cycles.
"""

from .admission import AdmissionController, Saturated, request_guard
from .cancel import CancellationToken
from .errors import (
    CorruptInputError,
    MemoryBudgetExceeded,
    MiningCancelled,
    MiningError,
    MiningInterrupted,
    MiningTimeout,
)
from .fallback import DEFAULT_CHAIN, FallbackPolicy
from .faults import FaultPlan, InjectedCrash
from .guard import ProgressInfo, RunGuard, checker

__all__ = [
    "RunGuard",
    "ProgressInfo",
    "checker",
    "AdmissionController",
    "Saturated",
    "request_guard",
    "CancellationToken",
    "FallbackPolicy",
    "DEFAULT_CHAIN",
    "FaultPlan",
    "InjectedCrash",
    "MiningError",
    "MiningInterrupted",
    "MiningTimeout",
    "MemoryBudgetExceeded",
    "MiningCancelled",
    "CorruptInputError",
]

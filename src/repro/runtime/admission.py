"""Admission control: bounded concurrency and per-request guard budgets.

The long-lived query daemon (:mod:`repro.serving.server`) must protect
one resident repository from unbounded concurrent demand.  Two small,
framework-free primitives do that here — they know nothing about HTTP
or asyncio, so they are unit-testable and reusable by any future entry
point (a gRPC front end, a thread-pooled CLI batch mode):

* :class:`AdmissionController` — a thread-safe token counter with the
  classic shape *N running + M waiting, reject beyond that*.  It does
  not block; the caller owns the actual wait primitive (the server
  pairs it with an :class:`asyncio.Semaphore`).  :meth:`admit` raises
  :class:`Saturated` — carrying the ``Retry-After`` hint — the moment
  the bounded queue is full, which is what turns overload into fast
  429/503 responses instead of a latency collapse.
* :func:`request_guard` — the guard-per-request adapter: wraps one
  query in a fresh :class:`~repro.runtime.RunGuard` (wall-clock /
  memory budget, ``stride=1`` so every poll is a real check), installs
  it as the miner's cooperative check hook for the duration, and
  always restores the previous hook.  The guard's first check runs
  *before* the query, so an already-exhausted budget trips with the
  store untouched — the admission-control property the server tests
  pin.

Like the rest of :mod:`repro.runtime`, this module imports nothing from
the rest of ``repro``; the miner is duck-typed (``_check`` hook,
optional ``counters``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Optional

from .guard import RunGuard, checker

__all__ = ["Saturated", "AdmissionController", "request_guard"]


class Saturated(RuntimeError):
    """Raised by :meth:`AdmissionController.admit` when the queue is full.

    ``retry_after`` is the server's backoff hint in seconds (the HTTP
    ``Retry-After`` header value).
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionController:
    """Bounded *running + waiting* request accounting (non-blocking).

    ``max_inflight`` requests may run concurrently and ``max_queue``
    more may wait for a slot; an :meth:`admit` beyond that raises
    :class:`Saturated` immediately.  The controller only counts — the
    caller provides the wait primitive — so it composes with threads
    and event loops alike.  All methods are thread-safe.

    Lifecycle per request::

        controller.admit()        # may raise Saturated -> 429
        try:
            ...wait for a slot... # caller's semaphore
            controller.start()    # waiting -> running
            ...serve...
        finally:
            controller.release()  # admit()'s token, wherever it got to
    """

    __slots__ = (
        "max_inflight",
        "max_queue",
        "retry_after",
        "_lock",
        "_inflight",
        "_waiting",
        "_admitted",
        "_rejected",
    )

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 16,
        retry_after: float = 1.0,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be at least 1, got {max_inflight}"
            )
        if max_queue < 0:
            raise ValueError(f"max_queue must be non-negative, got {max_queue}")
        if retry_after <= 0:
            raise ValueError(f"retry_after must be positive, got {retry_after}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._inflight = 0
        self._waiting = 0
        self._admitted = 0
        self._rejected = 0

    def admit(self) -> None:
        """Claim a slot in the bounded queue or raise :class:`Saturated`."""
        with self._lock:
            if self._inflight + self._waiting >= self.max_inflight + self.max_queue:
                self._rejected += 1
                raise Saturated(
                    f"saturated: {self._inflight} running and "
                    f"{self._waiting} waiting (limits: {self.max_inflight} "
                    f"inflight + {self.max_queue} queued); retry in "
                    f"{self.retry_after:g}s",
                    self.retry_after,
                )
            self._waiting += 1
            self._admitted += 1

    def start(self) -> None:
        """Move one admitted request from *waiting* to *running*."""
        with self._lock:
            if self._waiting < 1:
                raise RuntimeError("start() without a matching admit()")
            self._waiting -= 1
            self._inflight += 1

    def release(self) -> None:
        """Return the token claimed by :meth:`admit`, from either state."""
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1
            elif self._waiting > 0:
                # The caller bailed (e.g. a cancelled wait) before start().
                self._waiting -= 1
            else:
                raise RuntimeError("release() without a matching admit()")

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time counts for ``/healthz`` and tests."""
        with self._lock:
            return {
                "inflight": self._inflight,
                "waiting": self._waiting,
                "admitted": self._admitted,
                "rejected": self._rejected,
            }

    def __repr__(self) -> str:
        state = self.snapshot()
        return (
            f"AdmissionController(inflight={state['inflight']}/"
            f"{self.max_inflight}, waiting={state['waiting']}/"
            f"{self.max_queue})"
        )


@contextmanager
def request_guard(
    miner=None,
    timeout: Optional[float] = None,
    memory_limit_mb: Optional[float] = None,
    probe=None,
):
    """Run one request under a fresh :class:`RunGuard` budget.

    Yields the guard (or ``None`` when no budget is configured — the
    adapter then costs nothing).  While the context is active the guard
    is installed as ``miner._check``, the cooperative hook every query
    verb and ingest loop polls, and the previous hook is restored on
    the way out no matter how the request ends.  The first check fires
    *before* the body runs, so a zero/expired budget trips with the
    repository untouched.

    The caller must serialise requests against one miner (the server
    holds a per-snapshot lock): the hook is per-miner state, not
    per-thread.
    """
    if timeout is None and memory_limit_mb is None:
        yield None
        return
    guard = RunGuard(
        timeout=timeout,
        memory_limit_mb=memory_limit_mb,
        stride=1,
        probe=probe,
    )
    previous = None
    if miner is not None:
        previous = miner._check
        miner._check = checker(guard, getattr(miner, "counters", None))
    try:
        guard.check()
        yield guard
    finally:
        if miner is not None:
            miner._check = previous
        guard.finish()

"""repro — closed frequent item set mining by intersecting transactions.

A complete reproduction of C. Borgelt, X. Yang, R. Nogales-Cadenas,
P. Carmona-Saez, A. Pascual-Montano: "Finding Closed Frequent Item Sets
by Intersecting Transactions", EDBT 2011.

Quick start::

    from repro import TransactionDatabase, mine

    db = TransactionDatabase.from_iterable([
        ["a", "b", "c"], ["a", "d", "e"], ["b", "c", "d"],
    ])
    result = mine(db, smin=2, algorithm="ista")
    for items, support in result.labeled():
        print(items, support)

The flagship algorithms are ``"ista"`` (the paper's cumulative prefix
tree scheme), ``"carpenter-lists"`` and ``"carpenter-table"``; the
enumeration baselines ``"fpgrowth"``, ``"lcm"``, ``"eclat"`` and
``"apriori"`` are included for comparison, exactly as in the paper's
evaluation.  See :mod:`repro.datasets` for the gene-expression-style
workload generators and :mod:`repro.bench` for the figure harness.
"""

from .analysis import profile_database, profile_family
from .closure.lattice import ConceptLattice
from .core.incremental import IncrementalMiner
from .data.arff import read_arff, write_arff
from .data.database import TransactionDatabase
from .data.io import parse_fimi, read_fimi, write_fimi
from .kernels import available_backends, get_backend, resolve_backend
from .mining import (
    ALGORITHMS,
    ENUMERATION_ALGORITHMS,
    INTERSECTION_ALGORITHMS,
    choose_algorithm,
    mine,
)
from .obs import MetricsRegistry, Probe, Tracer
from .parallel import mine_parallel
from .result import MiningResult
from .rules import AssociationRule, generate_rules, support_of
from .serving import (
    RecoveryReport,
    SnapshotError,
    StreamingMiner,
    WalError,
    WriteAheadLog,
    build_miner_parallel,
    dumps_snapshot,
    load_snapshot,
    loads_snapshot,
    merge_miners,
    save_snapshot,
)
from .runtime import (
    CancellationToken,
    CorruptInputError,
    FallbackPolicy,
    FaultPlan,
    MemoryBudgetExceeded,
    MiningCancelled,
    MiningError,
    MiningInterrupted,
    MiningTimeout,
    ProgressInfo,
    RunGuard,
)
from .stats import OperationCounters

__version__ = "1.0.0"

__all__ = [
    "TransactionDatabase",
    "MiningResult",
    "OperationCounters",
    "Probe",
    "MetricsRegistry",
    "Tracer",
    "IncrementalMiner",
    "SnapshotError",
    "dumps_snapshot",
    "loads_snapshot",
    "save_snapshot",
    "load_snapshot",
    "merge_miners",
    "build_miner_parallel",
    "StreamingMiner",
    "RecoveryReport",
    "WriteAheadLog",
    "WalError",
    "mine",
    "mine_parallel",
    "choose_algorithm",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "ALGORITHMS",
    "INTERSECTION_ALGORITHMS",
    "ENUMERATION_ALGORITHMS",
    "AssociationRule",
    "generate_rules",
    "support_of",
    "ConceptLattice",
    "RunGuard",
    "ProgressInfo",
    "CancellationToken",
    "FallbackPolicy",
    "FaultPlan",
    "MiningError",
    "MiningInterrupted",
    "MiningTimeout",
    "MemoryBudgetExceeded",
    "MiningCancelled",
    "CorruptInputError",
    "profile_database",
    "profile_family",
    "parse_fimi",
    "read_fimi",
    "write_fimi",
    "read_arff",
    "write_arff",
    "__version__",
]

"""Operation counters shared by all miners.

Wall-clock comparisons between pure-Python re-implementations and the
paper's C programs are dominated by the interpreter's constant factor.
The counters in this class measure the *algorithmic* work instead —
intersections formed, repository nodes visited and created, containment
checks performed — which is what actually separates the methods in the
paper's figures.  Every miner accepts an optional
:class:`OperationCounters` and increments the relevant fields, and the
benchmark harness reports them next to the timings.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["OperationCounters"]

_FIELDS = (
    "intersections",       # item set (or tid set) intersections formed
    "node_visits",         # repository / FP-tree / search-tree nodes visited
    "nodes_created",       # repository / tree nodes allocated
    "nodes_merged",        # repository nodes folded into an existing node
    "nodes_pruned",        # repository nodes spliced out by the bound
    "support_updates",     # support counter updates
    "containment_checks",  # subset / repository-membership tests
    "recursion_calls",     # search-tree recursion steps
    "items_eliminated",    # items removed by the remaining-count bound
    "reports",             # item sets reported
    "repository_peak",     # largest repository size observed (gauge, not sum)
)


class OperationCounters:
    """Mutable bundle of named operation counts."""

    __slots__ = _FIELDS

    def __init__(self) -> None:
        for field in _FIELDS:
            setattr(self, field, 0)

    def observe_repository_size(self, current_size: int) -> None:
        """Track the peak repository size (a gauge, kept as the maximum)."""
        if current_size > self.repository_peak:
            self.repository_peak = current_size

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return {field: getattr(self, field) for field in _FIELDS}

    def __iadd__(self, other: "OperationCounters") -> "OperationCounters":
        for field in _FIELDS:
            if field == "repository_peak":
                self.observe_repository_size(other.repository_peak)
            else:
                setattr(self, field, getattr(self, field) + getattr(other, field))
        return self

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{field}={getattr(self, field)}"
            for field in _FIELDS
            if getattr(self, field)
        )
        return f"OperationCounters({parts})"

"""``python -m repro`` — alias for the ``repro-mine`` command line."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())

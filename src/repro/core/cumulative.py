"""Flat cumulative intersection — the scheme of Mielikäinen [14].

This is the baseline the IsTa prefix tree is measured against in the
paper ("the execution times are vastly larger than those of our
implementation (often exceeding a factor of 100) ... due to the fact
that this implementation does not employ a prefix tree, but a simple
flat structure").

The repository is a plain hash map ``item set -> support``.  Processing
a transaction ``t`` realises the recursive relation (1) directly:

    ``C(T ∪ {t}) = C(T) ∪ {t} ∪ { s ∩ t : s ∈ C(T) }``

with the support of each new intersection obtained as
``1 + max`` over the supports of the repository sets producing it
(the flat analogue of the prefix tree's step-flagged maximum rule).

The optional item elimination mirrors IsTa's: items whose remaining
occurrences cannot lift any current set to the threshold are removed
from repository sets (re-keying the map) and masked from future
transactions.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..closure.verify import refine_anytime
from ..common import finalize, prepare_for_mining
from ..data.database import TransactionDatabase
from ..kernels import resolve_backend
from ..obs import resolve_probe
from ..result import MiningResult
from ..runtime import MiningInterrupted, RunGuard, checker
from ..stats import OperationCounters

__all__ = ["mine_cumulative"]


def mine_cumulative(
    db: TransactionDatabase,
    smin: int,
    item_order: str = "frequency-ascending",
    transaction_order: str = "size-ascending",
    prune: bool = False,
    prune_interval: int = 16,
    counters: Optional[OperationCounters] = None,
    guard: Optional[RunGuard] = None,
    backend=None,
    probe=None,
) -> MiningResult:
    """Mine closed frequent item sets with the flat cumulative scheme.

    Pruning is off by default: the point of this miner is to reproduce
    the unimproved [14] baseline.  Turning ``prune`` on gives the
    "flat structure + item elimination" middle ground for ablations.

    ``guard`` is polled per transaction and inside the repository scan
    (the loop that explodes on unfavourable inputs); on interruption
    the repository is salvaged through
    :func:`repro.closure.verify.refine_anytime` and attached to the
    exception as an anytime result.  ``backend`` selects the
    set-algebra kernel (:mod:`repro.kernels`); a vectorised backend
    keeps the repository *resident* as a packed table — packed once,
    lazily, then grown in place with
    :meth:`~repro.kernels.base.KernelBackend.append_rows` as new
    intersections arrive (dict insertion order keeps the table rows
    aligned with ``repository.values()``), so each transaction's scan
    is one table-wide AND with no per-transaction repacking.  Pruning
    re-keys the map, so it simply drops the table; the next scan
    repacks.
    """
    obs = resolve_probe(probe)
    kernel = obs.wrap_kernel(resolve_backend(backend))
    with obs.phase("recode", algorithm="cumulative-flat"):
        prepared, code_map = prepare_for_mining(
            db, smin, item_order=item_order, transaction_order=transaction_order
        )
    counters = obs.ensure_counters(counters)
    check = checker(guard, counters)
    # Per-row poll for the vectorised scan/apply loops below: the
    # bitint branch polls once per stored set, and the interruption
    # contract (docs/robustness.md) keeps that granularity backend-
    # independent — but only a *guarded* run pays the per-row call;
    # unguarded runs skip on a plain None test.
    row_check = check if guard is not None else None
    transactions = prepared.transactions
    n_items = prepared.n_items
    batched = kernel.vectorized

    remaining = [0] * n_items
    if prune:
        remaining = kernel.column_counts(transactions, n_items)
        if prune_interval < 1:
            raise ValueError(f"prune_interval must be positive, got {prune_interval}")

    repository: Dict[int, int] = {}
    # Resident packed mirror of the repository keys (batched path only);
    # ``None`` means "rebuild lazily on the next scan".
    repo_table = None
    processed = 0
    try:
        with obs.phase(
            "mine", algorithm="cumulative-flat", transactions=len(transactions)
        ):
            for index, transaction in enumerate(transactions):
                check()
                if not transaction:
                    processed += 1
                    continue
                # Support of every intersection: 1 (for t itself) + the
                # largest support among the repository sets producing it.
                updates: Dict[int, int] = {transaction: 0}
                if batched and repository:
                    check()
                    counters.intersections += len(repository)
                    if repo_table is None:
                        repo_table = kernel.pack(list(repository), n_items)
                    intersections = kernel.intersect_rows(repo_table, transaction)
                    for intersection, support in zip(
                        intersections, repository.values()
                    ):
                        # The repository can grow exponentially on
                        # unfavourable inputs; one transaction's scan
                        # may then outlast the whole budget, so a
                        # guarded run polls per row here too.
                        if row_check is not None:
                            row_check()
                        if intersection:
                            best = updates.get(intersection)
                            if best is None or support > best:
                                updates[intersection] = support
                elif not batched:
                    for stored, support in repository.items():
                        check()
                        counters.intersections += 1
                        intersection = stored & transaction
                        if intersection:
                            best = updates.get(intersection)
                            if best is None or support > best:
                                updates[intersection] = support
                if batched:
                    new_keys = []
                    for intersection, support in updates.items():
                        if row_check is not None:
                            row_check()
                        if intersection not in repository:
                            new_keys.append(intersection)
                        repository[intersection] = support + 1
                        counters.support_updates += 1
                    if repo_table is not None and new_keys:
                        kernel.append_rows(repo_table, new_keys)
                else:
                    for intersection, support in updates.items():
                        repository[intersection] = support + 1
                        counters.support_updates += 1
                counters.observe_repository_size(len(repository))
                processed += 1

                if prune:
                    mask = transaction
                    while mask:
                        low = mask & -mask
                        remaining[low.bit_length() - 1] -= 1
                        mask ^= low
                    if (index + 1) % prune_interval == 0 and index + 1 < len(
                        transactions
                    ):
                        _prune_repository(repository, remaining, smin, counters)
                        # Pruning re-keys the map; the packed mirror is
                        # stale.  Rebuild lazily on the next scan.
                        repo_table = None
    except MiningInterrupted as exc:
        exc.attach_partial(
            lambda: refine_anytime(
                db,
                finalize(
                    ((m, s) for m, s in repository.items() if s >= smin),
                    code_map,
                    db,
                    "cumulative-flat",
                    smin,
                ),
                smin,
            ),
            algorithm="cumulative-flat",
            processed=processed,
        )
        obs.record_counters(counters)
        raise

    def _report():
        for mask, supp in repository.items():
            if supp >= smin:
                counters.reports += 1
                yield mask, supp

    with obs.phase("report", algorithm="cumulative-flat"):
        result = finalize(_report(), code_map, db, "cumulative-flat", smin)
    obs.record_counters(counters)
    return result


def _prune_repository(
    repository: Dict[int, int],
    remaining: list,
    smin: int,
    counters: OperationCounters,
) -> None:
    """Remove deficient items from repository sets (the paper's rule).

    For a set with support ``x``, every member item ``i`` with
    ``x + remaining[i] < smin`` is removed; sets collapsing onto an
    existing key keep the larger support (the same witness argument as
    for the prefix tree splice).
    """
    rebuilt: Dict[int, int] = {}
    for stored, support in repository.items():
        drop = 0
        mask = stored
        while mask:
            low = mask & -mask
            item = low.bit_length() - 1
            if support + remaining[item] < smin:
                drop |= low
            mask ^= low
        if drop:
            counters.items_eliminated += 1
            stored &= ~drop
        if not stored:
            counters.nodes_pruned += 1
            continue
        existing = rebuilt.get(stored)
        if existing is None:
            rebuilt[stored] = support
        else:
            counters.nodes_merged += 1
            if support > existing:
                rebuilt[stored] = support
    repository.clear()
    repository.update(rebuilt)

"""Incremental (online) closed item set mining and the warm query path.

The cumulative scheme has a property none of the enumeration miners
share: it processes the database *one transaction at a time* and its
repository is, after every step, exactly the closed-set family of the
transactions seen so far (recursive relation (1) of the paper).  This
module exposes that as an online API: feed transactions as they arrive,
query the closed frequent sets whenever you like.

Because future transactions are unknown, the support-based item
elimination of the batch miner cannot be applied — the repository holds
the *full* closed family (minimum support 1), which is the inherent
price of exact online answers.  For bounded-memory approximations the
batch miner with pruning is the right tool.

The miner is also the engine behind :mod:`repro.serving`.  Three design
points serve that role:

* **Dual repository representations.**  The closed family lives either
  as the IsTa prefix tree (the paper's structure: cheap per-transaction
  updates, guided descents for point queries) or as a flat
  ``mask -> support`` dictionary (Mielikäinen's cumulative form: cheap
  to decode from a snapshot, cheap for small delta batches).  Either is
  materialised on demand from the other — the tree's node set is
  exactly the union of the closed sets' paths, so the two forms are
  interconvertible without information loss — and a snapshot loads as a
  third, *pending* form that is decoded only when first touched.
* **Memoised queries.**  Every query result is cached under a
  generation counter; any mutation bumps the generation and drops the
  cache, so repeated queries against an unchanged repository are
  dictionary lookups.  Query results are therefore returned as
  read-only mappings.
* **Batched ingest.**  :meth:`extend` applies the paper's Section 3.4
  heuristics per batch — duplicate transactions collapse into one
  weighted update, and the batch is processed in size-ascending,
  lexicographically tie-broken order.  The final repository is
  identical (the closed family of a multiset does not depend on
  processing order); only the work to build it shrinks.  Guard polls
  are amortised to one per transaction, which also makes each
  transaction atomic: an interrupted batch leaves the repository equal
  to a fully-processed prefix of the (reordered) batch.

>>> miner = IncrementalMiner()
>>> miner.add(["a", "b"])
>>> miner.add(["a", "b", "c"])
>>> miner.add(["b", "c"])
>>> sorted(miner.closed_sets(smin=2).items())
[(('a', 'b'), 2), (('b',), 3), (('b', 'c'), 2)]
"""

from __future__ import annotations

from itertools import islice
from types import MappingProxyType
from typing import (
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..data import itemset
from ..kernels import resolve_backend
from ..obs import SIZE_BUCKETS, resolve_probe
from ..runtime import RunGuard, checker
from ..stats import OperationCounters
from .prefix_tree import PrefixTree

__all__ = ["IncrementalMiner"]

#: Below this repository size the flat-vs-tree routing question is moot;
#: batches into a tiny repository take the tree path unconditionally.
_FLAT_DELTA_MAX = 16

#: Shared empty read-only mapping (returned for unknown-label queries).
_EMPTY_MAPPING: Mapping = MappingProxyType({})


class IncrementalMiner:
    """Online closed frequent item set miner over arbitrary item labels.

    Parameters
    ----------
    counters:
        Optional :class:`~repro.stats.OperationCounters` to accumulate
        the cost model into.
    guard:
        Optional :class:`~repro.runtime.RunGuard`.  The guard is polled
        once per ingested transaction (amortised, never mid-update), so
        a deadline or cancellation leaves the repository equal to the
        fully-processed prefix of the stream.
    backend:
        Kernel backend name or instance (``None`` = default); all
        batched set algebra of the flat representation and the queries
        is routed through it.
    probe:
        Optional :class:`repro.obs.Probe`; phases, memo hit/miss and
        ingest counters land in its registry, and the kernel backend is
        wrapped with the per-primitive counting proxy.
    """

    def __init__(
        self,
        counters: Optional[OperationCounters] = None,
        guard: Optional[RunGuard] = None,
        backend=None,
        probe=None,
    ) -> None:
        self.counters = counters if counters is not None else OperationCounters()
        self._obs = resolve_probe(probe)
        self._kernel = self._obs.wrap_kernel(resolve_backend(backend))
        self._check = checker(guard, self.counters)
        # Repository representations; at least one is always present.
        self._tree: Optional[PrefixTree] = PrefixTree(
            self.counters, kernel=self._kernel
        )
        self._flat: Optional[Dict[int, int]] = None
        self._pending = None  # lazy snapshot records (repro.serving)
        self._label_to_code: Dict[Hashable, int] = {}
        self._labels: List[Hashable] = []
        self._n_transactions = 0
        self._generation = 0
        self._memo: Dict[tuple, object] = {}
        self._ranks: Optional[List[int]] = None
        # Resident packed mirror of the flat family's keys.  Flat keys
        # are append-only under the fold path, so across generations the
        # table is *grown* (kernel.append_rows over the key tail) rather
        # than repacked; it is dropped whenever the flat form itself is
        # rebuilt (tree/pending materialisation changes key order).
        self._packed_table = None
        self._packed_len = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_transactions(self) -> int:
        """Number of transactions processed so far."""
        return self._n_transactions

    @property
    def n_items(self) -> int:
        """Number of distinct items seen so far."""
        return len(self._labels)

    @property
    def generation(self) -> int:
        """Mutation counter; memoised query results are valid per value."""
        return self._generation

    @property
    def item_labels(self) -> Tuple[Hashable, ...]:
        """Item labels in code order (index = item code)."""
        return tuple(self._labels)

    @property
    def kernel(self):
        """The resolved kernel backend executing the set algebra."""
        return self._kernel

    @property
    def repository_size(self) -> int:
        """Size of the current repository representation (memory gauge).

        Prefix tree nodes when the tree is materialised; otherwise the
        closed family size (flat or pending snapshot form).
        """
        if self._tree is not None:
            return self._tree.n_nodes
        if self._flat is not None:
            return len(self._flat)
        return self._pending.n_sets

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def add(self, transaction: Iterable[Hashable]) -> None:
        """Process one transaction; new items extend the item base."""
        mask = self._encode_transaction(transaction)
        self._apply_groups([(mask, 1)], 1)

    def extend(self, transactions: Iterable[Iterable[Hashable]]) -> None:
        """Process a batch of transactions (Section 3.4 heuristics).

        Duplicate transactions within the batch collapse into single
        weighted repository updates, and the distinct transactions are
        processed in size-ascending order with the paper's
        lexicographic (descending-item) tie-break.  The resulting
        repository is identical to one-by-one :meth:`add` calls — the
        closed family of a multiset is order-independent — but the
        update work is not: small sets first keeps intermediate trees
        small, and duplicates cost one update instead of many.
        """
        masks = [self._encode_transaction(t) for t in transactions]
        if not masks:
            return
        groups: Dict[int, int] = {}
        for mask in masks:
            groups[mask] = groups.get(mask, 0) + 1
        keys = list(groups)
        sizes = self._kernel.popcount_many(keys)
        order = sorted(range(len(keys)), key=lambda i: (sizes[i], keys[i]))
        self._obs.count("serving.ingest.batches")
        self._obs.count("serving.ingest.deduplicated", len(masks) - len(keys))
        self._apply_groups(
            [(keys[i], groups[keys[i]]) for i in order], len(masks)
        )

    def _encode_transaction(self, transaction: Iterable[Hashable]) -> int:
        mask = 0
        codes = self._label_to_code
        labels = self._labels
        for label in transaction:
            code = codes.get(label)
            if code is None:
                code = len(labels)
                codes[label] = code
                labels.append(label)
            mask |= 1 << code
        return mask

    def _apply_groups(self, groups: Sequence[Tuple[int, int]], n_rows: int) -> None:
        """Fold weighted transaction groups into the live representation.

        Routing: a materialised tree keeps the paper's per-transaction
        tree update.  When only the flat (or pending snapshot) form is
        live — the warm path after a snapshot load — small delta
        batches are folded into the flat dictionary directly, which
        skips the tree rebuild entirely; a batch that dwarfs the
        history (more new transactions than processed ones) rebuilds
        the tree first, since the tree update scales with the affected
        subtrees rather than the whole family.
        """
        self._obs.count("serving.ingest.transactions", n_rows)
        tree_path = self._tree is not None
        if not tree_path:
            n_new = sum(weight for _, weight in groups)
            if n_new > max(_FLAT_DELTA_MAX, self._n_transactions):
                self._ensure_tree()
                tree_path = True
        try:
            if tree_path:
                self._flat = None
                # The packed mirror follows the flat form's lifetime.
                self._packed_table = None
                self._packed_len = 0
                tree = self._tree
                for mask, weight in groups:
                    self._check()
                    tree.add_transaction(mask, weight)
                    self._n_transactions += weight
            else:
                self._fold_into_flat(self._ensure_flat(), groups)
        finally:
            # Invalidate memoised queries even when a guard trip unwinds
            # mid-batch; the fully-processed transactions are kept.
            self._generation += 1
            self._memo.clear()

    def _fold_into_flat(
        self, flat: Dict[int, int], groups: Sequence[Tuple[int, int]]
    ) -> None:
        """Weighted cumulative updates of the flat repository.

        ``C(T ∪ {t}) = C(T) ∪ {t} ∪ {s ∩ t}`` with the new support of a
        generated set being the maximum support over its generators
        plus the weight — the dictionary form of the Figure 2 rule.
        (For a set already in the family this reduces to ``+= weight``:
        the set generates itself, and support is antitone under
        inclusion, so no other generator beats it.)

        The max-over-generators is taken at C speed: the pre-batch
        family is sorted ascending by support *once*, so folding
        ``zip(joints, supports)`` into a dict keeps, per distinct
        joint, the last — i.e. maximum-support — generator.  Supports
        of sets touched earlier in the batch are stale in that static
        snapshot (stale ≤ current, supports only grow); a small overlay
        dict of current values for the touched sets restores exactness
        with one pass over the overlay per transaction.

        For multi-transaction batches the static family is first
        *projected* onto the union of the batch's items: every joint of
        every transaction is a subset of that union, and two stored
        sets with equal projections generate identical joints for the
        whole batch, so they collapse into one row carrying their
        support maximum.  On overlapping transactions (the serving
        workload) this shrinks the per-transaction scan well below the
        family size, at the cost of one extra batched intersection
        pass.
        """
        kernel = self._kernel
        counters = self.counters
        n_bits = len(self._labels)
        keys = list(flat.keys())
        supps = list(flat.values())
        # Index sort on the small supports, then gather: much cheaper
        # than comparing (wide-mask, support) pairs.
        order = sorted(range(len(keys)), key=supps.__getitem__)
        keys = [keys[i] for i in order]
        supps = [supps[i] for i in order]
        nonzero = sum(1 for mask, _ in groups if mask)
        if nonzero > 1:
            union = 0
            for mask, _ in groups:
                union |= mask
            projected = kernel.intersect_many(keys, union, n_bits)
            counters.intersections += len(keys)
            proj_max = dict(zip(projected, supps))
            proj_max.pop(0, None)
            keys = list(proj_max.keys())
            supps = list(proj_max.values())
            order = sorted(range(len(keys)), key=supps.__getitem__)
            keys = [keys[i] for i in order]
            supps = [supps[i] for i in order]
        # The static (projected) family is scanned once per transaction:
        # pack it into a resident table so every scan is one table-wide
        # AND against rows packed exactly once for the batch.
        base_table = kernel.pack(keys, n_bits)
        # Append-only overlay: sets touched by this batch, in update
        # order.  Per stored set later entries carry larger supports
        # (supports only grow), so the compare-and-set below takes the
        # batch-current maximum per joint.
        ov_keys: List[int] = []
        ov_supps: List[int] = []
        for mask, weight in groups:
            self._check()
            if mask:
                joints = kernel.intersect_rows(base_table, mask)
                agg = dict(zip(joints, supps))
                agg.pop(0, None)
                counters.intersections += len(keys) + len(ov_keys)
                get = agg.get
                if ov_keys:
                    ov_joints = kernel.intersect_many(ov_keys, mask, n_bits)
                    for joint, supp in zip(ov_joints, ov_supps):
                        if joint and supp > get(joint, 0):
                            agg[joint] = supp
                if mask not in agg:
                    agg[mask] = 0
                for joint, generator_max in agg.items():
                    flat[joint] = generator_max + weight
                ov_keys += agg.keys()
                ov_supps += [g + weight for g in agg.values()]
                counters.support_updates += len(agg)
                counters.observe_repository_size(len(flat))
            self._n_transactions += weight

    # ------------------------------------------------------------------
    # Representation management
    # ------------------------------------------------------------------

    def _ensure_tree(self) -> PrefixTree:
        """Materialise the prefix tree form (exact rebuild, see below).

        Rebuilding from the closed family is lossless: the organic
        tree's node set is the union of the closed sets' paths and
        every prefix node's support is the maximum over the closed sets
        below it (:meth:`PrefixTree.from_closed_family`), so the rebuilt
        tree continues to grow exactly like the original would have.
        """
        if self._tree is None:
            with self._obs.phase("serve.materialize", form="tree"):
                if self._flat is not None:
                    self._tree = PrefixTree.from_closed_family(
                        iter(self._flat.items()),
                        self.counters,
                        step=self._n_transactions,
                        kernel=self._kernel,
                    )
                else:
                    pending = self._pending
                    self._tree = pending.build_tree(
                        self.counters, self._n_transactions
                    )
                    self._pending = None
                    # Lazy-decode audit: header-only queries must keep
                    # this histogram empty (tests/serving pin count 0).
                    self._obs.observe(
                        "serving.rows_decoded",
                        pending.n_sets,
                        buckets=SIZE_BUCKETS,
                    )
        return self._tree

    def _ensure_flat(self) -> Dict[int, int]:
        """Materialise the flat ``mask -> support`` closed family."""
        if self._flat is None:
            with self._obs.phase("serve.materialize", form="flat"):
                if self._tree is not None:
                    self._flat = dict(self._tree.report(1))
                else:
                    pending = self._pending
                    self._flat = pending.build_flat()
                    self._pending = None
                    self._obs.observe(
                        "serving.rows_decoded",
                        pending.n_sets,
                        buckets=SIZE_BUCKETS,
                    )
                # Fresh key order: the packed mirror is stale.
                self._packed_table = None
                self._packed_len = 0
        return self._flat

    def _family_pairs(self, smin: int) -> List[Tuple[int, int]]:
        """The closed frequent family as ``(mask, support)`` pairs."""
        if self._flat is not None:
            if smin == 1:
                return list(self._flat.items())
            return [(m, s) for m, s in self._flat.items() if s >= smin]
        return list(self._ensure_tree().report(smin))

    # ------------------------------------------------------------------
    # Label handling
    # ------------------------------------------------------------------

    def _label_ranks(self) -> List[int]:
        """Per-code rank in the canonical label sort order.

        Cached against the label count rather than the generation:
        ranks depend only on the registered labels, which mutations
        rarely extend, so the cache survives ordinary ingest.
        """
        cached = self._ranks
        if cached is not None and len(cached) == len(self._labels):
            return cached
        labels = self._labels
        order = sorted(
            range(len(labels)),
            key=lambda c: (str(type(labels[c])), str(labels[c])),
        )
        ranks = [0] * len(labels)
        for position, code in enumerate(order):
            ranks[code] = position
        self._ranks = ranks
        return ranks

    def _labelize(self, mask: int, ranks: List[int]) -> Tuple[Hashable, ...]:
        codes = sorted(itemset.to_indices(mask), key=ranks.__getitem__)
        return tuple(self._labels[c] for c in codes)

    # ------------------------------------------------------------------
    # Queries (memoised; generation-invalidated)
    # ------------------------------------------------------------------

    def closed_sets(self, smin: int = 1) -> Mapping[Tuple[Hashable, ...], int]:
        """Closed frequent item sets of everything seen so far.

        Returns a **read-only** mapping from sorted label tuples to
        supports.  Cheap relative to mining from scratch — one
        traversal of the current repository — and memoised: repeating
        the query against an unchanged repository returns the cached
        mapping without touching the repository at all.
        """
        if smin < 1:
            raise ValueError(f"smin must be at least 1, got {smin}")
        key = ("closed", smin)
        hit = self._memo.get(key)
        if hit is not None:
            self._obs.count("serving.memo.hits")
            return hit
        self._obs.count("serving.memo.misses")
        self._check()
        with self._obs.phase("serve.closed_sets", smin=smin):
            ranks = self._label_ranks()
            out = MappingProxyType(
                {
                    self._labelize(mask, ranks): support
                    for mask, support in self._family_pairs(smin)
                }
            )
        self._memo[key] = out
        return out

    def support_of(self, items: Iterable[Hashable]) -> int:
        """Exact support of an arbitrary item set seen so far.

        The support of any set equals the support of the smallest closed
        superset in the repository (Section 2.3).  A label never seen in
        any transaction short-circuits to support 0 before the
        repository is touched.  Against a materialised tree the answer
        comes from the guided descent
        (:meth:`PrefixTree.superset_support`); against the flat form it
        is a kernel ``superset_max_support_bounded`` scan over the
        resident packed family (grown in place across generations, not
        repacked).  The empty set is
        contained in every transaction, so its support is the
        transaction count.
        """
        mask = 0
        for label in items:
            code = self._label_to_code.get(label)
            if code is None:
                return 0
            mask |= 1 << code
        if mask == 0:
            return self._n_transactions
        key = ("support", mask)
        hit = self._memo.get(key)
        if hit is not None:
            self._obs.count("serving.memo.hits")
            return hit
        self._obs.count("serving.memo.misses")
        self._obs.count("serving.query.support")
        self._check()
        with self._obs.phase("serve.support_of"):
            if self._tree is not None:
                value = self._tree.superset_support(mask)
            else:
                table, supports = self._packed_family()
                # Bounded form with the trivial threshold: identical
                # answer, and the support prefilter short-circuits for
                # free when a caller-level threshold ever tightens it.
                value = self._kernel.superset_max_support_bounded(
                    table, supports, mask, 1
                )
        self._memo[key] = value
        return value

    def _packed_family(self):
        """The flat family as a resident packed kernel table (memoised).

        The table persists across generations: flat keys are append-only
        under :meth:`_fold_into_flat`, so a mutation only grows the
        table by the new key tail (one ``append_rows`` call) instead of
        repacking the whole family.  A full repack happens only when the
        flat form was rebuilt (key order changed) or the item base grew
        past the table's packed width.  The supports list is rebuilt per
        generation — supports change on every update.
        """
        key = ("packed",)
        packed = self._memo.get(key)
        if packed is None:
            flat = self._ensure_flat()
            kernel = self._kernel
            n_bits = len(self._labels)
            table = self._packed_table
            if (
                table is None
                or self._packed_len > len(flat)
                or getattr(table, "n_bits", None) != n_bits
            ):
                table = kernel.pack(list(flat.keys()), n_bits)
            elif self._packed_len < len(flat):
                kernel.append_rows(
                    table, list(islice(flat.keys(), self._packed_len, None))
                )
            self._packed_table = table
            self._packed_len = len(flat)
            packed = (table, list(flat.values()))
            self._memo[key] = packed
        return packed

    def top_k(self, k: int, smin: int = 1) -> Tuple[Tuple[Tuple[Hashable, ...], int], ...]:
        """The ``k`` closed frequent sets of largest support.

        Returns ``((labels, support), ...)`` ordered by descending
        support, ties broken by ascending set size and then by the
        repository's deterministic item coding — so the answer is a
        pure function of the ingested multiset of transactions.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if smin < 1:
            raise ValueError(f"smin must be at least 1, got {smin}")
        if k == 0:
            # Nothing to rank: answer from the header alone, without
            # materialising (or decoding) the repository.
            return ()
        key = ("top_k", k, smin)
        hit = self._memo.get(key)
        if hit is not None:
            self._obs.count("serving.memo.hits")
            return hit
        self._obs.count("serving.memo.misses")
        self._obs.count("serving.query.top_k")
        self._check()
        with self._obs.phase("serve.top_k", k=k, smin=smin):
            pairs = self._family_pairs(smin)
            sizes = self._kernel.popcount_many([mask for mask, _ in pairs])
            ranked = sorted(
                zip(pairs, sizes), key=lambda e: (-e[0][1], e[1], e[0][0])
            )[:k]
            ranks = self._label_ranks()
            out = tuple(
                (self._labelize(mask, ranks), support)
                for (mask, support), _ in ranked
            )
        self._memo[key] = out
        return out

    def supersets_of(
        self, items: Iterable[Hashable], smin: int = 1
    ) -> Mapping[Tuple[Hashable, ...], int]:
        """Closed frequent supersets of an item set, as a read-only mapping.

        Includes the queried set itself when it is closed and frequent.
        Unknown labels short-circuit to an empty mapping; the empty set
        is a subset of everything, so it returns
        ``closed_sets(smin)``.  Against a materialised tree this is the
        guided :meth:`PrefixTree.supersets` enumeration; against the
        flat form, a kernel-batched containment filter.
        """
        if smin < 1:
            raise ValueError(f"smin must be at least 1, got {smin}")
        mask = 0
        for label in items:
            code = self._label_to_code.get(label)
            if code is None:
                return _EMPTY_MAPPING
            mask |= 1 << code
        if mask == 0:
            return self.closed_sets(smin)
        key = ("supersets", mask, smin)
        hit = self._memo.get(key)
        if hit is not None:
            self._obs.count("serving.memo.hits")
            return hit
        self._obs.count("serving.memo.misses")
        self._obs.count("serving.query.supersets")
        self._check()
        with self._obs.phase("serve.supersets", smin=smin):
            if self._tree is not None:
                pairs = list(self._tree.supersets(mask, smin))
            else:
                kernel = self._kernel
                table, supports = self._packed_family()
                pairs = [
                    (kernel.table_row(table, index), supports[index])
                    for index in kernel.superset_rows(table, mask)
                    if supports[index] >= smin
                ]
            ranks = self._label_ranks()
            out = MappingProxyType(
                {self._labelize(stored, ranks): supp for stored, supp in pairs}
            )
        self._memo[key] = out
        return out

    # ------------------------------------------------------------------
    # Bulk construction
    # ------------------------------------------------------------------

    @classmethod
    def from_database(
        cls,
        db,
        item_order: str = "frequency-ascending",
        counters: Optional[OperationCounters] = None,
        guard: Optional[RunGuard] = None,
        backend=None,
        probe=None,
    ) -> "IncrementalMiner":
        """Build a miner from a whole :class:`TransactionDatabase`.

        Items are registered in the paper's frequency-ascending code
        order before any transaction is processed (Section 3.4: the
        item coding, not the arrival order, determines the tree shape,
        and ascending frequency keeps it small), then the transactions
        are folded in through the batched :meth:`extend` path with its
        dedup and size-ascending ordering.
        """
        from ..data.recode import recode_items

        recoded = recode_items(db, item_order)
        miner = cls(counters=counters, guard=guard, backend=backend, probe=probe)
        for code, label in enumerate(recoded.item_labels):
            miner._label_to_code[label] = code
            miner._labels.append(label)
        with miner._obs.phase("serve.build", transactions=db.n_transactions):
            groups: Dict[int, int] = {}
            for mask in recoded.transactions:
                groups[mask] = groups.get(mask, 0) + 1
            keys = list(groups)
            sizes = miner._kernel.popcount_many(keys)
            order = sorted(range(len(keys)), key=lambda i: (sizes[i], keys[i]))
            miner._obs.count("serving.ingest.batches")
            miner._obs.count(
                "serving.ingest.deduplicated", db.n_transactions - len(keys)
            )
            miner._apply_groups(
                [(keys[i], groups[keys[i]]) for i in order], db.n_transactions
            )
        return miner

    @classmethod
    def _restore(
        cls,
        labels: Sequence[Hashable],
        n_transactions: int,
        pending,
        counters: Optional[OperationCounters] = None,
        guard: Optional[RunGuard] = None,
        backend=None,
        probe=None,
    ) -> "IncrementalMiner":
        """Rehydrate a miner from decoded snapshot state (repro.serving).

        ``pending`` is a lazy record object exposing ``n_sets``,
        ``build_tree(counters, step)`` and ``build_flat()``; the
        repository is not decoded until a query or mutation needs it.
        """
        miner = cls(counters=counters, guard=guard, backend=backend, probe=probe)
        miner._tree = None
        miner._pending = pending
        miner._labels = list(labels)
        miner._label_to_code = {label: code for code, label in enumerate(labels)}
        miner._n_transactions = n_transactions
        return miner

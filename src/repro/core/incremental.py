"""Incremental (online) closed item set mining.

The cumulative scheme has a property none of the enumeration miners
share: it processes the database *one transaction at a time* and its
repository is, after every step, exactly the closed-set family of the
transactions seen so far (recursive relation (1) of the paper).  This
module exposes that as an online API: feed transactions as they arrive,
query the closed frequent sets whenever you like.

Because future transactions are unknown, the support-based item
elimination of the batch miner cannot be applied — the repository holds
the *full* closed family (minimum support 1), which is the inherent
price of exact online answers.  For bounded-memory approximations the
batch miner with pruning is the right tool.

>>> miner = IncrementalMiner()
>>> miner.add(["a", "b"])
>>> miner.add(["a", "b", "c"])
>>> miner.add(["b", "c"])
>>> sorted(miner.closed_sets(smin=2).items())
[(('a', 'b'), 2), (('b',), 3), (('b', 'c'), 2)]
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..data import itemset
from ..runtime import RunGuard
from ..stats import OperationCounters
from .prefix_tree import PrefixTree

__all__ = ["IncrementalMiner"]


class IncrementalMiner:
    """Online closed frequent item set miner over arbitrary item labels.

    An optional :class:`~repro.runtime.RunGuard` bounds each ``add``:
    the guard is polled inside the repository intersection, so a
    deadline or cancellation interrupts mid-transaction (the repository
    then reflects the transactions fully processed before the trip).
    """

    def __init__(
        self,
        counters: Optional[OperationCounters] = None,
        guard: Optional[RunGuard] = None,
    ) -> None:
        self._tree = PrefixTree(counters, guard)
        self._label_to_code: Dict[Hashable, int] = {}
        self._labels: List[Hashable] = []
        self._n_transactions = 0

    # ------------------------------------------------------------------

    @property
    def n_transactions(self) -> int:
        """Number of transactions processed so far."""
        return self._n_transactions

    @property
    def n_items(self) -> int:
        """Number of distinct items seen so far."""
        return len(self._labels)

    @property
    def repository_size(self) -> int:
        """Current number of prefix tree nodes (memory gauge)."""
        return self._tree.n_nodes

    def add(self, transaction: Iterable[Hashable]) -> None:
        """Process one transaction; new items extend the item base."""
        mask = 0
        for label in transaction:
            code = self._label_to_code.get(label)
            if code is None:
                code = len(self._labels)
                self._label_to_code[label] = code
                self._labels.append(label)
            mask |= 1 << code
        self._tree.add_transaction(mask)
        self._n_transactions += 1

    def extend(self, transactions: Iterable[Iterable[Hashable]]) -> None:
        """Process many transactions."""
        for transaction in transactions:
            self.add(transaction)

    # ------------------------------------------------------------------

    def closed_sets(self, smin: int = 1) -> Dict[Tuple[Hashable, ...], int]:
        """Closed frequent item sets of everything seen so far.

        Returns a mapping from sorted label tuples to supports.  Cheap
        relative to mining from scratch: one traversal of the current
        repository.
        """
        if smin < 1:
            raise ValueError(f"smin must be at least 1, got {smin}")
        out: Dict[Tuple[Hashable, ...], int] = {}
        for mask, support in self._tree.report(smin):
            labels = tuple(
                sorted(
                    (self._labels[i] for i in itemset.to_indices(mask)),
                    key=lambda lab: (str(type(lab)), str(lab)),
                )
            )
            out[labels] = support
        return out

    def support_of(self, items: Iterable[Hashable]) -> int:
        """Exact support of an arbitrary item set seen so far.

        The support of any set equals the support of the smallest closed
        superset in the repository (Section 2.3).  A label never seen in
        any transaction short-circuits to support 0 before the tree is
        touched; otherwise the answer comes from a guided prefix-tree
        descent (:meth:`PrefixTree.superset_support`) that prunes every
        subtree whose head item cannot cover the query, instead of
        scanning the whole closed family.  The empty set is contained in
        every transaction, so its support is the transaction count.
        """
        mask = 0
        for label in items:
            code = self._label_to_code.get(label)
            if code is None:
                return 0
            mask |= 1 << code
        if mask == 0:
            return self._n_transactions
        return self._tree.superset_support(mask)

"""The IsTa repository prefix tree (Figures 1-4 of the paper).

The tree stores the family of closed item sets of the already-processed
part of the database.  A node holds the *last* (smallest) item of the
set it represents; the full set is the path from the root.  Items along
any root-to-leaf path are strictly decreasing, which is what makes the
``imin`` pruning of the intersection procedure sound: once the current
node's item is not larger than the smallest item of the transaction,
nothing deeper or further along the sibling list can intersect.

Differences from the C original (Figure 1/2), none of which change
behaviour:

* children are held in a dict keyed by item instead of an ordered
  sibling list — Python dicts give O(1) find-or-insert, which plays the
  role of the C code's ordered sibling scan;
* the intersection pass runs, by default, as a *level-batched bounded
  descent*: each tree level's frontier is tested against the
  transaction in one ``intersect_count_many_bounded`` kernel call over
  the nodes' subtree-item summaries, and subtrees whose summary is
  disjoint from the transaction are skipped wholesale via the
  ``BELOW_BOUND`` sentinel (``batched=False`` keeps the node-at-a-time
  recursion of the C original — the differential baseline);
* the ``step`` update flag works exactly as in Figure 2: it marks nodes
  whose support was already raised by the current transaction so that
  the maximum over all generating intersections is taken, without ever
  having to clear flags.

Why the two descents produce byte-identical trees: (a) a node is read
as an intersection *source* at most once per transaction, and the
step-flag merge rule (subtract the provisional contribution,
re-maximise, re-add) is idempotent in the iteration order, so supports
do not depend on whether siblings are processed depth- or
breadth-first; (b) insertion positions always sit at a strictly
smaller depth than the sources of the same level, so a level's child
enumerations are never mutated mid-level and the breadth-first frontier
sees exactly the snapshot the recursion sees; (c) the sentinel skip
only removes subtrees whose every path is disjoint from the
transaction — nodes that can contribute neither an intersection member
nor a descent.
"""

from __future__ import annotations

import itertools
import sys
from typing import Dict, Iterator, Optional, Tuple

from ..data import itemset
from ..kernels import BELOW_BOUND, resolve_backend
from ..runtime import RunGuard, checker
from ..stats import OperationCounters

__all__ = ["PrefixTreeNode", "PrefixTree"]

#: Stand-in flag stream once adaptive frontier testing has switched off:
#: every frame reads as a pass, no per-level list is materialised.
_ALWAYS_PASS = itertools.repeat(0)


class PrefixTreeNode:
    """One prefix tree node: ``(step, item, supp, children)`` as in Figure 1.

    Beyond the paper's four fields the node keeps its ``parent`` link
    and ``below``, the union (bit mask) of all items appearing in its
    subtree, itself included.  ``below`` may *over*-approximate after
    pruning splices (a stale bit only costs a missed skip, never a
    wrong one) but is never allowed to under-approximate: insertions
    propagate new bits up the parent chain immediately.
    """

    __slots__ = ("item", "supp", "step", "children", "parent", "below")

    def __init__(
        self,
        item: int,
        supp: int = 0,
        step: int = 0,
        parent: Optional["PrefixTreeNode"] = None,
    ) -> None:
        self.item = item
        self.supp = supp
        self.step = step
        self.children: Dict[int, "PrefixTreeNode"] = {}
        self.parent = parent
        self.below = 1 << item if item >= 0 else 0

    def __repr__(self) -> str:
        return f"PrefixTreeNode(item={self.item}, supp={self.supp})"


class PrefixTree:
    """Prefix tree over item codes, with in-place intersection merging."""

    __slots__ = (
        "_root",
        "_step",
        "_n_nodes",
        "_depth_bound",
        "_n_bits",
        "_kernel",
        "_batched",
        "counters",
        "_check",
        "_guarded",
    )

    def __init__(
        self,
        counters: Optional[OperationCounters] = None,
        guard: Optional[RunGuard] = None,
        kernel=None,
        batched: bool = True,
    ) -> None:
        self._root = PrefixTreeNode(item=-1)
        self._step = 0
        self._n_nodes = 0
        self._depth_bound = 0
        self._n_bits = 0
        # Kernel executing the per-level bounded frontier test; resolved
        # lazily (environment/default) on first use when not supplied so
        # plain tree construction stays free of backend concerns.
        self._kernel = kernel
        self._batched = batched
        self.counters = counters if counters is not None else OperationCounters()
        # Guard poll, stride-sampled inside the guard; a no-op callable
        # when no guard is active so the hot loop stays branch-free.
        # The batched descent additionally keys its per-row polling on
        # ``_guarded`` so the unguarded hot path pays nothing at all.
        self._check = checker(guard, self.counters)
        self._guarded = guard is not None

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes excluding the root."""
        return self._n_nodes

    @property
    def step(self) -> int:
        """Index (1-based) of the last processed transaction."""
        return self._step

    def find(self, mask: int) -> Optional[PrefixTreeNode]:
        """Node representing ``mask``, or ``None`` — items walked descending."""
        node = self._root
        for item in _descending_items(mask):
            node = node.children.get(item)
            if node is None:
                return None
        return node

    def superset_support(self, mask: int, strict: bool = False) -> int:
        """Largest support among stored sets that contain ``mask``.

        This is the repository form of the Section 2.3 support query:
        the support of an arbitrary item set equals the support of its
        smallest closed superset, which (supports being antitone under
        inclusion) is the largest support over *all* stored supersets.

        The descent is guided rather than exhaustive.  Items strictly
        decrease along every root-to-leaf path, so a subtree headed by
        item ``j`` can only cover query items ``<= j``: any subtree
        whose head item lies below the highest still-uncovered query
        item is pruned wholesale.  Once the query is fully covered the
        head node's support is the subtree maximum (deeper sets are
        supersets with no larger support), so the walk stops there; a
        branch whose head support cannot beat the best found so far is
        skipped for the same reason.  Returns 0 when no stored superset
        exists.

        With ``strict=True`` only *proper* supersets count: the node
        whose path equals ``mask`` itself is excluded (its children
        still qualify) — the closedness test of the merge machinery.
        """
        counters = self.counters
        best = 0
        if mask == 0:
            # Every stored (nonempty) set is a proper superset of the
            # empty set; the per-branch maximum sits at the root fringe.
            for child in self._root.children.values():
                counters.node_visits += 1
                if child.supp > best:
                    best = child.supp
            return best
        # Frames: (node, remaining query bits, path-has-extra-items).
        stack = [(self._root, mask, False)]
        while stack:
            node, remaining, extra = stack.pop()
            hi = remaining.bit_length() - 1
            for child in node.children.values():
                counters.node_visits += 1
                item = child.item
                if item < hi or child.supp <= best:
                    # Either the highest uncovered query item cannot
                    # appear at or below this child, or the subtree
                    # maximum (= child.supp) cannot improve the answer.
                    continue
                bit = 1 << item
                if remaining & bit:
                    rem2 = remaining ^ bit
                    extra2 = extra
                else:
                    rem2 = remaining
                    extra2 = True
                if rem2 == 0:
                    if extra2 or not strict:
                        best = child.supp
                    else:
                        # Path equals the query exactly; only deeper
                        # nodes are proper supersets.
                        for grand in child.children.values():
                            counters.node_visits += 1
                            if grand.supp > best:
                                best = grand.supp
                elif child.children:
                    stack.append((child, rem2, extra2))
        return best

    def supersets(self, mask: int, smin: int = 1) -> Iterator[Tuple[int, int]]:
        """Yield ``(stored mask, support)`` for closed frequent supersets.

        Enumerates exactly the subset of :meth:`report` whose sets
        contain ``mask`` (including ``mask`` itself when stored), but
        with the same guided pruning as :meth:`superset_support`:
        subtrees whose head item cannot cover the highest uncovered
        query bit, and subtrees whose head support is already below
        ``smin`` (supports are antitone downward), are never entered.
        Order of the yielded pairs is unspecified.
        """
        if smin < 1:
            raise ValueError(f"smin must be at least 1, got {smin}")
        counters = self.counters
        # Frames: (node, path mask, query bits not covered by the path).
        stack = []
        for child in self._root.children.values():
            counters.node_visits += 1
            remaining = mask & ~(1 << child.item)
            if child.supp >= smin and (
                not remaining or remaining.bit_length() - 1 <= child.item
            ):
                stack.append((child, 1 << child.item, remaining))
        while stack:
            node, path, remaining = stack.pop()
            max_child_supp = 0
            for child in node.children.values():
                counters.node_visits += 1
                if child.supp > max_child_supp:
                    max_child_supp = child.supp
                rem2 = remaining & ~(1 << child.item)
                if child.supp >= smin and (
                    not rem2 or rem2.bit_length() - 1 <= child.item
                ):
                    stack.append((child, path | (1 << child.item), rem2))
            if not remaining and node.supp >= smin and node.supp > max_child_supp:
                counters.reports += 1
                yield path, node.supp

    # ------------------------------------------------------------------
    # The cumulative update (recursive relation (1) + Figure 2)
    # ------------------------------------------------------------------

    def add_transaction(self, mask: int, weight: int = 1) -> None:
        """Process one transaction: insert its path, then merge intersections.

        Implements one step of the recursive relation
        ``C(T ∪ {t}) = C(T) ∪ {t} ∪ { s ∩ t : s ∈ C(T) }`` with supports
        maintained through the step-flagged maximum rule of Figure 2.
        Empty transactions are ignored (no empty sets are ever kept).

        ``weight`` processes the transaction as ``weight`` identical
        copies in one pass — the Section 3.4 duplicate-collapsing
        heuristic.  Duplicates generate exactly the same intersections,
        so the only change is that every support contribution counts
        ``weight`` instead of 1; the step-flag bookkeeping (subtract the
        provisional contribution, re-maximise, re-add) carries over with
        ``weight`` in place of 1.
        """
        if weight < 1:
            raise ValueError(f"weight must be at least 1, got {weight}")
        self._step += 1
        if not mask:
            return
        # The intersection recursion can go as deep as the longest
        # root-to-leaf path, which is bounded by the largest transaction
        # seen so far (intersections are never longer than that).
        size = itemset.size(mask)
        if size > self._depth_bound:
            self._depth_bound = size
        width = mask.bit_length()
        if width > self._n_bits:
            self._n_bits = width
        if self._depth_bound + 200 > sys.getrecursionlimit():
            sys.setrecursionlimit(self._depth_bound + 1200)
        self._insert_path(mask)
        if self._batched:
            self._intersect_batched(mask, weight)
        else:
            self._intersect(mask, weight)
        self.counters.observe_repository_size(self._n_nodes)

    def _insert_path(self, mask: int) -> None:
        """Add the transaction itself to the tree; new nodes get support 0.

        Support 0 is not a placeholder trick: the subsequent intersection
        pass finds the path via its self-intersection and raises it."""
        node = self._root
        remaining = mask
        while remaining:
            item = remaining.bit_length() - 1
            child = node.children.get(item)
            if child is None:
                child = PrefixTreeNode(item, parent=node)
                node.children[item] = child
                self._n_nodes += 1
                self.counters.nodes_created += 1
            # Every path node's subtree now (also) holds the path's tail.
            child.below |= remaining
            remaining ^= 1 << item
            node = child

    def _intersect(self, mask: int, weight: int = 1) -> None:
        """Figure 2: intersect every stored set with ``mask``, merge in place.

        Recursive like the C original; Python 3.11+ makes deep Python
        recursion safe once the recursion limit is raised (the caller's
        responsibility, see :meth:`add_transaction`).

        Mutation-safety note: a sibling family is only ever mutated
        while it is the *insertion position* of some frame, and the
        insertion chain consists exactly of the nodes whose whole path
        lies inside ``mask``.  A source node coincides with its
        insertion position only in the self-descend case (``target is
        node``), so only the root family and self-descend families need
        to be snapshotted — everything else iterates the live dict.
        """
        step = self._step
        imin = (mask & -mask).bit_length() - 1
        counters = self.counters
        check = self._check
        # Hot loop: operation counts are accumulated in a mutable cell
        # and flushed once per transaction (per-node attribute
        # increments would dominate the Python runtime).
        stats = [0, 0, 0, 0]  # visits, intersections, created, updates

        def isect(sources, target) -> None:
            check()
            for node in sources:
                item = node.item
                stats[0] += 1
                if item < imin:
                    # Nothing in this subtree can contribute: all items
                    # below are < imin, hence not in mask.
                    continue
                if mask >> item & 1:
                    # Item in the intersection: find or create the node
                    # for the extended set under the insertion position.
                    stats[1] += 1
                    existing = target.children.get(item)
                    if existing is None:
                        existing = PrefixTreeNode(item, node.supp + weight, step, target)
                        target.children[item] = existing
                        stats[2] += 1
                        bit = 1 << item
                        ancestor = target
                        while ancestor is not None and not ancestor.below & bit:
                            ancestor.below |= bit
                            ancestor = ancestor.parent
                    else:
                        if existing.step == step:
                            existing.supp -= weight
                        if existing.supp < node.supp:
                            existing.supp = node.supp
                        existing.supp += weight
                        existing.step = step
                        stats[3] += 1
                    if item > imin and node.children:
                        if existing is node:
                            isect(list(node.children.values()), existing)
                        else:
                            isect(node.children.values(), existing)
                elif item > imin and node.children:
                    # Item not in the transaction: descend with the
                    # insertion position unchanged.
                    isect(node.children.values(), target)

        root = self._root
        try:
            isect(list(root.children.values()), root)
        finally:
            # Flush even when a guard interruption unwinds mid-merge, so
            # the counters snapshot on the exception reflects real work.
            self._n_nodes += stats[2]
            counters.node_visits += stats[0]
            counters.intersections += stats[1]
            counters.nodes_created += stats[2]
            counters.support_updates += stats[3]

    def _intersect_batched(self, mask: int, weight: int = 1) -> None:
        """Level-batched bounded form of :meth:`_intersect`.

        Processes the tree breadth-first.  Each level's frontier is
        tested against the transaction in *one* bounded kernel call over
        the nodes' ``below`` summaries with the only sound pushed-down
        bound, 1: a sentinel answer proves the node's entire subtree
        shares no item with the transaction, so neither an intersection
        member nor a useful descent can come out of it and the subtree
        is skipped wholesale.  (A support-based bound would be unsound
        here — infrequent nodes still feed the maximum rule of later
        transactions' intersections.)  The per-node merge logic is the
        Figure 2 rule, verbatim; see the module docstring for why the
        result is byte-identical to the recursion.

        Snapshot safety without copying: a frame's insertion position is
        always strictly shallower than its source (``existing`` for the
        next level is one deeper than ``target``, and sources one deeper
        than that), so insertions during a level never mutate a child
        dict that the same level enumerates — the breadth-first order
        separates readers and writers by depth.
        """
        step = self._step
        imin = (mask & -mask).bit_length() - 1
        counters = self.counters
        row_check = self._check if self._guarded else None
        kernel = self._kernel
        if kernel is None:
            kernel = self._kernel = resolve_backend(None)
        n_bits = self._n_bits
        bounded = kernel.intersect_count_many_bounded
        # Per-transaction membership table: a C-speed subscript per
        # visited node instead of a big-int shift (``mask >> item & 1``
        # allocates a fresh multi-word temporary on wide masks).
        in_mask = bytearray(n_bits)
        rem = mask
        while rem:
            low = rem & -rem
            in_mask[low.bit_length() - 1] = 1
            rem ^= low
        visits = isects = created = updates = 0

        def merge(node, target):
            # Figure 2 find-or-create + step-flag maximum rule.
            nonlocal created, updates
            item = node.item
            existing = target.children.get(item)
            if existing is None:
                existing = PrefixTreeNode(item, node.supp + weight, step, target)
                target.children[item] = existing
                created += 1
                bit = 1 << item
                ancestor = target
                while ancestor is not None and not ancestor.below & bit:
                    ancestor.below |= bit
                    ancestor = ancestor.parent
            else:
                if existing.step == step:
                    existing.supp -= weight
                if existing.supp < node.supp:
                    existing.supp = node.supp
                existing.supp += weight
                existing.step = step
                updates += 1
            return existing

        def classify(children, target, sources, targets, belows):
            # Triage one child family: leaves are merged inline (their
            # whole subtree is their own item — no frontier test or
            # descent needed), internal subtrees join the next level's
            # bounded frontier, children below ``imin`` are dropped (the
            # recursion's ``item < imin`` test, applied at enqueue).
            nonlocal visits, isects
            for child in children:
                visits += 1
                item = child.item
                if item < imin:
                    continue
                if child.children:
                    sources.append(child)
                    targets.append(target)
                    belows.append(child.below)
                elif in_mask[item]:
                    isects += 1
                    merge(child, target)

        root = self._root
        sources: list = []
        targets: list = []
        belows: list = []
        # Adaptive frontier testing: small levels are always tested (the
        # call is cheap and may catch late skips), large levels keep
        # being tested only while the previous large level yielded at
        # least 1/8 sentinels — once a wide frontier stops paying, the
        # rest of this transaction's descent runs untested (processing a
        # disjoint subtree is a no-op, so the output is unaffected).
        testing = True
        try:
            # Inline leaf merges insert into the family being walked
            # when the target is the enumerated node itself (the root
            # here, self-descents below) — snapshot exactly those, as
            # the recursion does.
            classify(list(root.children.values()), root, sources, targets, belows)
            while sources:
                if testing:
                    _, flags = bounded(belows, mask, n_bits, 1)
                    if len(flags) > 256 and flags.count(BELOW_BOUND) * 8 < len(flags):
                        testing = False
                else:
                    flags = _ALWAYS_PASS
                next_sources: list = []
                next_targets: list = []
                next_belows: list = []
                # Guard poll per frontier row, not per level: a level
                # can span an arbitrary slice of the tree, and the
                # interruption contract (docs/robustness.md) promises
                # responsiveness proportional to nodes processed — the
                # same granularity the recursive descent's per-group
                # poll gives.  Sentinel-skipped rows still poll (the
                # skip is work the guard should account), but only a
                # guarded tree pays the per-row call at all.
                for node, target, flag in zip(sources, targets, flags):
                    if row_check is not None:
                        row_check()
                    if flag < 0:
                        # Sentinel: the node's entire subtree is
                        # disjoint from the transaction — skip it
                        # wholesale.
                        continue
                    item = node.item
                    if in_mask[item]:
                        isects += 1
                        existing = merge(node, target)
                        if item > imin:
                            if existing is node:
                                classify(
                                    list(node.children.values()),
                                    existing,
                                    next_sources,
                                    next_targets,
                                    next_belows,
                                )
                            else:
                                classify(
                                    node.children.values(),
                                    existing,
                                    next_sources,
                                    next_targets,
                                    next_belows,
                                )
                    elif item > imin:
                        classify(
                            node.children.values(),
                            target,
                            next_sources,
                            next_targets,
                            next_belows,
                        )
                sources = next_sources
                targets = next_targets
                belows = next_belows
        finally:
            self._n_nodes += created
            counters.node_visits += visits
            counters.intersections += isects
            counters.nodes_created += created
            counters.support_updates += updates

    # ------------------------------------------------------------------
    # Reporting (Figure 4)
    # ------------------------------------------------------------------

    def report(self, smin: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(item set mask, support)`` for the closed frequent sets.

        A node is reported iff its support reaches ``smin`` and no child
        has the same support (a child with equal support witnesses a
        superset with equal support, i.e. non-closedness).  The empty
        set (root) is never reported.
        """
        if smin < 1:
            raise ValueError(f"smin must be at least 1, got {smin}")
        counters = self.counters
        # Frames: (node, mask-so-far). Post-order is not needed: a node's
        # closedness depends only on its direct children's supports.
        stack = [(child, 1 << child.item) for child in self._root.children.values()]
        while stack:
            node, mask = stack.pop()
            counters.node_visits += 1
            max_child_supp = 0
            for child in node.children.values():
                if child.supp > max_child_supp:
                    max_child_supp = child.supp
                stack.append((child, mask | (1 << child.item)))
            if node.supp >= smin and node.supp > max_child_supp:
                counters.reports += 1
                yield mask, node.supp

    # ------------------------------------------------------------------
    # Canonical serial form (the snapshot codec's view of the tree)
    # ------------------------------------------------------------------

    def preorder(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(item, supp, n_children)`` for every node, canonically.

        Depth-first preorder with the children of every node (including
        the root's) visited in *descending* item order.  Two trees
        holding the same node sets and supports produce identical
        record streams regardless of insertion history, which is what
        makes the snapshot encoding deterministic.
        """
        # Push in ascending item order so pops come out descending; a
        # node's subtree is fully emitted before its next sibling.
        stack = sorted(self._root.children.values(), key=lambda n: n.item)
        while stack:
            node = stack.pop()
            yield node.item, node.supp, len(node.children)
            stack.extend(sorted(node.children.values(), key=lambda n: n.item))

    @classmethod
    def from_closed_family(
        cls,
        pairs: Iterator[Tuple[int, int]],
        counters: Optional[OperationCounters] = None,
        step: int = 0,
        kernel=None,
    ) -> "PrefixTree":
        """Rebuild the repository tree from its closed family.

        The organic tree is exactly the union of the closed sets' paths:
        every node is a path prefix ``p`` of some stored set, and its
        closure ``cl(p)`` adds only items *smaller* than ``min(p)`` (the
        generating set's remaining items), so ``cl(p)`` lies in ``p``'s
        own subtree.  Hence each prefix node's exact support equals the
        maximum over the closed sets below it — recovered here by one
        bottom-up pass — and the rebuilt tree is node-for-node,
        support-for-support identical to the tree that grew organically.
        Subsequent :meth:`add_transaction` calls therefore behave
        exactly as if the tree had never been serialised.

        ``step`` seeds the transaction counter (pass the number of
        transactions already folded in) so step flags of later updates
        never collide with the rebuilt nodes' flag value 0.
        """
        tree = cls(counters, kernel=kernel)
        root = tree._root
        n_nodes = 0
        depth_bound = 0
        n_bits = 0
        for mask, supp in pairs:
            node = root
            size = 0
            width = mask.bit_length()
            if width > n_bits:
                n_bits = width
            remaining = mask
            while remaining:
                item = remaining.bit_length() - 1
                remaining ^= 1 << item
                size += 1
                child = node.children.get(item)
                if child is None:
                    child = PrefixTreeNode(item, parent=node)
                    node.children[item] = child
                    n_nodes += 1
                node = child
            node.supp = supp
            if size > depth_bound:
                depth_bound = size
        # Bottom-up support and subtree-summary fill: reversed preorder
        # sees every child before its parent.
        order = []
        stack = list(root.children.values())
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(node.children.values())
        for node in reversed(order):
            for child in node.children.values():
                if child.supp > node.supp:
                    node.supp = child.supp
                node.below |= child.below
        tree._n_nodes = n_nodes
        tree._depth_bound = depth_bound
        tree._n_bits = n_bits
        tree._step = step
        tree.counters.nodes_created += n_nodes
        tree.counters.observe_repository_size(n_nodes)
        return tree

    # ------------------------------------------------------------------
    # Introspection (used by the Figure 3 tests and debugging)
    # ------------------------------------------------------------------

    def as_nested_dict(self) -> Dict[int, Tuple[int, dict]]:
        """Structure snapshot: ``{item: (supp, children-dict)}`` recursively."""

        def convert(node: PrefixTreeNode) -> Dict[int, Tuple[int, dict]]:
            return {
                child.item: (child.supp, convert(child))
                for child in node.children.values()
            }

        return convert(self._root)

    def depth(self) -> int:
        """Length of the longest root-to-leaf path."""
        best = 0
        stack = [(child, 1) for child in self._root.children.values()]
        while stack:
            node, level = stack.pop()
            if level > best:
                best = level
            stack.extend((child, level + 1) for child in node.children.values())
        return best


def _descending_items(mask: int) -> Iterator[int]:
    """Items of ``mask`` from highest to lowest code (tree path order)."""
    while mask:
        item = mask.bit_length() - 1
        yield item
        mask ^= 1 << item

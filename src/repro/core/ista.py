"""IsTa — Intersecting Transactions (Sections 3.2 / 3.3 of the paper).

The cumulative intersection scheme: a prefix-tree repository holds the
closed item sets of the processed part of the database; each new
transaction is inserted and intersected with the whole repository in
one combined pass (:class:`repro.core.prefix_tree.PrefixTree`).

Beyond the plain scheme this implements the paper's two refinements:

* **Item/transaction ordering** (Section 3.4): items are coded by
  ascending frequency, transactions processed by increasing size, which
  keeps the repository small while the early transactions stream by.
* **Item elimination pruning** (Section 3.2): occurrence counters of
  the *unprocessed* transactions decay as mining progresses; a
  repository set with support ``x`` whose items include one with fewer
  than ``smin - x`` remaining occurrences can never become frequent, so
  the deficient items are removed from it ("we do not simply remove the
  item set, but selectively remove items from it").  On the prefix tree
  the removal is a splice: the deficient node disappears and its
  children merge into its parent (taking the support maximum on
  collisions, which stays a lower bound of the true support — the
  reduced set either re-emerges as an intersection of enough
  transactions, and then carries its exact support, or it dies at the
  threshold, exactly as the paper argues).
"""

from __future__ import annotations

from typing import List, Optional

from ..closure.verify import refine_anytime
from ..common import finalize, prepare_for_mining
from ..data.database import TransactionDatabase
from ..kernels import resolve_backend
from ..obs import resolve_probe
from ..result import MiningResult
from ..runtime import MiningInterrupted, RunGuard, checker
from ..stats import OperationCounters
from .prefix_tree import PrefixTree, PrefixTreeNode

__all__ = ["mine_ista"]


def mine_ista(
    db: TransactionDatabase,
    smin: int,
    item_order: str = "frequency-ascending",
    transaction_order: str = "size-ascending",
    prune: bool = True,
    prune_interval: int = 4,
    dedup: bool = False,
    batched: bool = True,
    counters: Optional[OperationCounters] = None,
    guard: Optional[RunGuard] = None,
    backend=None,
    probe=None,
) -> MiningResult:
    """Mine all closed frequent item sets with the IsTa algorithm.

    Parameters
    ----------
    db:
        The transaction database.
    smin:
        Absolute minimum support (at least 1).
    item_order, transaction_order:
        Preprocessing orders, see :mod:`repro.data.recode`.
    prune:
        Enable item elimination pruning (on by default, as in the
        paper's implementation).
    prune_interval:
        Run a repository pruning pass every this many transactions.
    dedup:
        Collapse duplicate transactions into one weighted repository
        update each (a weight-``w`` insertion is provably equivalent to
        ``w`` repeated insertions, see
        :meth:`~repro.core.prefix_tree.PrefixTree.add_transaction`).
        Off by default: the result is identical either way, but the
        per-transaction operation counts differ, and databases without
        duplicates pay a small grouping cost for nothing.
    batched:
        Run the repository intersection as the level-batched bounded
        descent (the default): each tree level is tested against the
        transaction in one ``intersect_count_many_bounded`` kernel call
        and sentinel-flagged subtrees are skipped wholesale.
        ``batched=False`` keeps the node-at-a-time recursion of the C
        original; the mined family is byte-identical either way (see
        :mod:`repro.core.prefix_tree`).
    counters:
        Optional :class:`~repro.stats.OperationCounters` to fill in.
    guard:
        Optional :class:`~repro.runtime.RunGuard`, polled per processed
        transaction and inside the repository intersection recursion.
        On interruption the current repository is salvaged through
        :func:`repro.closure.verify.refine_anytime` (only sets closed
        in the *full* database survive, with exact supports) and
        attached to the exception as an anytime result.
    backend:
        Set-algebra kernel selection (:mod:`repro.kernels`).  The
        backend executes the per-level bounded frontier test of the
        batched descent (sentinel skips are surfaced as
        ``ops.kernel.early_aborts`` when a probe is attached) and the
        remaining-occurrence sweep that seeds the pruning counters.
    probe:
        Optional :class:`repro.obs.Probe` for metrics and phase traces
        (``None``, the default, adds no instrumentation).

    Returns
    -------
    MiningResult
        All closed frequent item sets with their exact supports, in the
        original item coding of ``db``.
    """
    obs = resolve_probe(probe)
    kernel = obs.wrap_kernel(resolve_backend(backend))
    counters = obs.ensure_counters(counters)
    with obs.phase("recode", algorithm="ista"):
        prepared, code_map = prepare_for_mining(
            db, smin, item_order=item_order, transaction_order=transaction_order
        )
    if prune and prune_interval < 1:
        raise ValueError(f"prune_interval must be positive, got {prune_interval}")
    tree = PrefixTree(counters, guard, kernel=kernel, batched=batched)
    check = checker(guard, tree.counters)
    transactions = prepared.transactions
    n = len(transactions)
    if dedup:
        # Duplicates are adjacent-agnostic: a weighted insertion is
        # equivalent to repeating the plain one, so grouping in
        # first-occurrence order preserves the processing order of the
        # distinct transactions.
        grouped = {}
        for transaction in transactions:
            grouped[transaction] = grouped.get(transaction, 0) + 1
        groups = list(grouped.items())
        obs.count("ista.dedup.collapsed", n - len(groups))
    else:
        groups = [(transaction, 1) for transaction in transactions]
    processed = 0

    try:
        with obs.phase("mine", algorithm="ista", transactions=n):
            if not prune:
                for transaction, weight in groups:
                    check()
                    tree.add_transaction(transaction, weight)
                    processed += weight
            else:
                # Remaining-occurrence counters over the unprocessed
                # suffix, seeded by one batched column-count sweep; the
                # per-transaction decrements below keep them current
                # incrementally.
                remaining = kernel.column_counts(transactions, prepared.n_items)

                for index, (transaction, weight) in enumerate(groups):
                    check()
                    tree.add_transaction(transaction, weight)
                    processed += weight
                    mask = transaction
                    while mask:
                        low = mask & -mask
                        remaining[low.bit_length() - 1] -= weight
                        mask ^= low
                    if (index + 1) % prune_interval == 0 and processed < n:
                        _prune_tree(tree, remaining, smin)
        with obs.phase("report", algorithm="ista"):
            result = finalize(tree.report(smin), code_map, db, "ista", smin)
        obs.record_counters(tree.counters)
        return result
    except MiningInterrupted as exc:
        exc.attach_partial(
            lambda: refine_anytime(
                db, finalize(tree.report(smin), code_map, db, "ista", smin), smin
            ),
            algorithm="ista",
            processed=processed,
        )
        obs.record_counters(tree.counters)
        raise


def _prune_tree(tree: PrefixTree, remaining: List[int], smin: int) -> None:
    """One pruning pass: splice out nodes whose item cannot keep the set alive.

    A node with support ``x`` whose own item ``i`` satisfies
    ``x + remaining[i] < smin`` heads a subtree in which every set
    contains ``i`` with even lower support, so none of those sets can
    become frequent *with* ``i``.  The node is spliced out: its children
    merge into its parent (support maximum on collisions).  The maximum
    keeps the crucial witness property: if one of the merged nodes
    carried the exact support of a set, the merged node still does,
    which is what guarantees that closed sets re-emerging from later
    intersections obtain their exact supports (see the module
    docstring and ``tests/core/test_ista.py``).
    """
    counters = tree.counters
    stack = [tree._root]
    while stack:
        parent = stack.pop()
        # Splice deficient children until none remain.  Spliced-in
        # grandchildren can themselves be deficient, hence the fixpoint
        # loop rather than a single sweep.
        changed = True
        while changed:
            changed = False
            for item, child in list(parent.children.items()):
                if child.supp + remaining[item] >= smin:
                    continue
                counters.items_eliminated += 1
                counters.nodes_pruned += 1
                del parent.children[item]
                tree._n_nodes -= 1
                for grandchild in child.children.values():
                    existing = parent.children.get(grandchild.item)
                    if existing is None:
                        parent.children[grandchild.item] = grandchild
                        grandchild.parent = parent
                    else:
                        _merge_nodes(existing, grandchild, tree)
                changed = True
        stack.extend(parent.children.values())


def _merge_nodes(target: PrefixTreeNode, source: PrefixTreeNode, tree: PrefixTree) -> None:
    """Merge ``source`` into ``target`` (same item): supports max, children union.

    Both nodes now represent the same reduced item set; each stored
    support counts transactions that contained one of the original
    supersets, so the maximum remains a lower bound of the reduced
    set's true support.  Iterative, because subtrees can be as deep as
    the longest transaction.
    """
    stack = [(target, source)]
    counters = tree.counters
    while stack:
        into, from_ = stack.pop()
        tree._n_nodes -= 1
        counters.nodes_merged += 1
        if from_.supp > into.supp:
            into.supp = from_.supp
            into.step = from_.step
        # Keep the subtree-item summary a superset of the merged
        # subtree; splice ancestors retain stale bits, which only ever
        # costs a missed batched-descent skip, never a wrong one.
        into.below |= from_.below
        for grandchild in from_.children.values():
            existing = into.children.get(grandchild.item)
            if existing is None:
                into.children[grandchild.item] = grandchild
                grandchild.parent = into
            else:
                stack.append((existing, grandchild))

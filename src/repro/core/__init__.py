"""The paper's primary contribution: cumulative intersection mining."""

from .cumulative import mine_cumulative
from .incremental import IncrementalMiner
from .ista import mine_ista
from .prefix_tree import PrefixTree, PrefixTreeNode

__all__ = [
    "mine_cumulative",
    "mine_ista",
    "IncrementalMiner",
    "PrefixTree",
    "PrefixTreeNode",
]

"""Command-line interface.

Subcommands::

    repro-mine mine     FILE -s SMIN [-a ALGORITHM] [-t TARGET] [-o OUT]
    repro-mine bench    FIGURE [--scale S] [--repeats R] [--value log|seconds|closed]
    repro-mine gen      DATASET -o OUT [--option key=value ...]
    repro-mine stats    FILE [-s SMIN]
    repro-mine rules    FILE -s SMIN [-c CONF]
    repro-mine snapshot FILE -o OUT.snap [--from SNAP] [--workers N]
    repro-mine query    SNAP [-s SMIN] [--top K] [--supersets ITEMS] [--support ITEMS]
    repro-mine ingest   STORE FILE [--follow] [--fsync always|batch|os]
    repro-mine recover  STORE [-o OUT.snap]
    repro-mine serve    STORE [--port P] [--workers N] [--max-inflight N] [--request-timeout S]
    repro-mine top      STORE [--watch SECONDS] [--json]
    repro-mine trace    FILE [--render]
    repro-mine backends [--json]

``mine`` reads a FIMI-format transaction file and prints (or writes)
the closed frequent item sets, one per line with the support in
parentheses — the output convention of the original fim tools.

``snapshot`` and ``query`` are the serving workflow (mine once, serve
many): ``snapshot`` folds a transaction file into a persistent
repository snapshot — from scratch, or warm-starting from an existing
snapshot so only the new transactions are paid for — and ``query``
answers closed-set queries straight from a snapshot without re-mining.

``ingest`` and ``recover`` are the durable streaming workflow:
``ingest`` runs a long-lived :class:`~repro.serving.StreamingMiner`
over a store directory — every transaction is written to a CRC-framed
write-ahead log before it is folded, micro-batches fold on a
count/age cadence, and tiered compaction periodically merges the
overlay into a canonical snapshot — and ``recover`` opens a store
(possibly after a crash), repairs a torn log tail, replays the
surviving records, and reports exactly what was salvaged.

``serve`` is the resident end of the serving workflow: a long-lived
HTTP/JSON daemon (:class:`~repro.serving.QueryServer`) over a store's
snapshot generations, answering the ``query`` verbs from a hot
in-memory repository, hot-swapping new generations as the writer
compacts them, with admission control and ``/metrics`` + ``/healthz``.

``top`` renders a store's :class:`~repro.serving.HealthReport` — WAL
lag, snapshot age, broken flag, rates and latency quantiles — from the
flight-recorder tail and the on-disk state alone, so it works on a
live store (without touching the writer) and on one that was killed.
``trace`` renders a JSON-lines trace (``--trace`` output) as a span
tree.

``backends`` reports the kernel backend registry for this install:
which backends are built, whether the optional native extension is
present, and how the current environment's selection (flag absent,
``REPRO_KERNEL_BACKEND`` honoured) would resolve, with the reason.
Always exits 0 — it is a diagnostic, not a health check.

Telemetry streams (``--metrics -`` / ``--trace -``) go to **stderr**:
stdout carries only the machine-readable mining results.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import List, Optional

from .analysis import profile_database, profile_family
from .bench.figures import FIGURES, run_figure
from .bench.plotting import render_figure
from .data.arff import read_arff, write_arff
from .data.io import LoadReport, read_fimi, write_fimi
from .datasets import DATASETS, load
from .kernels import (
    HAVE_NATIVE,
    available_backends,
    selectable_backends,
    selection_report,
)
from .mining import ALGORITHMS, mine
from .obs import Probe, resolve_probe
from .parallel import mine_parallel
from .rules import generate_nonredundant_rules, generate_rules
from .runtime import CorruptInputError, MiningInterrupted, RunGuard
from .serving import (
    StreamingMiner,
    build_miner_parallel,
    compute_health,
    load_snapshot,
    save_snapshot,
)
from .serving.queries import parse_items, query_lines
from .serving.wal import FSYNC_POLICIES
from .core.incremental import IncrementalMiner
from .stats import OperationCounters

#: Exit codes: 0 success, 2 user/input error, 3 resource budget tripped.
EXIT_USER_ERROR = 2
EXIT_INTERRUPTED = 3


def _read_any(path: str, errors: str = "raise"):
    """Read a transaction file, dispatching on the extension."""
    report = LoadReport() if errors == "skip" else None
    if str(path).lower().endswith(".arff"):
        db = read_arff(path, errors=errors, report=report)
    else:
        db = read_fimi(path, errors=errors, report=report)
    if report is not None and report.lines_skipped:
        print(
            f"# skipped {report.lines_skipped} corrupt line(s) in {path}: "
            f"{report.skipped_line_numbers[:10]}"
            + ("..." if report.lines_skipped > 10 else ""),
            file=sys.stderr,
        )
    return db

__all__ = ["main", "build_parser", "EXIT_USER_ERROR", "EXIT_INTERRUPTED"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mine",
        description="Closed frequent item set mining by intersecting transactions "
        "(IsTa / Carpenter, EDBT 2011 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    mine_parser = subparsers.add_parser("mine", help="mine a FIMI-format file")
    mine_parser.add_argument("file", help="transaction file (FIMI format)")
    mine_parser.add_argument(
        "-s", "--smin", type=int, required=True, help="absolute minimum support"
    )
    mine_parser.add_argument(
        "-a",
        "--algorithm",
        default="ista",
        choices=sorted(ALGORITHMS),
        help="mining algorithm (default: ista)",
    )
    mine_parser.add_argument(
        "-t",
        "--target",
        default="closed",
        choices=("all", "closed", "maximal"),
        help="item set family to report (default: closed)",
    )
    mine_parser.add_argument("-o", "--output", help="write result here instead of stdout")
    mine_parser.add_argument(
        "--backend",
        default=None,
        choices=selectable_backends(),
        help="set-algebra kernel backend (default: REPRO_KERNEL_BACKEND "
        "environment variable, else 'bitint')",
    )
    mine_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; >1 mines shards in parallel and merges "
        "with a closedness re-verification pass (default: 1, serial)",
    )
    mine_parser.add_argument(
        "--shard",
        default="auto",
        choices=("auto", "items", "transactions"),
        help="sharding scheme for --workers >1 (default: auto — "
        "transactions for the intersection family, items otherwise)",
    )
    mine_parser.add_argument(
        "--stats", action="store_true", help="print timing and operation counters"
    )
    mine_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abort the run after this much wall-clock time (exit code 3)",
    )
    mine_parser.add_argument(
        "--memory-limit",
        type=float,
        default=None,
        metavar="MB",
        help="abort when the run allocates more than this many MB (exit code 3)",
    )
    mine_parser.add_argument(
        "--fallback",
        nargs="?",
        const="default",
        default=None,
        metavar="CHAIN",
        help="on a budget trip, retry along an algorithm chain: 'default' "
        "or a comma-separated list of algorithm names",
    )
    mine_parser.add_argument(
        "--on-partial",
        choices=("raise", "return"),
        default="raise",
        help="when every attempt trips its budget: 'raise' discards the "
        "partial result, 'return' prints it (still exit code 3)",
    )
    mine_parser.add_argument(
        "--errors",
        choices=("raise", "skip"),
        default="raise",
        help="corrupt input lines: 'raise' stops with exit code 2, "
        "'skip' drops them with a note on stderr",
    )
    mine_parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot here after the run ('-' for stderr, "
        "keeping stdout machine-readable); enables the observability probe",
    )
    mine_parser.add_argument(
        "--metrics-format",
        choices=("json", "prom"),
        default="json",
        help="metrics snapshot format: 'json' (default) or 'prom' "
        "(Prometheus text exposition)",
    )
    mine_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSON-lines phase trace here ('-' for stderr); "
        "enables the observability probe",
    )

    bench_parser = subparsers.add_parser("bench", help="run a paper exhibit")
    bench_parser.add_argument("figure", choices=sorted(FIGURES), help="exhibit name")
    bench_parser.add_argument("--scale", type=float, default=1.0, help="workload scale")
    bench_parser.add_argument("--repeats", type=int, default=1, help="timing repeats")
    bench_parser.add_argument(
        "--value",
        default="seconds",
        help="table cells: seconds, log, closed, or a counter name",
    )
    bench_parser.add_argument(
        "--time-limit", type=float, default=None, help="per-cell time limit in seconds"
    )
    bench_parser.add_argument(
        "--plot", action="store_true", help="also draw the log-time chart"
    )

    gen_parser = subparsers.add_parser("gen", help="generate a synthetic data set")
    gen_parser.add_argument("dataset", choices=sorted(DATASETS), help="generator name")
    gen_parser.add_argument(
        "-o", "--output", required=True,
        help="output file (FIMI, or ARFF with an .arff extension)",
    )
    gen_parser.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="generator option, repeatable (int/float parsed automatically)",
    )

    stats_parser = subparsers.add_parser(
        "stats", help="profile a transaction file (shape, regime, family sizes)"
    )
    stats_parser.add_argument("file", help="transaction file (FIMI or ARFF)")
    stats_parser.add_argument(
        "-s", "--smin", type=int, default=None,
        help="also mine at this support and profile the closed family",
    )
    stats_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="budget for the -s mining pass; a tripped budget still "
        "profiles the salvaged partial family, marked PARTIAL (exit code 3)",
    )

    rules_parser = subparsers.add_parser(
        "rules", help="mine closed sets and derive association rules"
    )
    rules_parser.add_argument("file", help="transaction file (FIMI or ARFF)")
    rules_parser.add_argument("-s", "--smin", type=int, required=True)
    rules_parser.add_argument(
        "-c", "--min-confidence", type=float, default=0.8, help="default 0.8"
    )
    rules_parser.add_argument(
        "-a", "--algorithm", default="auto",
        choices=sorted(ALGORITHMS) + ["auto"],
    )
    rules_parser.add_argument(
        "--non-redundant",
        action="store_true",
        help="emit the min-max basis (minimal antecedents) instead of all rules",
    )

    snapshot_parser = subparsers.add_parser(
        "snapshot", help="fold a transaction file into a repository snapshot"
    )
    snapshot_parser.add_argument("file", help="transaction file (FIMI or ARFF)")
    snapshot_parser.add_argument(
        "-o", "--output", required=True, help="snapshot file to write"
    )
    snapshot_parser.add_argument(
        "--from",
        dest="warm_from",
        default=None,
        metavar="SNAP",
        help="warm-start from this snapshot and fold the file in as a "
        "delta batch instead of mining from scratch",
    )
    snapshot_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for a from-scratch build; shard "
        "repositories are merged exactly (default: 1)",
    )
    snapshot_parser.add_argument(
        "--backend",
        default=None,
        choices=selectable_backends(),
        help="set-algebra kernel backend (default: REPRO_KERNEL_BACKEND "
        "environment variable, else 'bitint')",
    )
    snapshot_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abort the build after this much wall-clock time (exit code 3)",
    )
    snapshot_parser.add_argument(
        "--memory-limit",
        type=float,
        default=None,
        metavar="MB",
        help="abort when the build allocates more than this many MB "
        "(exit code 3)",
    )
    snapshot_parser.add_argument(
        "--errors",
        choices=("raise", "skip"),
        default="raise",
        help="corrupt input lines: 'raise' stops with exit code 2, "
        "'skip' drops them with a note on stderr",
    )

    query_parser = subparsers.add_parser(
        "query", help="answer closed-set queries from a snapshot"
    )
    query_parser.add_argument("snapshot", help="snapshot file written by 'snapshot'")
    query_parser.add_argument(
        "-s", "--smin", type=int, default=1,
        help="absolute minimum support (default: 1)",
    )
    query_parser.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="K",
        help="print only the K highest-support closed sets",
    )
    query_parser.add_argument(
        "--supersets",
        default=None,
        metavar="ITEMS",
        help="comma-separated items; print only closed supersets of them",
    )
    query_parser.add_argument(
        "--support",
        default=None,
        metavar="ITEMS",
        help="comma-separated items; print just the support of that set",
    )
    query_parser.add_argument(
        "-o", "--output", help="write result here instead of stdout"
    )
    query_parser.add_argument(
        "--backend",
        default=None,
        choices=selectable_backends(),
        help="set-algebra kernel backend for the query descent",
    )

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="stream transactions into a durable store "
        "(write-ahead log + tiered snapshot compaction)",
    )
    ingest_parser.add_argument("store", help="store directory (created if absent)")
    ingest_parser.add_argument(
        "file", help="FIMI-format transaction file, or '-' for stdin"
    )
    ingest_parser.add_argument(
        "--follow",
        action="store_true",
        help="keep reading as the file grows (tail -f style) instead of "
        "stopping at end of file",
    )
    ingest_parser.add_argument(
        "--fsync",
        default="batch",
        choices=FSYNC_POLICIES,
        help="WAL durability policy: 'always' fsyncs every record "
        "(power-loss durable), 'batch' fsyncs at fold boundaries "
        "(default), 'os' leaves flushing to the kernel "
        "(process-crash durable only)",
    )
    ingest_parser.add_argument(
        "--batch-records",
        type=int,
        default=64,
        metavar="N",
        help="fold the micro-batch after this many transactions "
        "(default: 64)",
    )
    ingest_parser.add_argument(
        "--batch-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also fold when the oldest buffered transaction is this old",
    )
    ingest_parser.add_argument(
        "--compact-segments",
        type=int,
        default=4,
        metavar="N",
        help="compact when the log holds more than this many segments "
        "(default: 4)",
    )
    ingest_parser.add_argument(
        "--segment-max-bytes",
        type=int,
        default=1 << 20,
        metavar="BYTES",
        help="roll the log segment past this size (default: 1 MiB)",
    )
    ingest_parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="--follow sleep between end-of-file polls (default: 0.2)",
    )
    ingest_parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="--follow exits cleanly after this long with no new data",
    )
    ingest_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-fold wall-clock budget; a tripped fold stops ingest "
        "with exit code 3 (the logged batch is replayed on recovery)",
    )
    ingest_parser.add_argument(
        "--memory-limit",
        type=float,
        default=None,
        metavar="MB",
        help="per-fold memory budget (exit code 3 on a trip)",
    )
    ingest_parser.add_argument(
        "--flight",
        dest="flight",
        action="store_true",
        default=True,
        help="write periodic flight-recorder snapshots under "
        "<store>/flight/ (default: on; implies the observability probe)",
    )
    ingest_parser.add_argument(
        "--no-flight",
        dest="flight",
        action="store_false",
        help="disable the flight recorder",
    )
    ingest_parser.add_argument(
        "--flight-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="minimum seconds between flight-recorder snapshots "
        "(default: 1.0)",
    )
    ingest_parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot here on exit ('-' for stderr); "
        "enables the observability probe",
    )
    ingest_parser.add_argument(
        "--metrics-format",
        choices=("json", "prom"),
        default="json",
        help="metrics snapshot format: 'json' (default) or 'prom'",
    )
    ingest_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSON-lines phase trace here ('-' for stderr); "
        "enables the observability probe",
    )

    recover_parser = subparsers.add_parser(
        "recover",
        help="open a store after a crash: repair the log tail, replay, "
        "and report what was salvaged",
    )
    recover_parser.add_argument("store", help="store directory to recover")
    recover_parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="SNAP",
        help="also export the recovered repository as a standalone "
        "snapshot file (answerable by 'query')",
    )
    recover_parser.add_argument(
        "--no-compact",
        action="store_true",
        help="report and repair only; leave the store's snapshot and "
        "log tail exactly as recovered",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the long-lived query daemon over a store's snapshot "
        "generations: HTTP/JSON endpoints for the query verbs, hot "
        "snapshot swap, admission control, /metrics and /healthz",
    )
    serve_parser.add_argument(
        "store", help="store directory holding snapshot-*.rsnp generations"
    )
    serve_parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="listen address (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port; 0 picks an ephemeral port, printed to stderr "
        "(default: 0)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="query executor threads; snapshot swaps load on a "
        "dedicated extra thread (default: 2)",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        metavar="N",
        help="queries executing concurrently before new ones queue "
        "(default: 8)",
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=16,
        metavar="N",
        help="queries waiting for a slot before new ones are rejected "
        "with 429 (default: 16)",
    )
    serve_parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request wall-clock budget; a tripped query answers "
        "503 and leaves the store untouched",
    )
    serve_parser.add_argument(
        "--request-memory-limit",
        type=float,
        default=None,
        metavar="MB",
        help="per-request memory budget (503 on a trip)",
    )
    serve_parser.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="Retry-After hint on 429/503 responses (default: 1.0)",
    )
    serve_parser.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="store watch period for hot snapshot swaps (default: 1.0)",
    )
    serve_parser.add_argument(
        "--backend",
        default=None,
        choices=selectable_backends(),
        help="set-algebra kernel backend for the resident miners",
    )

    top_parser = subparsers.add_parser(
        "top",
        help="render a store's health report (WAL lag, rates, latency "
        "quantiles) from its flight recorder and on-disk state — works "
        "on a live or dead store, never touches the writer",
    )
    top_parser.add_argument("store", help="store directory to inspect")
    top_parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep refreshing every SECONDS until interrupted",
    )
    top_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw HealthReport as JSON instead of text",
    )

    trace_parser = subparsers.add_parser(
        "trace", help="inspect a JSON-lines trace written by --trace"
    )
    trace_parser.add_argument(
        "file", help="trace file ('-' reads stdin)"
    )
    trace_parser.add_argument(
        "--render",
        action="store_true",
        help="draw the span tree (parent/child by span ids; workers and "
        "folds merged via trace propagation appear under their parents)",
    )

    backends_parser = subparsers.add_parser(
        "backends",
        help="report the kernel backend registry: what is built, the "
        "native extension status, and how this environment's selection "
        "resolves (always exits 0)",
    )
    backends_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    return parser


def _parse_options(pairs: List[str]) -> dict:
    options = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad --option {pair!r}: expected KEY=VALUE")
        key, value = pair.split("=", 1)
        try:
            options[key] = int(value)
        except ValueError:
            try:
                options[key] = float(value)
            except ValueError:
                options[key] = value
    return options


def _emit_observability(probe: Optional[Probe], args: argparse.Namespace) -> None:
    """Write the probe's metrics snapshot and trace where requested.

    ``'-'`` means **stderr** — stdout carries the machine-readable
    mining results, and interleaving telemetry into it would corrupt
    piped consumers.  Called from a ``finally`` so budget-tripped runs
    still leave their telemetry behind.
    """
    if probe is None:
        return
    if args.metrics:
        if args.metrics_format == "prom":
            payload = probe.metrics.to_prom()
        else:
            payload = probe.metrics.to_json() + "\n"
        if args.metrics == "-":
            sys.stderr.write(payload)
        else:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(payload)
    if args.trace:
        if args.trace == "-":
            probe.tracer.write_jsonl(sys.stderr)
        else:
            with open(args.trace, "w", encoding="utf-8") as handle:
                probe.tracer.write_jsonl(handle)


def _command_mine(args: argparse.Namespace) -> int:
    if args.workers < 1:
        raise ValueError("--workers must be at least 1")
    if args.workers > 1 and args.fallback is not None:
        raise ValueError(
            "--workers >1 cannot be combined with --fallback: shards run "
            "a single algorithm; pick one or drop --fallback"
        )
    if args.workers > 1 and args.target == "all":
        raise ValueError(
            "--workers >1 supports targets 'closed' and 'maximal' only "
            "(the sharded merge re-verifies closedness)"
        )
    probe = Probe() if (args.metrics or args.trace) else None
    obs = resolve_probe(probe)
    counters = OperationCounters()
    start = time.perf_counter()
    try:
        with obs.phase("load", file=args.file):
            db = _read_any(args.file, errors=args.errors)
        if args.workers > 1:
            result = mine_parallel(
                db,
                args.smin,
                algorithm=args.algorithm,
                target=args.target,
                n_workers=args.workers,
                shard=args.shard,
                backend=args.backend,
                timeout=args.timeout,
                memory_limit_mb=args.memory_limit,
                on_partial=args.on_partial,
                probe=probe,
            )
        else:
            result = mine(
                db,
                args.smin,
                algorithm=args.algorithm,
                target=args.target,
                backend=args.backend,
                counters=counters,
                timeout=args.timeout,
                memory_limit_mb=args.memory_limit,
                fallback=args.fallback,
                on_partial=args.on_partial,
                probe=probe,
            )
    finally:
        # Telemetry is most valuable exactly when the run died on a
        # budget trip, so the files are written no matter how we exit.
        _emit_observability(probe, args)
    elapsed = time.perf_counter() - start
    lines = result.to_lines()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))
    else:
        for line in lines:
            print(line)
    if result.fallback_path and not result.interrupted:
        print(
            f"# fell back after {', '.join(result.fallback_path)}; "
            f"finished with {result.algorithm}",
            file=sys.stderr,
        )
    if args.stats:
        print(
            f"# {len(result)} item sets in {elapsed:.3f}s "
            f"({db.n_transactions} transactions, {db.n_items} items)",
            file=sys.stderr,
        )
        print(f"# counters: {counters.as_dict()}", file=sys.stderr)
    if result.interrupted:
        print(
            f"# PARTIAL result: every attempt hit its budget; "
            f"{len(result)} item sets salvaged",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    sweep = run_figure(
        args.figure,
        scale=args.scale,
        repeats=args.repeats,
        time_limit=args.time_limit,
    )
    spec = FIGURES[args.figure]
    print(f"# {spec.paper_exhibit}: {spec.description}")
    print(f"# expected shape: {spec.expected_shape}")
    print(sweep.format_table(args.value))
    if args.plot:
        print()
        print(render_figure(sweep))
    return 0


def _command_gen(args: argparse.Namespace) -> int:
    db = load(args.dataset, **_parse_options(args.option))
    if args.output.lower().endswith(".arff"):
        write_arff(db, args.output, relation=args.dataset)
    else:
        write_fimi(db, args.output)
    print(
        f"wrote {db.n_transactions} transactions over {db.n_items} items "
        f"to {args.output}",
        file=sys.stderr,
    )
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    db = _read_any(args.file)
    profile = profile_database(db)
    print(profile.describe())
    if args.smin is not None:
        # on_partial="return": a tripped budget must not masquerade as
        # the complete family — the profile line says so explicitly and
        # the exit code matches the other budget-tripped paths.
        result = mine(
            db,
            args.smin,
            algorithm="auto",
            timeout=args.timeout,
            on_partial="return",
        )
        family = profile_family(result)
        qualifier = (
            " (PARTIAL: budget tripped, counts are lower bounds)"
            if result.interrupted
            else ""
        )
        print(
            f"closed family at smin={args.smin}{qualifier}: {family.n_sets} sets, "
            f"mean size {family.mean_size:.1f} (max {family.max_size}), "
            f"mean support {family.mean_support:.1f} (max {family.max_support})"
        )
        if result.interrupted:
            return EXIT_INTERRUPTED
    return 0


def _command_rules(args: argparse.Namespace) -> int:
    db = _read_any(args.file)
    closed = mine(db, args.smin, algorithm=args.algorithm)
    if args.non_redundant:
        rules = generate_nonredundant_rules(
            db, closed, min_confidence=args.min_confidence
        )
    else:
        rules = generate_rules(
            closed, db.n_transactions, min_confidence=args.min_confidence
        )
    count = 0
    for rule in rules:
        print(rule.labeled(db.item_labels))
        count += 1
    print(f"# {count} rules from {len(closed)} closed sets", file=sys.stderr)
    return 0


def _command_snapshot(args: argparse.Namespace) -> int:
    if args.workers < 1:
        raise ValueError("--workers must be at least 1")
    if args.workers > 1 and args.warm_from:
        raise ValueError(
            "--workers >1 applies to from-scratch builds only; a warm "
            "start folds the file in as one serial delta batch"
        )
    guard = None
    if args.timeout is not None or args.memory_limit is not None:
        # Ingest polls the guard once per transaction, not per operation,
        # so every poll must be a real check: the default stride would let
        # a small file's entire build slip between samples.
        guard = RunGuard(
            timeout=args.timeout, memory_limit_mb=args.memory_limit, stride=1
        )
    db = _read_any(args.file, errors=args.errors)
    if args.warm_from:
        miner = load_snapshot(args.warm_from, guard=guard, backend=args.backend)
        _check_label_universe(miner, db, args.warm_from, args.file)
        miner.extend(db.decode(mask) for mask in db.transactions)
    elif args.workers > 1:
        miner = build_miner_parallel(
            db, n_workers=args.workers, guard=guard, backend=args.backend
        )
    else:
        miner = IncrementalMiner.from_database(
            db, guard=guard, backend=args.backend
        )
    n_bytes = save_snapshot(miner, args.output)
    print(
        f"# snapshot {args.output}: {len(miner._ensure_flat())} closed sets, "
        f"{miner.n_transactions} transactions, {n_bytes} bytes",
        file=sys.stderr,
    )
    return 0


def _check_label_universe(miner, db, snap_path: str, delta_path: str) -> None:
    """Refuse a warm ``--from`` fold whose labels cannot be the same items.

    ``read_fimi`` coerces a file's tokens to ``int`` only when *every*
    token in the file is numeric, so the same logical item can arrive
    as ``int`` from one file and ``str`` from another.  Folding such a
    delta would silently double-count every item as two distinct ones.
    The telltale is an empty exact overlap between the two label
    universes while their textual forms do overlap: same spellings,
    different types.  That is a user error, not a mining result —
    refuse with a clear message (exit code 2).
    """
    snap_labels = set(miner.item_labels)
    delta_labels = set(db.item_labels)
    if not snap_labels or not delta_labels:
        return
    if snap_labels & delta_labels:
        return
    textual_overlap = {str(label) for label in snap_labels} & {
        str(label) for label in delta_labels
    }
    if textual_overlap:
        sample = sorted(textual_overlap)[:3]
        snap_kind = type(next(iter(snap_labels))).__name__
        delta_kind = type(next(iter(delta_labels))).__name__
        raise ValueError(
            f"--from refused: snapshot {snap_path} labels items as "
            f"{snap_kind} but delta file {delta_path} reads them as "
            f"{delta_kind} (e.g. {', '.join(sample)}); folding would "
            f"double-count them as distinct items.  FIMI files are "
            f"int-labeled only when every token is numeric — make the "
            f"delta's tokens match the snapshot's, or rebuild from "
            f"scratch without --from"
        )


def _command_query(args: argparse.Namespace) -> int:
    # Parsing and rendering live in repro.serving.queries, shared with
    # the 'serve' daemon — that sharing is what the serve-vs-CLI
    # differential suite relies on for byte-identical answers.
    chosen = [
        name
        for name, value in (
            ("--top", args.top),
            ("--supersets", args.supersets),
            ("--support", args.support),
        )
        if value is not None
    ]
    if len(chosen) > 1:
        raise ValueError(f"pick one of {', '.join(chosen)}")
    miner = load_snapshot(args.snapshot, backend=args.backend)
    if args.support is not None:
        lines = query_lines(
            miner, "support_of", items=parse_items(args.support, miner)
        )
    elif args.top is not None:
        lines = query_lines(miner, "top_k", k=args.top, smin=args.smin)
    elif args.supersets is not None:
        lines = query_lines(
            miner,
            "supersets_of",
            items=parse_items(args.supersets, miner),
            smin=args.smin,
        )
    else:
        lines = query_lines(miner, "closed_sets", smin=args.smin)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))
    else:
        for line in lines:
            print(line)
    return 0


def _tokenize_stream_line(line: str) -> Optional[List[object]]:
    """Tokenize one streaming FIMI line, per-token int coercion.

    Unlike :func:`read_fimi` — which sees the whole file and coerces to
    ``int`` only when every token is numeric — a stream has no whole
    file to inspect, so each token is coerced independently.  The two
    agree on all-numeric and no-numeric files; ``docs/serving.md``
    records the divergence for mixed ones.
    """
    tokens = line.split()
    if not tokens:
        return None
    labels: List[object] = []
    for token in tokens:
        try:
            labels.append(int(token))
        except ValueError:
            labels.append(token)
    return labels


def _command_ingest(args: argparse.Namespace) -> int:
    # The flight recorder (on by default) needs a live registry to
    # snapshot, so it implies the probe even without --metrics/--trace.
    probe = (
        Probe() if (args.metrics or args.trace or args.flight) else None
    )
    store = StreamingMiner.open(
        args.store,
        fsync=args.fsync,
        batch_records=args.batch_records,
        batch_age=args.batch_age,
        compact_segments=args.compact_segments,
        segment_max_bytes=args.segment_max_bytes,
        fold_timeout=args.timeout,
        fold_memory_limit_mb=args.memory_limit,
        flight=args.flight,
        flight_interval=args.flight_interval,
        probe=probe,
    )
    if not store.recovery.clean:
        print(store.recovery.describe(), file=sys.stderr)
    ingested = 0
    if args.file == "-":
        handle, close_handle = sys.stdin, False
    else:
        handle, close_handle = open(args.file, "r", encoding="utf-8"), True
    try:
        idle_start = None
        while True:
            line = handle.readline()
            if line:
                idle_start = None
                labels = _tokenize_stream_line(line)
                if labels is not None:
                    store.ingest(labels)
                    ingested += 1
                continue
            if not args.follow:
                break
            # End of file, for now: fold anything aging in the buffer,
            # then poll for growth.
            store.tick()
            now = time.monotonic()
            if idle_start is None:
                idle_start = now
            elif (
                args.idle_timeout is not None
                and now - idle_start >= args.idle_timeout
            ):
                break
            time.sleep(args.poll_interval)
        store.close()
    except MiningInterrupted:
        # The fold budget tripped mid-batch; the durable state (log +
        # last snapshot) is intact and 'recover' resumes from it.
        try:
            store.close()
        except Exception:
            pass
        raise
    finally:
        if close_handle:
            handle.close()
        _emit_observability(probe, args)
    print(
        f"# store {args.store}: ingested {ingested} transaction(s), "
        f"{store.n_transactions} total",
        file=sys.stderr,
    )
    return 0


def _command_recover(args: argparse.Namespace) -> int:
    store = StreamingMiner.open(args.store)
    report = store.recovery
    print(report.describe())
    if args.output:
        n_bytes = save_snapshot(store.miner, args.output)
        print(f"exported {args.output} ({n_bytes} bytes)")
    if not args.no_compact:
        path = store.compact()
        if path is not None:
            print(f"compacted {os.path.basename(path)}")
    store.close(compact=False)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # Deferred: the daemon (and its asyncio import) is only paid for by
    # the verb that runs it, never by one-shot mine/query invocations.
    from .serving import QueryServer

    server = QueryServer(
        args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        request_timeout=args.request_timeout,
        request_memory_limit_mb=args.request_memory_limit,
        retry_after=args.retry_after,
        poll_interval=args.poll_interval,
        backend=args.backend,
    )

    def ready(host: str, port: int) -> None:
        # stderr, like every other status line: stdout stays free for
        # machine consumers even when the daemon is piped.
        print(
            f"# serving {args.store} on http://{host}:{port}",
            file=sys.stderr,
            flush=True,
        )

    return server.run(ready=ready)


def _command_top(args: argparse.Namespace) -> int:
    if not os.path.isdir(args.store):
        raise ValueError(f"store directory {args.store!r} does not exist")
    report = compute_health(args.store)
    if args.json:
        print(json.dumps(dataclasses.asdict(report), sort_keys=True))
    else:
        print(report.describe())
    if args.watch is not None:
        try:
            while True:
                time.sleep(args.watch)
                report = compute_health(args.store)
                print()
                if args.json:
                    print(json.dumps(dataclasses.asdict(report), sort_keys=True))
                else:
                    print(report.describe())
        except KeyboardInterrupt:
            pass
    return 0


def _command_backends(args: argparse.Namespace) -> int:
    """Diagnostic dump of the kernel registry and selection resolution.

    Exits 0 unconditionally: an install without the native extension is
    a supported configuration, and scripts probing for it should parse
    the output, not the exit code.
    """
    registered = available_backends()
    selectable = selectable_backends()
    report = selection_report()
    payload = {
        "registered": registered,
        "selectable": selectable,
        "native_built": HAVE_NATIVE,
        "selection": report,
    }
    if args.json:
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(f"registered backends: {', '.join(registered)}")
    fallback_only = sorted(set(selectable) - set(registered))
    if fallback_only:
        print(
            f"selectable via fallback: {', '.join(fallback_only)} "
            "(extension not built on this install)"
        )
    print(
        "native extension: "
        + ("built (repro.kernels._native importable)" if HAVE_NATIVE
           else "not built — build with: python setup.py build_ext --inplace")
    )
    print(
        f"selection: {report['requested']} (source: {report['source']}) "
        f"-> {report['resolved']}"
    )
    print(f"  {report['reason']}")
    return 0


def _format_trace_record(record: dict, indent: int) -> str:
    attrs = record.get("attrs") or {}
    attr_text = " ".join(f"{key}={value}" for key, value in sorted(attrs.items()))
    if record.get("type") == "event":
        head = f"* {record.get('name')} @{record.get('at', 0.0) * 1e3:.3f}ms"
    else:
        head = (
            f"{record.get('name')} "
            f"{(record.get('duration') or 0.0) * 1e3:.3f}ms"
        )
    return "  " * indent + head + (f"  [{attr_text}]" if attr_text else "")


def _trace_tree_lines(records: List[dict]) -> List[str]:
    """Render trace records as an indented tree, children under parents.

    Version-2 traces carry span/parent ids, so merged worker and fold
    spans nest under the span that was open at fan-out.  Version-1
    traces (no ids) fall back to the recorded depth, in file order.
    """
    span_ids = {
        record["span_id"] for record in records if record.get("span_id")
    }
    if not span_ids:
        return [
            _format_trace_record(record, int(record.get("depth", 0)))
            for record in records
        ]
    children: dict = {}
    for record in records:
        parent = record.get("parent_id")
        key = parent if parent in span_ids else None
        children.setdefault(key, []).append(record)

    def start_key(record: dict):
        return record.get("start", record.get("at", 0.0))

    lines: List[str] = []

    def walk(record: dict, depth: int) -> None:
        lines.append(_format_trace_record(record, depth))
        span_id = record.get("span_id")
        if span_id:
            for child in sorted(children.get(span_id, []), key=start_key):
                walk(child, depth + 1)

    for root in sorted(children.get(None, []), key=start_key):
        walk(root, 0)
    return lines


def _command_trace(args: argparse.Namespace) -> int:
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
    header = None
    records: List[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") == "trace":
            header = record
        else:
            records.append(record)
    if header is not None:
        dropped = header.get("dropped", 0)
        print(
            f"# trace {header.get('trace_id', '?')} "
            f"(v{header.get('version', 1)}): {len(records)} record(s)"
            + (f", {dropped} dropped by the buffer bound" if dropped else "")
        )
    if args.render:
        for line in _trace_tree_lines(records):
            print(line)
    else:
        # Summary: per-span-name count and total duration, slowest first.
        totals: dict = {}
        for record in records:
            if record.get("type") != "span":
                continue
            name = record.get("name", "?")
            count, total = totals.get(name, (0, 0.0))
            totals[name] = (count + 1, total + (record.get("duration") or 0.0))
        for name, (count, total) in sorted(
            totals.items(), key=lambda entry: -entry[1][1]
        ):
            print(f"{name}  n={count}  total={total * 1e3:.3f}ms")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (also installed as the ``repro-mine`` script).

    Exit codes: 0 success; 2 user/input error (bad arguments, missing or
    corrupt files); 3 resource budget tripped (timeout, memory,
    cancellation) with nothing — or only a partial result — to show.
    """
    args = build_parser().parse_args(argv)
    try:
        if args.command == "mine":
            return _command_mine(args)
        if args.command == "bench":
            return _command_bench(args)
        if args.command == "gen":
            return _command_gen(args)
        if args.command == "stats":
            return _command_stats(args)
        if args.command == "rules":
            return _command_rules(args)
        if args.command == "snapshot":
            return _command_snapshot(args)
        if args.command == "query":
            return _command_query(args)
        if args.command == "ingest":
            return _command_ingest(args)
        if args.command == "recover":
            return _command_recover(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "top":
            return _command_top(args)
        if args.command == "trace":
            return _command_trace(args)
        if args.command == "backends":
            return _command_backends(args)
    except MiningInterrupted as exc:
        print(f"repro-mine: {exc}", file=sys.stderr)
        if exc.fallback_path:
            print(
                f"repro-mine: attempted {', '.join(exc.fallback_path)}",
                file=sys.stderr,
            )
        return EXIT_INTERRUPTED
    except CorruptInputError as exc:
        print(f"repro-mine: {exc}", file=sys.stderr)
        return EXIT_USER_ERROR
    except (OSError, ValueError, TypeError) as exc:
        print(f"repro-mine: {exc}", file=sys.stderr)
        return EXIT_USER_ERROR
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())

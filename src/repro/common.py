"""Shared plumbing for all miners: preprocessing and result finalisation.

Every miner performs the same first pass the paper describes ("this is
done by virtually all frequent item set mining algorithms anyway"):

1. count item frequencies,
2. drop items that cannot reach the minimum support,
3. assign item codes in the requested order (ascending frequency by
   default, Section 3.4),
4. reorder transactions (increasing size by default, Section 3.4),
5. drop empty transactions ("no empty transactions are ever kept").

Dropping globally infrequent items never changes the closed frequent
family: a closed frequent set cannot contain an infrequent item, and
any item in the closure of a frequent set is at least as frequent as
the set itself (see ``tests/integration/test_preprocessing.py``).

Mining happens in the prepared coding; :func:`finalize` translates the
result masks back to the caller's original item codes.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Tuple

from .data import itemset
from .data.database import TransactionDatabase
from .data.recode import reorder_transactions
from .result import MiningResult

__all__ = ["PreparedDatabase", "prepare_for_mining", "translate_mask", "finalize"]


class PreparedDatabase(NamedTuple):
    """A recoded database plus the map back to the original item codes."""

    db: TransactionDatabase
    code_map: List[int]  # prepared code -> original code


def prepare_for_mining(
    db: TransactionDatabase,
    smin: int,
    item_order: str = "frequency-ascending",
    transaction_order: str = "size-ascending",
    seed: int = 0,
) -> PreparedDatabase:
    """Apply the standard first pass; see module docstring."""
    if smin < 1:
        raise ValueError(f"smin must be at least 1, got {smin}")
    supports = db.item_supports()
    kept = [code for code in range(db.n_items) if supports[code] >= smin]
    if item_order == "frequency-ascending":
        kept.sort(key=lambda code: (supports[code], code))
    elif item_order == "frequency-descending":
        kept.sort(key=lambda code: (-supports[code], code))
    elif item_order == "identity":
        pass
    elif item_order == "random":
        import random

        random.Random(seed).shuffle(kept)
    else:
        raise ValueError(f"unknown item order {item_order!r}")

    new_code = {old: new for new, old in enumerate(kept)}
    keep_mask = itemset.from_indices(kept)
    masks = []
    for transaction in db.transactions:
        reduced = transaction & keep_mask
        if not reduced:
            continue
        mask = 0
        remaining = reduced
        while remaining:
            low = remaining & -remaining
            mask |= 1 << new_code[low.bit_length() - 1]
            remaining ^= low
        masks.append(mask)
    labels = [db.item_labels[old] for old in kept]
    prepared = TransactionDatabase(masks, len(kept), labels)
    prepared = reorder_transactions(prepared, transaction_order, seed)
    return PreparedDatabase(prepared, kept)


def translate_mask(mask: int, code_map: List[int]) -> int:
    """Map a prepared-coding item set back to original item codes."""
    result = 0
    while mask:
        low = mask & -mask
        result |= 1 << code_map[low.bit_length() - 1]
        mask ^= low
    return result


def finalize(
    pairs: Iterable[Tuple[int, int]],
    code_map: List[int],
    original: TransactionDatabase,
    algorithm: str,
    smin: int,
) -> MiningResult:
    """Translate prepared-coding ``(mask, support)`` pairs into a result."""
    return MiningResult.from_pairs(
        ((translate_mask(mask, code_map), support) for mask, support in pairs),
        original.item_labels,
        algorithm,
        smin,
    )

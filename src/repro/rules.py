"""Association rule induction from closed frequent item sets.

The paper's introduction motivates frequent item set mining through
association rules; this module closes that loop.  Because closed sets
preserve all support information (Section 2.3), the support of *any*
frequent item set — and hence the confidence and lift of any rule over
frequent sets — can be reconstructed as the maximum support of its
closed supersets.  Rules are generated directly from the closed family
without re-mining.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional

from .data import itemset
from .data.database import TransactionDatabase
from .result import MiningResult

__all__ = [
    "AssociationRule",
    "support_of",
    "generate_rules",
    "generate_nonredundant_rules",
    "rule_measures",
]


@dataclass(frozen=True)
class AssociationRule:
    """A rule ``antecedent -> consequent`` with its quality measures."""

    antecedent: int
    consequent: int
    support: int            # absolute support of antecedent + consequent
    confidence: float       # support(A + C) / support(A)
    lift: float             # confidence / (support(C) / n)

    def labeled(self, labels: Optional[List[Hashable]] = None) -> str:
        """Human-readable form, e.g. ``"a, b -> c (supp=4, conf=0.80)"``."""
        left = ", ".join(str(x) for x in itemset.canonical_tuple(self.antecedent, labels))
        right = ", ".join(str(x) for x in itemset.canonical_tuple(self.consequent, labels))
        return (
            f"{left} -> {right} "
            f"(supp={self.support}, conf={self.confidence:.2f}, lift={self.lift:.2f})"
        )


def support_of(closed: MiningResult, mask: int, n_transactions: Optional[int] = None) -> Optional[int]:
    """Support of an arbitrary item set, reconstructed from the closed family.

    The empty set's support is ``n_transactions`` when given.  Returns
    ``None`` for sets that are not frequent at the family's threshold.
    """
    if mask == 0:
        return n_transactions
    best: Optional[int] = None
    for closed_mask, support in closed.items():
        if mask & ~closed_mask == 0 and (best is None or support > best):
            best = support
    return best


def generate_rules(
    closed: MiningResult,
    n_transactions: int,
    min_confidence: float = 0.8,
    max_consequent_items: int = 1,
) -> Iterator[AssociationRule]:
    """Generate association rules from a closed frequent family.

    For every closed set ``Z`` and every non-empty consequent
    ``C ⊆ Z`` with at most ``max_consequent_items`` items, the rule
    ``Z − C -> C`` is emitted when its confidence reaches
    ``min_confidence``.  Restricting generation to closed sets loses
    nothing: a rule over a non-closed set has the same support and
    confidence as the corresponding rule over its closure's
    sub-structure, and downstream consumers deduplicate by measure
    anyway.  Rules are yielded in no particular order.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError(f"min_confidence must be in (0, 1], got {min_confidence}")
    if n_transactions < 1:
        raise ValueError(f"n_transactions must be positive, got {n_transactions}")
    for mask, support in closed.items():
        items = itemset.to_indices(mask)
        if len(items) < 2:
            continue
        for consequent in _consequents(items, max_consequent_items):
            antecedent = mask & ~consequent
            antecedent_support = support_of(closed, antecedent, n_transactions)
            if not antecedent_support:
                continue
            confidence = support / antecedent_support
            if confidence < min_confidence:
                continue
            consequent_support = support_of(closed, consequent, n_transactions)
            if not consequent_support:
                continue
            lift = confidence / (consequent_support / n_transactions)
            yield AssociationRule(antecedent, consequent, support, confidence, lift)


def _consequents(items: List[int], max_items: int) -> Iterator[int]:
    """Non-empty consequent masks with at most ``max_items`` members."""
    from itertools import combinations

    for size in range(1, min(max_items, len(items) - 1) + 1):
        for combo in combinations(items, size):
            yield itemset.from_indices(combo)


def rule_measures(
    rule: AssociationRule,
    closed: MiningResult,
    n_transactions: int,
) -> Dict[str, float]:
    """Extended quality measures of a rule.

    Returns support (relative), confidence, lift, plus:

    * **leverage** — ``P(A,C) − P(A)·P(C)`` (difference from
      independence on the probability scale);
    * **conviction** — ``(1 − P(C)) / (1 − confidence)``
      (``inf`` for exact rules);
    * **jaccard** — ``supp(A∪C) / (supp(A) + supp(C) − supp(A∪C))``.
    """
    antecedent_support = support_of(closed, rule.antecedent, n_transactions)
    consequent_support = support_of(closed, rule.consequent, n_transactions)
    if not antecedent_support or not consequent_support:
        raise ValueError("rule references sets outside the closed family")
    p_joint = rule.support / n_transactions
    p_antecedent = antecedent_support / n_transactions
    p_consequent = consequent_support / n_transactions
    conviction = (
        math.inf
        if rule.confidence >= 1.0
        else (1.0 - p_consequent) / (1.0 - rule.confidence)
    )
    return {
        "support": p_joint,
        "confidence": rule.confidence,
        "lift": rule.lift,
        "leverage": p_joint - p_antecedent * p_consequent,
        "conviction": conviction,
        "jaccard": rule.support
        / (antecedent_support + consequent_support - rule.support),
    }


def generate_nonredundant_rules(
    db: TransactionDatabase,
    closed: MiningResult,
    min_confidence: float = 0.8,
    max_generator_size: int = 6,
) -> Iterator[AssociationRule]:
    """The min-max basis: minimal antecedents, maximal consequents.

    For every closed set ``C`` and every *minimal generator* ``G`` of a
    closed subset ``C' ⊆ C``, the rule ``G -> C − G`` summarises all
    rules between those support levels: any other rule with the same
    closure pair has a larger antecedent or a smaller consequent with
    identical support and confidence.  Emitting only these gives the
    classic non-redundant ("min-max") rule basis.

    Exact rules (confidence 1) arise from generators of ``C`` itself;
    approximate rules from generators of proper closed subsets.
    """
    from .closure.generators import all_minimal_generators

    if not 0.0 < min_confidence <= 1.0:
        raise ValueError(f"min_confidence must be in (0, 1], got {min_confidence}")
    n = db.n_transactions
    generators = all_minimal_generators(db, closed, max_generator_size)
    closed_masks = list(closed)
    for target in closed_masks:
        target_support = closed[target]
        for source in closed_masks:
            # Antecedent closures must be subsets (same set allowed:
            # that yields the exact rules).
            if source & ~target:
                continue
            source_support = closed[source]
            confidence = target_support / source_support
            if confidence < min_confidence:
                continue
            for generator in generators[source]:
                consequent = target & ~generator
                if not consequent:
                    continue
                consequent_support = support_of(closed, consequent, n)
                if not consequent_support:
                    continue
                lift = confidence / (consequent_support / n)
                yield AssociationRule(
                    generator, consequent, target_support, confidence, lift
                )

"""Formal layer: Galois connection, closure operators, oracles, lattice."""

from .galois import closure, cover, intersection_of, is_closed, tid_closure
from .generators import all_minimal_generators, minimal_generators
from .lattice import ConceptLattice
from .verify import (
    all_frequent_bruteforce,
    check_closed_family,
    closed_frequent_bruteforce,
    maximal_frequent_bruteforce,
    reconstruct_support,
)

__all__ = [
    "closure",
    "cover",
    "intersection_of",
    "is_closed",
    "tid_closure",
    "ConceptLattice",
    "all_minimal_generators",
    "minimal_generators",
    "all_frequent_bruteforce",
    "check_closed_family",
    "closed_frequent_bruteforce",
    "maximal_frequent_bruteforce",
    "reconstruct_support",
]

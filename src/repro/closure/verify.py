"""Reference oracles and consistency checks.

These functions are deliberately naive (exponential) transcriptions of
the definitions in Section 2 of the paper.  They serve as ground truth
in the test-suite: every optimised miner is differentially tested
against them on small random databases.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Optional

from ..data import itemset
from ..data.database import TransactionDatabase
from ..result import MiningResult
from . import galois

__all__ = [
    "closed_frequent_bruteforce",
    "all_frequent_bruteforce",
    "maximal_frequent_bruteforce",
    "reconstruct_support",
    "check_closed_family",
    "refine_anytime",
]


def closed_frequent_bruteforce(db: TransactionDatabase, smin: int) -> MiningResult:
    """All closed frequent item sets by the Section 2.4 characterisation.

    Forms the intersection of every ``k``-subset of transactions for
    ``k = smin .. n``, removes duplicates, and keeps an intersection iff
    its true support reaches ``smin`` and it is closed.  Exponential in
    the number of transactions — tests only.
    """
    if smin < 1:
        raise ValueError(f"smin must be at least 1, got {smin}")
    n = db.n_transactions
    candidates = set()
    for k in range(smin, n + 1):
        for subset in combinations(range(n), k):
            intersection = db.transactions[subset[0]]
            for tid in subset[1:]:
                intersection &= db.transactions[tid]
                if not intersection:
                    break
            if intersection:
                candidates.add(intersection)
    supports: Dict[int, int] = {}
    for candidate in candidates:
        support = itemset.size(galois.cover(db, candidate))
        if support >= smin and galois.is_closed(db, candidate):
            supports[candidate] = support
    return MiningResult(supports, db.item_labels, "oracle-closed", smin)


def all_frequent_bruteforce(
    db: TransactionDatabase, smin: int, max_items: int = 20
) -> MiningResult:
    """All (non-empty) frequent item sets by direct subset enumeration.

    Guarded by ``max_items`` because it enumerates ``2^|B|`` candidates.
    """
    if smin < 1:
        raise ValueError(f"smin must be at least 1, got {smin}")
    if db.n_items > max_items:
        raise ValueError(
            f"item base of size {db.n_items} exceeds the brute-force guard "
            f"({max_items}); this oracle is for tiny databases only"
        )
    supports: Dict[int, int] = {}
    for mask in range(1, 1 << db.n_items):
        support = itemset.size(galois.cover(db, mask))
        if support >= smin:
            supports[mask] = support
    return MiningResult(supports, db.item_labels, "oracle-all", smin)


def maximal_frequent_bruteforce(db: TransactionDatabase, smin: int) -> MiningResult:
    """All maximal frequent item sets (via the closed family)."""
    return closed_frequent_bruteforce(db, smin).maximal()


def reconstruct_support(closed: MiningResult, mask: int) -> Optional[int]:
    """Support of an arbitrary item set from the closed family.

    Section 2.3: the support of a frequent item set is the maximum of
    the supports of the closed sets containing it.  Returns ``None``
    when no closed superset exists (the set is not frequent at the
    family's threshold).
    """
    best: Optional[int] = None
    for closed_mask, support in closed.items():
        if mask & ~closed_mask == 0 and (best is None or support > best):
            best = support
    return best


def refine_anytime(
    db: TransactionDatabase, result: MiningResult, smin: int
) -> MiningResult:
    """Turn a salvaged mid-run repository into a trustworthy anytime result.

    The cumulative miners' repository after ``k`` transactions is the
    closed family of the processed *prefix*: a set closed there is
    closed in the full database too (adding transactions can only
    shrink the closure towards the set), but its stored support counts
    prefix transactions only, and item-elimination splices can leave
    reduced sets that are not closed at all.  This pass keeps exactly
    the sets that are closed in the full database, recomputes their
    exact supports via the Galois cover, and re-applies the support
    threshold — so every surviving ``(set, support)`` pair is a true
    member of the closed frequent family.  Cost: one cover computation
    per candidate set, negligible next to the interrupted run.
    """
    refined: Dict[int, int] = {}
    for mask in result:
        if not galois.is_closed(db, mask):
            continue
        support = itemset.size(galois.cover(db, mask))
        if support >= smin:
            refined[mask] = support
    return MiningResult(refined, db.item_labels, result.algorithm, smin)


def check_closed_family(db: TransactionDatabase, result: MiningResult, smin: int) -> None:
    """Assert that ``result`` is exactly the closed frequent family of ``db``.

    Raises :class:`AssertionError` with a descriptive message on the
    first violation.  Used by integration tests and by the benchmark
    harness's ``--verify`` mode.
    """
    for mask, support in result.items():
        true_support = itemset.size(galois.cover(db, mask))
        if support != true_support:
            raise AssertionError(
                f"item set {itemset.to_indices(mask)}: reported support "
                f"{support}, true support {true_support}"
            )
        if support < smin:
            raise AssertionError(
                f"item set {itemset.to_indices(mask)} reported with support "
                f"{support} below smin={smin}"
            )
        if not galois.is_closed(db, mask):
            raise AssertionError(
                f"item set {itemset.to_indices(mask)} is not closed "
                f"(closure is {itemset.to_indices(galois.closure(db, mask))})"
            )
    expected = closed_frequent_bruteforce(db, smin)
    missing = [m for m in expected if m not in result]
    if missing:
        raise AssertionError(
            f"{len(missing)} closed frequent item sets missing, e.g. "
            f"{itemset.to_indices(missing[0])}"
        )

"""The (iceberg) concept lattice over the closed frequent item sets.

Section 2.5 of the paper identifies the closed item sets with the
Galois-closed elements of the connection between items and
transactions.  Those elements, ordered by set inclusion, form a
complete lattice — the *concept lattice* of formal concept analysis;
restricted to a minimum support it is the *iceberg* lattice.  This
module materialises that structure from any mining result:

* covering (Hasse) edges between closed sets,
* meets and joins computed through the closure operator,
* level iteration and DOT export for visualisation.

The lattice view is what turns a flat list of closed sets into the
navigable hierarchy gene-expression analysts actually browse
(specific signatures at the bottom, broad modules at the top).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..data import itemset
from ..data.database import TransactionDatabase
from ..result import MiningResult
from . import galois

__all__ = ["ConceptLattice"]


class ConceptLattice:
    """Hasse structure over a closed frequent family.

    Build it from a mining result plus the database the result was
    mined from (the database is needed for closure computations in
    :meth:`meet` and :meth:`join`).
    """

    def __init__(self, db: TransactionDatabase, closed: MiningResult) -> None:
        self._db = db
        self._closed = closed
        self._parents: Dict[int, List[int]] = {}
        self._children: Dict[int, List[int]] = {}
        self._build()

    @classmethod
    def from_database(
        cls, db: TransactionDatabase, smin: int, algorithm: str = "ista"
    ) -> "ConceptLattice":
        """Mine ``db`` and build the lattice in one step."""
        from ..mining import mine

        return cls(db, mine(db, smin, algorithm=algorithm))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        """Compute covering edges.

        A concept's *parents* are its minimal proper closed supersets.
        Concepts are processed by ascending size; for each concept the
        candidate supersets are filtered to minimal ones.  Quadratic in
        the family size with small constants — lattices are an analysis
        tool, not a mining inner loop.
        """
        masks = sorted(self._closed, key=itemset.size)
        for mask in masks:
            self._parents[mask] = []
            self._children[mask] = []
        for index, mask in enumerate(masks):
            supersets = [
                other
                for other in masks[index + 1 :]
                if mask != other and mask & ~other == 0
            ]
            minimal: List[int] = []
            for candidate in supersets:  # already ordered by ascending size
                # candidate is a cover unless it contains a smaller cover
                if not any(kept & ~candidate == 0 for kept in minimal):
                    minimal.append(candidate)
            self._parents[mask] = minimal
            for parent in minimal:
                self._children[parent].append(mask)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._closed)

    def __contains__(self, mask: int) -> bool:
        return mask in self._closed

    def support(self, mask: int) -> int:
        """Support of a concept."""
        return self._closed[mask]

    def parents(self, mask: int) -> List[int]:
        """Minimal proper closed supersets (upper covers by inclusion)."""
        return list(self._parents[mask])

    def children(self, mask: int) -> List[int]:
        """Maximal proper closed subsets within the family."""
        return list(self._children[mask])

    def roots(self) -> List[int]:
        """Concepts with no closed subset in the family (most general)."""
        return [mask for mask in self._closed if not self._children[mask]]

    def leaves(self) -> List[int]:
        """Concepts with no closed superset in the family (most specific);
        exactly the maximal frequent sets."""
        return [mask for mask in self._closed if not self._parents[mask]]

    def hasse_edges(self) -> Iterator[Tuple[int, int]]:
        """All covering edges as ``(subset, superset)`` pairs."""
        for mask, parents in self._parents.items():
            for parent in parents:
                yield mask, parent

    def iter_levels(self) -> Iterator[List[int]]:
        """Concepts grouped by item count, ascending."""
        by_size: Dict[int, List[int]] = {}
        for mask in self._closed:
            by_size.setdefault(itemset.size(mask), []).append(mask)
        for size in sorted(by_size):
            yield by_size[size]

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------

    def join(self, a: int, b: int) -> Optional[int]:
        """Least closed superset of both, ``None`` if it fell below smin.

        In the full lattice ``join(A, B) = closure(A ∪ B)``.
        """
        joined = galois.closure(self._db, a | b)
        return joined if joined in self._closed else None

    def meet(self, a: int, b: int) -> Optional[int]:
        """Greatest closed subset of both, ``None`` if none is in the family.

        In the full lattice ``meet(A, B) = closure(A ∩ B)`` (the closure
        of an intersection of closed sets stays inside both).
        """
        met = galois.closure(self._db, a & b)
        if met & ~a or met & ~b:
            # a & b had empty cover and closed to something bigger.
            return None
        return met if met in self._closed else None

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dot(self, max_label_items: int = 4) -> str:
        """Graphviz DOT text of the Hasse diagram (edges point upward
        from more general to more specific concepts)."""
        labels = self._closed.item_labels
        lines = ["digraph iceberg {", "  rankdir=BT;", "  node [shape=box];"]
        for mask, support in self._closed.items():
            shown = itemset.canonical_tuple(mask, labels)
            text = ", ".join(str(x) for x in shown[:max_label_items])
            if len(shown) > max_label_items:
                text += f", … (+{len(shown) - max_label_items})"
            lines.append(f'  n{mask} [label="{text}\\nsupp={support}"];')
        for child, parent in self.hasse_edges():
            lines.append(f"  n{child} -> n{parent};")
        lines.append("}")
        return "\n".join(lines)

"""Minimal generators of closed item sets.

A *generator* of a closed set ``C`` is any item set whose closure is
``C``; a *minimal* generator has no proper subset with the same
support.  Minimal generators are the left-hand sides of non-redundant
association rules and the usual companion structure of a closed family
(the pair (minimal generators, closed sets) is lossless like the closed
family alone, but supports rule generation without re-scanning).

The search uses the classic *free set* levelwise scheme: a set is free
iff every proper subset has strictly larger support; free sets are
downward closed, so candidates of level ``k`` are joins of free sets of
level ``k-1``.  A free subset of ``C`` whose support equals ``C``'s is
a minimal generator of ``C`` (its closure is ``C``), and extending it
cannot yield further free sets — which is what keeps the search small.
"""

from __future__ import annotations

from typing import Dict, List

from ..data import itemset
from ..data.database import TransactionDatabase
from ..result import MiningResult

__all__ = ["minimal_generators", "all_minimal_generators"]


def minimal_generators(
    db: TransactionDatabase,
    closed_mask: int,
    support: int,
    max_generator_size: int = 8,
) -> List[int]:
    """Minimal generators of one closed set.

    ``support`` is the (known) support of ``closed_mask``.  The search
    stops at ``max_generator_size`` items (on realistic data minimal
    generators are small); if the guard cuts the search before any
    generator is found, the closed set itself is returned as the
    (trivially correct) generator.
    """
    items = itemset.to_indices(closed_mask)
    generators: List[int] = []

    # Level 1: single items are always free.
    free: Dict[int, int] = {}
    cover_cache: Dict[int, int] = {}
    for item in items:
        mask = 1 << item
        cover = db.cover(mask)
        item_support = itemset.size(cover)
        if item_support == support:
            generators.append(mask)
        else:
            free[mask] = item_support
            cover_cache[mask] = cover

    level = 2
    while free and level <= max_generator_size:
        next_free: Dict[int, int] = {}
        next_covers: Dict[int, int] = {}
        masks = sorted(free)
        for index, left in enumerate(masks):
            for right in masks[index + 1 :]:
                candidate = left | right
                if itemset.size(candidate) != level or candidate in next_free:
                    continue
                # Freeness needs every (level-1)-subset free with larger
                # support; checking the two parents is necessary but the
                # rest must be checked too.
                if not _subsets_are_free(candidate, free):
                    continue
                cover = cover_cache[left] & cover_cache[right]
                candidate_support = itemset.size(cover)
                if candidate_support == support:
                    # Free + equal support: a minimal generator.
                    generators.append(candidate)
                elif candidate_support > support and _is_free(
                    candidate, candidate_support, free
                ):
                    next_free[candidate] = candidate_support
                    next_covers[candidate] = cover
        free = next_free
        cover_cache = next_covers
        level += 1

    if not generators:
        return [closed_mask]
    return generators


def _subsets_are_free(candidate: int, free: Dict[int, int]) -> bool:
    """All one-item-removed subsets must be free (downward closure)."""
    remaining = candidate
    while remaining:
        low = remaining & -remaining
        if candidate ^ low not in free:
            return False
        remaining ^= low
    return True


def _is_free(candidate: int, candidate_support: int, free: Dict[int, int]) -> bool:
    """Strictly smaller support than every one-item-removed subset."""
    remaining = candidate
    while remaining:
        low = remaining & -remaining
        if free[candidate ^ low] == candidate_support:
            return False
        remaining ^= low
    return True


def all_minimal_generators(
    db: TransactionDatabase,
    closed: MiningResult,
    max_generator_size: int = 8,
) -> Dict[int, List[int]]:
    """Minimal generators for every closed set of a family.

    Returns ``{closed mask: [generator masks]}``.
    """
    return {
        mask: minimal_generators(db, mask, support, max_generator_size)
        for mask, support in closed.items()
    }

"""The Galois connection behind intersection mining (Sections 2.4 / 2.5).

Between the power set of the item base ``2^B`` and the power set of the
transaction indices ``2^{0..n-1}`` the paper considers

    ``f(I) = K_T(I)``  — the cover: indices of transactions containing I,
    ``g(K) = \\bigcap_{k in K} t_k`` — the intersection of transactions.

``(f, g)`` is a Galois connection, hence ``f∘g`` and ``g∘f`` are closure
operators, and ``f`` restricted to the closed item sets is a bijection
onto the closed tid sets.  Everything in this module is a direct, naive
transcription of those definitions; it is the *ground truth* layer that
the optimised miners are tested against.

Item sets and tid sets are both bitmask integers (items over item codes,
tid sets over transaction indices).
"""

from __future__ import annotations

from typing import List

from ..data import itemset
from ..data.database import TransactionDatabase

__all__ = [
    "cover",
    "intersection_of",
    "closure",
    "tid_closure",
    "is_closed",
    "is_tid_closed",
    "all_tids",
    "item_base_mask",
]


def item_base_mask(db: TransactionDatabase) -> int:
    """Bitmask of the full item base ``B``."""
    return (1 << db.n_items) - 1


def all_tids(db: TransactionDatabase) -> int:
    """Bitmask of all transaction indices ``{0, ..., n-1}``."""
    return (1 << db.n_transactions) - 1


def cover(db: TransactionDatabase, items: int) -> int:
    """``f(I) = K_T(I)``: tid mask of the transactions containing ``items``.

    Implemented literally (containment test per transaction) rather than
    through the cached vertical representation — this module is the
    oracle and must not share machinery with the code it checks.
    """
    result = 0
    for tid, transaction in enumerate(db.transactions):
        if items & ~transaction == 0:
            result |= 1 << tid
    return result


def intersection_of(db: TransactionDatabase, tids: int) -> int:
    """``g(K)``: intersection of the transactions indexed by ``tids``.

    ``g`` of the empty tid set is the full item base (the neutral
    element of intersection), matching the Galois-connection convention.
    """
    result = item_base_mask(db)
    remaining = tids
    while remaining:
        low = remaining & -remaining
        result &= db.transactions[low.bit_length() - 1]
        remaining ^= low
    return result


def closure(db: TransactionDatabase, items: int) -> int:
    """The closure operator ``g∘f`` on item sets.

    An item set whose cover is empty closes to the full item base.
    """
    return intersection_of(db, cover(db, items))


def tid_closure(db: TransactionDatabase, tids: int) -> int:
    """The closure operator ``f∘g`` on tid sets."""
    return cover(db, intersection_of(db, tids))


def is_closed(db: TransactionDatabase, items: int) -> bool:
    """True iff ``items`` equals the intersection of its covering transactions.

    Note: by this (Section 2.4) definition an item set with an empty
    cover is closed only if it is the whole item base.
    """
    return closure(db, items) == items


def is_tid_closed(db: TransactionDatabase, tids: int) -> bool:
    """True iff ``tids`` is closed under ``f∘g``."""
    return tid_closure(db, tids) == tids


def closed_tid_sets(db: TransactionDatabase, min_size: int = 1) -> List[int]:
    """All closed tid sets of size at least ``min_size`` (naive enumeration).

    Exponential in the number of transactions — strictly for tests on
    tiny databases, where it realises the Section 2.5 statement that the
    closed frequent item sets are the images under ``g`` of the closed
    tid sets of size >= smin.
    """
    n = db.n_transactions
    found = []
    for tids in range(1, 1 << n):
        if itemset.size(tids) >= min_size and is_tid_closed(db, tids):
            found.append(tids)
    return found

"""Benchmark harness: sweeps, figure specs, paper-style reporting."""

from .figures import FIGURES, FigureSpec, PAPER_ALGORITHMS, run_figure
from .harness import Measurement, SweepResult, run_sweep

__all__ = [
    "FIGURES",
    "FigureSpec",
    "PAPER_ALGORITHMS",
    "run_figure",
    "Measurement",
    "SweepResult",
    "run_sweep",
]

"""Benchmark harness: sweeps, figure specs, paper-style reporting."""

from .figures import FIGURES, FigureSpec, PAPER_ALGORITHMS, run_figure
from .harness import (
    Measurement,
    SweepResult,
    compare_kernel_baselines,
    run_kernel_microbench,
    run_sweep,
)

__all__ = [
    "FIGURES",
    "FigureSpec",
    "PAPER_ALGORITHMS",
    "run_figure",
    "Measurement",
    "SweepResult",
    "run_sweep",
    "run_kernel_microbench",
    "compare_kernel_baselines",
]

"""Terminal rendering of sweep results as the paper's figures.

The paper's Figures 5-8 plot ``log10(time/seconds)`` against the
minimum support, one line per algorithm.  :func:`render_figure` draws
the same chart with Unicode characters so the benchmark harness and the
CLI can show the curve *shapes* — which is what the reproduction is
about — directly in a terminal or a Markdown code block.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from .harness import SweepResult

__all__ = ["render_figure", "MARKERS"]

#: Plot markers, assigned to algorithms in line-up order.
MARKERS = "ox+*#@%&"


def render_figure(
    sweep: SweepResult,
    width: int = 64,
    height: int = 18,
    value_floor: float = 1e-3,
) -> str:
    """Render a sweep as a log-time-vs-support character chart.

    The horizontal axis is the minimum support (descending to the
    right, as difficulty increases), the vertical axis is
    ``log10(seconds)``.  Cells that were skipped (past the time limit)
    simply end their line, exactly like the truncated curves in the
    paper's figures.
    """
    if width < 16 or height < 6:
        raise ValueError("chart needs at least 16x6 characters")
    points: Dict[str, List[Tuple[int, float]]] = {}
    for algorithm in sweep.algorithms:
        series = []
        for smin in sweep.smin_values:
            cell = sweep.get(algorithm, smin)
            if cell is None or cell.skipped:
                continue
            series.append((smin, math.log10(max(cell.seconds, value_floor))))
        if series:
            points[algorithm] = series
    if not points:
        return "(no measurements)"

    lows = [value for series in points.values() for _, value in series]
    y_min = math.floor(min(lows))
    y_max = math.ceil(max(lows))
    if y_max == y_min:
        y_max = y_min + 1
    smin_values = sweep.smin_values  # descending
    x_of = {smin: index for index, smin in enumerate(smin_values)}
    x_span = max(len(smin_values) - 1, 1)

    grid = [[" "] * width for _ in range(height)]
    for rank, (algorithm, series) in enumerate(points.items()):
        marker = MARKERS[rank % len(MARKERS)]
        previous: Optional[Tuple[int, int]] = None
        for smin, value in series:
            x = round(x_of[smin] / x_span * (width - 1))
            y = round((value - y_min) / (y_max - y_min) * (height - 1))
            row = height - 1 - y
            grid[row][x] = marker
            if previous is not None:
                _draw_segment(grid, previous, (x, row), marker)
            previous = (x, row)

    axis_width = 6
    lines = []
    for row_index, row in enumerate(grid):
        value = y_max - (y_max - y_min) * row_index / (height - 1)
        label = f"{value:+.1f} " if row_index % 3 == 0 else " " * 5
        lines.append(label.rjust(axis_width) + "|" + "".join(row))
    lines.append(" " * axis_width + "+" + "-" * width)
    tick_line = [" "] * width
    tick_labels = " " * (axis_width + 1)
    for smin in smin_values:
        x = round(x_of[smin] / x_span * (width - 1))
        tick_line[x] = "|"
    lines.append(" " * axis_width + " " + "".join(tick_line))
    label_row = [" "] * (width + axis_width + 1)
    for smin in smin_values:
        x = axis_width + 1 + round(x_of[smin] / x_span * (width - 1))
        text = str(smin)
        for offset, char in enumerate(text):
            position = x + offset
            if position < len(label_row):
                label_row[position] = char
    lines.append("".join(label_row))
    legend = "  ".join(
        f"{MARKERS[rank % len(MARKERS)]}={algorithm}"
        for rank, algorithm in enumerate(points)
    )
    lines.append("")
    lines.append(" " * axis_width + f"smin ->   log10(t/s) vs minimum support")
    lines.append(" " * axis_width + legend)
    return "\n".join(lines)


def _draw_segment(grid, start, end, marker) -> None:
    """Sparse linear interpolation between two plotted points."""
    (x0, row0), (x1, row1) = start, end
    steps = max(abs(x1 - x0), abs(row1 - row0))
    for step in range(1, steps):
        x = round(x0 + (x1 - x0) * step / steps)
        row = round(row0 + (row1 - row0) * step / steps)
        if grid[row][x] == " ":
            grid[row][x] = "."

"""One specification per exhibit of the paper's evaluation.

Each :class:`FigureSpec` binds a workload generator, a minimum-support
sweep and an algorithm line-up, mirroring Figures 5-8 (plus Table 1 and
the ablation exhibits DESIGN.md calls out).  Sizes default to scales a
pure-Python run finishes in minutes; the ``scale`` knob of
:func:`run_figure` shrinks or grows workload and sweep together for
quick smoke runs versus full evaluations.

The expected *shape* column of each spec records what the paper's
exhibit shows, so ``EXPERIMENTS.md`` can be regenerated with a
paper-vs-measured verdict per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..data.database import TransactionDatabase
from ..datasets import (
    ncbi60_like,
    quest_baskets,
    thrombin_like,
    webview_transposed,
    yeast_compendium,
)
from .harness import SweepResult, run_sweep

__all__ = ["FigureSpec", "FIGURES", "run_figure", "PAPER_ALGORITHMS"]

#: The paper's benchmark line-up (Figures 5, 7, 8; Figure 6 lacks the
#: enumeration miners because they crashed there).
PAPER_ALGORITHMS = ("ista", "carpenter-table", "carpenter-lists", "fpgrowth", "lcm")


@dataclass
class FigureSpec:
    """A reproducible exhibit: workload + sweep + algorithms."""

    name: str
    paper_exhibit: str
    description: str
    expected_shape: str
    dataset: Callable[..., TransactionDatabase]
    dataset_options: Dict[str, object]
    smin_values: Sequence[int]
    algorithms: Sequence[str] = PAPER_ALGORITHMS
    algorithm_options: Dict[str, dict] = field(default_factory=dict)
    time_limit: float = 60.0

    def build_database(self, scale: float = 1.0) -> TransactionDatabase:
        """Instantiate the workload, scaling size parameters."""
        options = dict(self.dataset_options)
        if scale != 1.0:
            for key, value in options.items():
                if key in _SCALABLE and isinstance(value, int):
                    options[key] = max(1, int(round(value * scale)))
        return self.dataset(**options)

    def scaled_smin(self, scale: float = 1.0) -> List[int]:
        """Scale the support sweep along with the transaction count."""
        if scale == 1.0 or not _scales_transactions(self.dataset_options):
            return list(self.smin_values)
        scaled = sorted({max(1, int(round(s * scale))) for s in self.smin_values})
        return scaled


_SCALABLE = {
    "n_genes",
    "n_conditions",
    "n_cell_lines",
    "n_records",
    "n_features",
    "n_sessions",
    "n_pages",
    "n_transactions",
    "n_items",
}


def _scales_transactions(options: Dict[str, object]) -> bool:
    return any(
        key in options for key in ("n_conditions", "n_cell_lines", "n_records", "n_pages", "n_transactions")
    )


FIGURES: Dict[str, FigureSpec] = {
    "fig5-yeast": FigureSpec(
        name="fig5-yeast",
        paper_exhibit="Figure 5",
        description="Runtime vs minimum support, yeast compendium shape "
        "(300 transactions, thousands of gene/direction items).",
        expected_shape=(
            "Enumeration miners competitive only at high support; below the "
            "crossover IsTa stays flat while FP-close/LCM blow up; IsTa beats "
            "both Carpenter variants throughout."
        ),
        dataset=yeast_compendium,
        dataset_options={"n_genes": 6316, "n_conditions": 300},
        smin_values=(30, 24, 20, 16, 14, 12, 10),
    ),
    "fig6-ncbi60": FigureSpec(
        name="fig6-ncbi60",
        paper_exhibit="Figure 6",
        description="Runtime vs minimum support, NCBI60 shape (60 cell-line "
        "transactions, dense module structure).",
        expected_shape=(
            "IsTa and table-based Carpenter on par, list-based Carpenter "
            "slower by a roughly constant factor; the enumeration miners "
            "are not usable at these supports (the paper's crashed; ours "
            "hit the time limit)."
        ),
        dataset=ncbi60_like,
        dataset_options={"n_genes": 1500, "n_cell_lines": 60},
        smin_values=(56, 54, 52, 50, 48),
        algorithms=("ista", "carpenter-table", "carpenter-lists"),
    ),
    "fig7-thrombin": FigureSpec(
        name="fig7-thrombin",
        paper_exhibit="Figure 7",
        description="Runtime vs minimum support, thrombin subset shape "
        "(64 sparse records over a very large feature base).",
        expected_shape=(
            "Behaves like NCBI60: Carpenter-table and IsTa on par with IsTa "
            "ahead at the lowest support; list-based Carpenter a constant "
            "factor slower; FP-close/LCM competitive only at the high end "
            "of the sweep."
        ),
        dataset=thrombin_like,
        dataset_options={"n_records": 64, "n_features": 4000},
        smin_values=(48, 44, 40, 36, 32),
    ),
    "fig8-webview": FigureSpec(
        name="fig8-webview",
        paper_exhibit="Figure 8",
        description="Runtime vs minimum support, transposed BMS-WebView-1 "
        "shape (page transactions over session items).",
        expected_shape=(
            "Like the yeast data: FP-close/LCM competitive only down to a "
            "moderate support, IsTa clearly ahead of both Carpenter "
            "variants, table-based slightly ahead of list-based."
        ),
        dataset=webview_transposed,
        dataset_options={"n_sessions": 3000, "n_pages": 300},
        smin_values=(20, 12, 8, 6, 4, 3, 2),
    ),
    "ablation-regime": FigureSpec(
        name="ablation-regime",
        paper_exhibit="Section 1/5 (discussion)",
        description="Standard market-basket regime (few items, many "
        "transactions) where enumeration should win.",
        expected_shape=(
            "The tables turn: FP-growth/LCM/Eclat stay fast while the "
            "intersection miners pay for the many transactions — the "
            "paper's explanation of why intersection is niche."
        ),
        dataset=quest_baskets,
        dataset_options={"n_transactions": 2000, "n_items": 100},
        smin_values=(400, 200, 100, 50),
        algorithms=("ista", "carpenter-table", "fpgrowth", "lcm", "eclat"),
    ),
}


def run_figure(
    name: str,
    scale: float = 1.0,
    repeats: int = 1,
    time_limit: Optional[float] = None,
    algorithms: Optional[Sequence[str]] = None,
) -> SweepResult:
    """Run one exhibit and return its sweep result.

    >>> sweep = run_figure("fig6-ncbi60", scale=0.2)  # doctest: +SKIP
    >>> print(sweep.format_table("log"))              # doctest: +SKIP
    """
    spec = FIGURES.get(name)
    if spec is None:
        raise ValueError(f"unknown figure {name!r}; available: {sorted(FIGURES)}")
    db = spec.build_database(scale)
    return run_sweep(
        db,
        spec.scaled_smin(scale),
        list(algorithms if algorithms is not None else spec.algorithms),
        dataset=spec.name,
        repeats=repeats,
        time_limit=spec.time_limit if time_limit is None else time_limit,
        algorithm_options=spec.algorithm_options,
    )

"""Benchmark harness: support sweeps in the style of the paper's figures.

Each figure of the paper plots ``log10(time in seconds)`` against the
minimum support for a fixed data set and a fixed algorithm line-up.
:func:`run_sweep` reproduces that measurement: for every support value
and algorithm it times the mining call, captures the operation counters
(the language-independent work measure), and records the number of
closed sets found.  An algorithm that exceeds ``time_limit`` at some
support is not run at lower supports — the same early-stopping the
paper applied to the [14] implementation ("we terminated the run").

:func:`SweepResult.format_table` prints the paper-style series.

The bottom of the module is the kernel microbenchmark suite:
:func:`run_kernel_microbench` times the batched set-algebra primitives
of every registered :mod:`repro.kernels` backend on a dense
gene-expression-style fixture, and :func:`compare_kernel_baselines`
checks a fresh run against a committed baseline — by *speedup ratio*
by default, which is machine-independent and therefore safe to gate CI
on.
"""

from __future__ import annotations

import math
import multiprocessing
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..closure.verify import check_closed_family
from ..data.database import TransactionDatabase
from ..kernels import available_backends, get_backend
from ..mining import mine
from ..obs import InstrumentedBackend, MetricsRegistry
from ..runtime import MiningInterrupted
from ..stats import OperationCounters

__all__ = [
    "Measurement",
    "SweepResult",
    "run_sweep",
    "run_kernel_microbench",
    "compare_kernel_baselines",
]

#: Cell statuses: ``ok`` (measured), ``budget`` (the in-worker guard
#: tripped and reported back), ``timeout`` (the worker stopped polling
#: and was hard-killed by the parent), ``crashed`` (the worker process
#: died without reporting), ``skipped`` (not run — an earlier cell of
#: the same algorithm already failed).
CELL_STATUSES = ("ok", "budget", "timeout", "crashed", "skipped")


@dataclass
class Measurement:
    """One (algorithm, smin) cell of a sweep."""

    algorithm: str
    smin: int
    seconds: float
    n_closed: int
    counters: Dict[str, int]
    skipped: bool = False
    status: str = "ok"

    @property
    def log_seconds(self) -> float:
        """``log10`` of the runtime — the paper's vertical axis."""
        return math.log10(self.seconds) if self.seconds > 0 else float("-inf")


@dataclass
class SweepResult:
    """All measurements of one sweep, indexed ``[algorithm][smin]``."""

    dataset: str
    smin_values: List[int]
    algorithms: List[str]
    cells: Dict[Tuple[str, int], Measurement] = field(default_factory=dict)

    def get(self, algorithm: str, smin: int) -> Optional[Measurement]:
        return self.cells.get((algorithm, smin))

    def series(self, algorithm: str) -> List[Optional[float]]:
        """Runtime series of one algorithm over the sweep (None = skipped)."""
        out = []
        for smin in self.smin_values:
            cell = self.get(algorithm, smin)
            out.append(None if cell is None or cell.skipped else cell.seconds)
        return out

    def winner(self, smin: int) -> Optional[str]:
        """Fastest algorithm at one support value."""
        best_name, best_time = None, None
        for algorithm in self.algorithms:
            cell = self.get(algorithm, smin)
            if cell is None or cell.skipped:
                continue
            if best_time is None or cell.seconds < best_time:
                best_name, best_time = algorithm, cell.seconds
        return best_name

    def crossover(self, left: str, right: str) -> Optional[int]:
        """Largest smin at which ``left`` is strictly faster than ``right``.

        The paper's figures are all about where the intersection miners
        start beating the enumeration miners as support drops; this
        pinpoints that support value (``None`` if ``left`` never wins).
        """
        for smin in sorted(self.smin_values, reverse=True):
            a, b = self.get(left, smin), self.get(right, smin)
            if a is None or a.skipped:
                continue
            if b is None or b.skipped or a.seconds < b.seconds:
                return smin
        return None

    def as_dict(self) -> Dict:
        """JSON-serialisable form; cells keep their counter snapshots.

        This is what the ``BENCH_*.json`` records are built from, so a
        committed sweep carries the cost-model telemetry (intersections,
        node counts, eliminations) alongside the timings.
        """
        return {
            "dataset": self.dataset,
            "smin_values": list(self.smin_values),
            "algorithms": list(self.algorithms),
            "cells": [
                {
                    "algorithm": cell.algorithm,
                    "smin": cell.smin,
                    "seconds": None if cell.skipped else cell.seconds,
                    "n_closed": cell.n_closed,
                    "status": cell.status,
                    "counters": dict(cell.counters),
                }
                for (_, _), cell in sorted(self.cells.items())
            ],
        }

    def format_table(self, value: str = "seconds") -> str:
        """Paper-style table: rows = smin, columns = algorithms.

        ``value`` is ``"seconds"``, ``"log"`` (the figures' axis),
        ``"closed"`` (result sizes) or any counter name.
        """
        header = ["smin"] + list(self.algorithms)
        rows: List[List[str]] = []
        for smin in self.smin_values:
            row = [str(smin)]
            for algorithm in self.algorithms:
                cell = self.get(algorithm, smin)
                if cell is None or cell.skipped:
                    row.append("--")
                elif value == "seconds":
                    row.append(f"{cell.seconds:.4f}")
                elif value == "log":
                    row.append(f"{cell.log_seconds:+.2f}")
                elif value == "closed":
                    row.append(str(cell.n_closed))
                else:
                    row.append(str(cell.counters.get(value, 0)))
            rows.append(row)
        widths = [
            max(len(header[col]), *(len(row[col]) for row in rows)) if rows else len(header[col])
            for col in range(len(header))
        ]
        lines = [
            "  ".join(title.rjust(width) for title, width in zip(header, widths)),
            "  ".join("-" * width for width in widths),
        ]
        for row in rows:
            lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)


def _cell_worker(connection, db, smin, algorithm, options, hard_limit) -> None:
    """Subprocess body for one hard-limited measurement.

    The guard stops the run at ``hard_limit`` from the inside (sending
    a ``("budget", ...)`` report through the pipe); the parent's
    ``terminate()`` stays as the backstop for a worker that stops
    polling (e.g. stuck in numpy).  A worker that dies outright never
    sends anything — the parent reads the EOF/exit code and records the
    cell as crashed, never as a budget trip.
    """
    counters = OperationCounters()
    start = time.perf_counter()
    try:
        mined = mine(
            db,
            smin,
            algorithm=algorithm,
            counters=counters,
            timeout=hard_limit,
            **options,
        )
    except MiningInterrupted as exc:
        connection.send(("budget", str(exc)))
    else:
        elapsed = time.perf_counter() - start
        connection.send(("ok", (elapsed, len(mined), counters.as_dict())))
    connection.close()


def _measure_cell(
    db: TransactionDatabase,
    smin: int,
    algorithm: str,
    options: dict,
    repeats: int,
    hard_limit: Optional[float],
    isolation: str = "process",
) -> Tuple[str, Optional[Tuple[float, int, Dict[str, int]]]]:
    """One measurement, hard-limited according to ``isolation``.

    ``"process"`` runs the cell in a killable fork; ``"guard"`` runs it
    in-process under a :class:`~repro.runtime.RunGuard` deadline (no
    fork overhead, cooperative); ``"none"`` applies no hard limit.

    Returns ``(status, measurement)``: ``("ok", (seconds, n_closed,
    counters))`` for a completed cell, otherwise one of ``("budget",
    None)`` — the in-worker guard tripped and said so — ``("timeout",
    None)`` — the worker stopped responding and the parent killed it —
    or ``("crashed", None)`` — the worker process died without
    reporting.  The distinction matters downstream: a budget trip is
    the expected "run terminated" outcome of the paper's methodology, a
    crash is a bug to investigate.
    """
    if hard_limit is None or isolation == "none":
        best = None
        for _ in range(repeats):
            counters = OperationCounters()
            start = time.perf_counter()
            mined = mine(db, smin, algorithm=algorithm, counters=counters, **options)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, len(mined), counters.as_dict())
        return "ok", best
    if isolation == "guard":
        best = None
        for _ in range(repeats):
            counters = OperationCounters()
            start = time.perf_counter()
            try:
                mined = mine(
                    db,
                    smin,
                    algorithm=algorithm,
                    counters=counters,
                    timeout=hard_limit,
                    **options,
                )
            except MiningInterrupted:
                return "budget", None
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, len(mined), counters.as_dict())
        return "ok", best
    context = multiprocessing.get_context("fork")
    best = None
    for _ in range(repeats):
        receiver, sender = context.Pipe(duplex=False)
        worker = context.Process(
            target=_cell_worker,
            args=(sender, db, smin, algorithm, options, hard_limit),
        )
        worker.start()
        sender.close()
        # The in-worker guard fires at hard_limit; the extra second of
        # poll is the grace period for it to report back before the
        # parent falls back to a hard kill.
        if receiver.poll(hard_limit + 1.0):
            try:
                status, payload = receiver.recv()
            except EOFError:
                # The pipe closed without a report: the worker died
                # (segfault, os._exit, OOM-kill) — not a budget trip.
                worker.join()
                receiver.close()
                return "crashed", None
            worker.join()
            receiver.close()
            if status == "budget":
                return "budget", None
            if worker.exitcode != 0:  # pragma: no cover - report then death
                return "crashed", None
            if best is None or payload[0] < best[0]:
                best = payload
        else:
            worker.terminate()
            worker.join()
            receiver.close()
            return "timeout", None
    return "ok", best


def run_sweep(
    db: TransactionDatabase,
    smin_values: Sequence[int],
    algorithms: Sequence[str],
    dataset: str = "",
    repeats: int = 1,
    time_limit: Optional[float] = None,
    verify: bool = False,
    algorithm_options: Optional[Dict[str, dict]] = None,
    hard_limit_factor: float = 5.0,
    isolation: str = "process",
) -> SweepResult:
    """Time every algorithm at every support value.

    ``smin_values`` are swept from high to low support (the paper's
    direction of increasing difficulty).  An algorithm whose cell
    exceeds ``time_limit`` is not run at lower supports, and each cell
    is additionally hard-limited after ``time_limit *
    hard_limit_factor`` seconds — the equivalent of the paper
    terminating the runs that did not finish "in reasonable time".
    ``isolation`` selects how: ``"process"`` (default) forks a killable
    subprocess per cell, ``"guard"`` polls a
    :class:`~repro.runtime.RunGuard` deadline in-process (cheaper, and
    the only option where fork is unavailable), ``"none"`` disables the
    hard limit (soft early-stopping still applies).  ``verify=True``
    additionally checks every result against the brute-force oracle
    (tiny databases only, incompatible with the subprocess isolation so
    it runs in-process).  ``algorithm_options`` maps algorithm names to
    extra keyword options for :func:`repro.mining.mine`.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if isolation not in ("process", "guard", "none"):
        raise ValueError(f"unknown isolation {isolation!r}")
    options = algorithm_options or {}
    ordered = sorted(set(int(s) for s in smin_values), reverse=True)
    result = SweepResult(dataset, ordered, list(algorithms))
    hard_limit = None
    if time_limit is not None and not verify:
        hard_limit = max(time_limit * hard_limit_factor, time_limit + 30.0)
    dead = set()
    for smin in ordered:
        for algorithm in algorithms:
            if algorithm in dead:
                result.cells[(algorithm, smin)] = Measurement(
                    algorithm, smin, float("inf"), 0, {},
                    skipped=True, status="skipped",
                )
                continue
            status, measurement = _measure_cell(
                db,
                smin,
                algorithm,
                options.get(algorithm, {}),
                repeats,
                hard_limit,
                isolation,
            )
            if status != "ok":
                result.cells[(algorithm, smin)] = Measurement(
                    algorithm, smin, float("inf"), 0, {},
                    skipped=True, status=status,
                )
                dead.add(algorithm)
                continue
            seconds, n_closed, counter_dict = measurement
            if verify:
                mined = mine(db, smin, algorithm=algorithm, **options.get(algorithm, {}))
                check_closed_family(db, mined, smin)
            result.cells[(algorithm, smin)] = Measurement(
                algorithm, smin, seconds, n_closed, counter_dict
            )
            if time_limit is not None and seconds > time_limit:
                dead.add(algorithm)
    return result


# ----------------------------------------------------------------------
# Kernel microbenchmarks
# ----------------------------------------------------------------------

def _dense_fixture(
    n_rows: int, n_bits: int, density: float, seed: int
) -> List[int]:
    """Deterministic gene-expression-style masks: wide, dense rows."""
    rng = random.Random(seed)
    rows = []
    for _ in range(n_rows):
        # getrandbits gives density 0.5; AND thins towards 0.25, OR
        # thickens towards 0.75 — coarse, but the exact density is
        # irrelevant to the timing as long as it is reproducible.
        mask = rng.getrandbits(n_bits)
        if density < 0.4:
            mask &= rng.getrandbits(n_bits)
        elif density > 0.6:
            mask |= rng.getrandbits(n_bits)
        rows.append(mask)
    return rows


def _time_call(call, repeats: int) -> float:
    """Best-of-``repeats`` seconds per call, batched against timer jitter.

    Microsecond-scale primitives are timed in batches sized to span
    ~200us per sample — single-call timings at that scale are dominated
    by timer granularity and scheduler noise, which is what a tight CI
    tolerance on speedup *ratios* cannot absorb.  The warmup call also
    pays any one-off lazy cost (e.g. a resident table materialising its
    packed rows) outside the measurement.
    """
    call()  # warmup: lazy materialisation, allocator, branch caches
    start = time.perf_counter()
    call()
    once = time.perf_counter() - start
    batch = max(1, min(512, int(2e-4 / once))) if once > 0 else 512
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(batch):
            call()
        elapsed = (time.perf_counter() - start) / batch
        if elapsed < best:
            best = elapsed
    return best


def run_kernel_microbench(
    n_rows: int = 256,
    n_bits: int = 1536,
    density: float = 0.5,
    seed: int = 20110322,
    repeats: int = 3,
    backends: Optional[Sequence[str]] = None,
    cases: Optional[Sequence[str]] = None,
    descent_masks: Optional[Sequence[int]] = None,
) -> Dict:
    """Time the batched kernel primitives on a dense wide fixture.

    The fixture mimics the paper's gene-expression workloads: few rows,
    very many items, high density — exactly the regime where the
    intersection miners (and word-parallel set algebra) win.  Every
    backend runs the same calls on the same masks; each case records
    per-backend best-of-``repeats`` seconds plus the speedup of every
    non-default backend over ``bitint``.

    Absolute seconds are machine-specific; the ``speedup`` ratios are
    not, which is what :func:`compare_kernel_baselines` gates on.

    ``cases`` restricts timing to the named cases (unknown names raise
    ``ValueError``); the result then carries the restriction under
    ``"case_filter"`` so the baseline comparison knows the other cases
    were deliberately not run.  ``descent_masks`` (a prepared
    transaction stream, e.g. the yeast fig-5 workload) enables the
    ``ista_descent`` case: the ``"bitint"`` row times the node-at-a-time
    recursive prefix-tree update, every other backend row times the
    level-batched bounded descent with that backend — so the
    ``speedup:`` ratios read "batched descent over recursive baseline".
    """
    names = list(backends) if backends is not None else available_backends()
    masks = _dense_fixture(n_rows, n_bits, density, seed)
    probe = masks[0]
    # A fresh random mask is (essentially) never a subset of another
    # random mask, so subset_any scans every row for both backends
    # instead of exiting at row zero.
    needle = random.Random(seed + 2).getrandbits(n_bits)
    selector = random.Random(seed + 1).getrandbits(n_rows) | 1
    threshold = max(1, int(n_rows * density * 0.5))
    # Early-abort regime: joints of two density-0.5 masks sit near
    # density 0.25, so a bound at 0.65 * n_bits sentinels every row —
    # the maximal-abort workload for the bounded intersection.
    abort_bound = max(1, int(n_bits * density * 1.3))
    # Query-side case at serving-family scale (closed families run to
    # thousands of rows): the fixture tiled 8x, synthetic supports
    # leaving ~2 rows in 3 eligible — the scan-skipping regime where
    # the support prefilter decides most rows without a containment
    # test.
    query_masks = masks * 8
    query_supports = [1 + (i * 7 % 60) for i in range(len(query_masks))]
    query_bound = 20

    def cases_for(kernel):
        table = kernel.pack(masks, n_bits)
        query_table = kernel.pack(query_masks, n_bits)
        # Dedicated table for intersect_selected: the LCM closure path
        # keeps its transaction table int-backed (no vectorised
        # primitive ever touches it), so the case must measure that
        # regime, not the rows-resident form the shared table takes on
        # after the table-out cases run.
        closure_table = kernel.pack(masks, n_bits)
        counts = kernel.column_counts(masks, n_bits)
        return {
            # The intersect-family cases time the *resident* table
            # forms — the calls the miners' hot loops actually make
            # (table-in/table-out; the one-off pack sits outside the
            # timing).  The mask-list forms they replaced are pinned at
            # ~1.0x by the int<->ndarray conversion at the boundary; the
            # resident forms are where that ceiling breaks.
            "intersect_many": lambda: kernel.intersect_table(table, probe),
            "intersect_count_many": lambda: kernel.intersect_count_table(
                table, probe
            ),
            "intersect_count_many_bounded": lambda: (
                kernel.intersect_count_table_bounded(table, probe, abort_bound)
            ),
            "superset_max_support_bounded": lambda: (
                kernel.superset_max_support_bounded(
                    query_table, query_supports, needle, query_bound
                )
            ),
            "popcount_many": lambda: kernel.popcount_many(masks),
            "popcount_rows": lambda: kernel.popcount_rows(table),
            "subset_any": lambda: kernel.subset_any(table, needle),
            "intersect_selected": lambda: kernel.intersect_selected(
                closure_table, selector
            ),
            "column_counts": lambda: kernel.column_counts(masks, n_bits),
            "bound_filter": lambda: kernel.bound_filter(counts, probe, threshold),
        }

    case_filter = list(cases) if cases is not None else None
    if case_filter is not None:
        known = set(cases_for(get_backend(names[0]))) | {"ista_descent"}
        unknown = sorted(set(case_filter) - known)
        if unknown:
            raise ValueError(
                f"unknown case(s) {unknown}; known cases: {sorted(known)}"
            )

    def selected(case_dict):
        if case_filter is None:
            return case_dict
        return {k: v for k, v in case_dict.items() if k in case_filter}

    cases: Dict[str, Dict[str, float]] = {}
    kernel_metrics: Dict[str, Dict[str, int]] = {}
    for name in names:
        kernel = get_backend(name)
        timed_cases = selected(cases_for(kernel))
        for case, call in timed_cases.items():
            cases.setdefault(case, {})[name] = _time_call(call, repeats)
        # One instrumented pass per backend: the per-primitive call and
        # estimated-bytes counters for the exact case workload above.
        # Kept as its own top-level section (not inside ``cases``) so
        # the speedup/seconds comparison of compare_kernel_baselines is
        # untouched by counter churn.
        registry = MetricsRegistry()
        instrumented = InstrumentedBackend(kernel, registry)
        for call in selected(cases_for(instrumented)).values():
            call()
        kernel_metrics[name] = {
            metric_name: value
            for metric_name, value in registry.snapshot()["counters"].items()
            if value
        }

    if descent_masks is not None and (
        case_filter is None or "ista_descent" in case_filter
    ):
        # The IsTa repository-update workload: recursive node-at-a-time
        # descent as the "bitint" reference row, level-batched bounded
        # descent (per backend) for the others — the ratio is the
        # batched descent's win over the pre-existing baseline.
        from ..core.prefix_tree import PrefixTree

        stream = list(descent_masks)

        def time_descent(batched, kernel):
            def call():
                tree = PrefixTree(kernel=kernel, batched=batched)
                for tx_mask in stream:
                    tree.add_transaction(tx_mask)

            return _time_call(call, repeats)

        descent_row: Dict[str, float] = {}
        for name in names:
            kernel = get_backend(name)
            if name == "bitint":
                descent_row[name] = time_descent(False, kernel)
            else:
                descent_row[name] = time_descent(True, kernel)
        cases["ista_descent"] = descent_row

    for case, timings in cases.items():
        reference = timings.get("bitint")
        if reference:
            for name in names:
                if name != "bitint" and timings.get(name):
                    timings[f"speedup:{name}"] = reference / timings[name]

    speedups = [
        value
        for timings in cases.values()
        for key, value in timings.items()
        if key.startswith("speedup:") and value > 0
    ]
    geomean = (
        math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        if speedups
        else None
    )
    result = {
        "fixture": {
            "n_rows": n_rows,
            "n_bits": n_bits,
            "density": density,
            "seed": seed,
            "repeats": repeats,
        },
        "backends": names,
        "cases": cases,
        "kernel_metrics": kernel_metrics,
        "summary": {"geomean_speedup": geomean},
    }
    if case_filter is not None:
        result["case_filter"] = case_filter
    return result


def compare_kernel_baselines(
    baseline: Dict,
    fresh: Dict,
    mode: str = "speedup",
    tolerance: float = 0.5,
    require_speedup: Optional[float] = None,
    per_case_floors: Optional[Dict[str, float]] = None,
) -> List[str]:
    """Compare a fresh microbench run against a committed baseline.

    Returns a list of regression messages (empty means the gate
    passes).  ``mode="speedup"`` (default, machine-independent)
    requires every recorded ``speedup:<backend>`` ratio to stay within
    ``tolerance`` (relative) of the baseline ratio; ``mode="seconds"``
    requires absolute per-case seconds not to regress by more than
    ``tolerance`` (relative) — only meaningful on the machine that
    recorded the baseline.  ``require_speedup`` additionally demands a
    fresh geometric-mean speedup of at least that factor, regardless of
    what the baseline recorded.  ``per_case_floors`` maps case names
    (``"name"``, binding every ratio of the case; or
    ``"name@backend"``, binding only that backend's ratio) to absolute
    speedup floors the fresh run must clear — hard promises for
    specific primitives (e.g. the resident intersect family),
    independent of the baseline and of ``tolerance``.  Floors committed
    in the baseline itself (a top-level ``"floors"`` mapping with the
    same spec syntax) apply automatically on every comparison;
    ``per_case_floors`` entries override a committed floor for the same
    spec.

    Baseline rows for backends the fresh run did not exercise (its
    ``"backends"`` list — e.g. ``native`` on an install without the
    extension) are skipped rather than failed: an absent optional
    backend is a supported configuration, not a regression.  Whole
    cases are likewise skipped when the fresh run carries a
    ``"case_filter"`` naming a deliberate timing restriction — this
    extends to floors (committed or passed) whose case was restricted
    out of the fresh run.
    """
    if mode not in ("speedup", "seconds"):
        raise ValueError(f"mode must be 'speedup' or 'seconds', got {mode!r}")
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    failures: List[str] = []
    fresh_backends = set(fresh.get("backends", []))
    case_filter = fresh.get("case_filter")

    def backend_of(key: str) -> str:
        return key.split(":", 1)[1] if key.startswith("speedup:") else key

    for case, base_timings in baseline.get("cases", {}).items():
        fresh_timings = fresh.get("cases", {}).get(case)
        if fresh_timings is None:
            if case_filter is not None and case not in case_filter:
                continue
            failures.append(f"{case}: missing from fresh run")
            continue
        for key, base_value in base_timings.items():
            if fresh_backends and backend_of(key) not in fresh_backends:
                continue
            fresh_value = fresh_timings.get(key)
            if fresh_value is None:
                failures.append(f"{case}/{key}: missing from fresh run")
                continue
            if mode == "speedup":
                if not key.startswith("speedup:"):
                    continue
                floor = base_value * (1.0 - tolerance)
                if fresh_value < floor:
                    failures.append(
                        f"{case}/{key}: speedup {fresh_value:.2f}x fell below "
                        f"{floor:.2f}x (baseline {base_value:.2f}x, "
                        f"tolerance {tolerance:.0%})"
                    )
            else:
                if key.startswith("speedup:"):
                    continue
                ceiling = base_value * (1.0 + tolerance)
                if fresh_value > ceiling:
                    failures.append(
                        f"{case}/{key}: {fresh_value:.6f}s exceeded "
                        f"{ceiling:.6f}s (baseline {base_value:.6f}s, "
                        f"tolerance {tolerance:.0%})"
                    )
    if require_speedup is not None:
        geomean = fresh.get("summary", {}).get("geomean_speedup")
        if geomean is None or geomean < require_speedup:
            failures.append(
                f"geomean speedup {geomean if geomean is None else f'{geomean:.2f}x'} "
                f"below required {require_speedup:.2f}x"
            )
    floors = dict(baseline.get("floors") or {})
    floors.update(per_case_floors or {})
    for spec, floor in sorted(floors.items()):
        case, at, backend = spec.partition("@")
        if (
            case_filter is not None
            and case not in case_filter
            and case not in fresh.get("cases", {})
        ):
            # The case was deliberately restricted out of this run (the
            # derived-family cases survive a restriction to their
            # members, hence the second condition).
            continue
        fresh_timings = fresh.get("cases", {}).get(case, {})
        if at:
            # Backend-qualified floor: binds exactly one ratio, and only
            # when the fresh run exercised that backend at all — an
            # optional backend missing from the install is a supported
            # configuration, not a broken promise.
            if fresh_backends and backend not in fresh_backends:
                continue
            key = f"speedup:{backend}"
            value = fresh_timings.get(key)
            if value is None:
                failures.append(
                    f"{case}/{key}: no speedup recorded "
                    f"(required floor {floor:.2f}x)"
                )
            elif value < floor:
                failures.append(
                    f"{case}/{key}: speedup {value:.2f}x below required "
                    f"floor {floor:.2f}x"
                )
            continue
        ratios = {
            key: value
            for key, value in fresh_timings.items()
            if key.startswith("speedup:")
            and (not fresh_backends or backend_of(key) in fresh_backends)
        }
        if not ratios:
            failures.append(
                f"{case}: no speedup recorded (required floor {floor:.2f}x)"
            )
            continue
        for key, value in sorted(ratios.items()):
            if value < floor:
                failures.append(
                    f"{case}/{key}: speedup {value:.2f}x below required "
                    f"floor {floor:.2f}x"
                )
    return failures

"""Benchmark harness: support sweeps in the style of the paper's figures.

Each figure of the paper plots ``log10(time in seconds)`` against the
minimum support for a fixed data set and a fixed algorithm line-up.
:func:`run_sweep` reproduces that measurement: for every support value
and algorithm it times the mining call, captures the operation counters
(the language-independent work measure), and records the number of
closed sets found.  An algorithm that exceeds ``time_limit`` at some
support is not run at lower supports — the same early-stopping the
paper applied to the [14] implementation ("we terminated the run").

:func:`SweepResult.format_table` prints the paper-style series.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..closure.verify import check_closed_family
from ..data.database import TransactionDatabase
from ..mining import mine
from ..runtime import MiningInterrupted
from ..stats import OperationCounters

__all__ = ["Measurement", "SweepResult", "run_sweep"]


@dataclass
class Measurement:
    """One (algorithm, smin) cell of a sweep."""

    algorithm: str
    smin: int
    seconds: float
    n_closed: int
    counters: Dict[str, int]
    skipped: bool = False

    @property
    def log_seconds(self) -> float:
        """``log10`` of the runtime — the paper's vertical axis."""
        return math.log10(self.seconds) if self.seconds > 0 else float("-inf")


@dataclass
class SweepResult:
    """All measurements of one sweep, indexed ``[algorithm][smin]``."""

    dataset: str
    smin_values: List[int]
    algorithms: List[str]
    cells: Dict[Tuple[str, int], Measurement] = field(default_factory=dict)

    def get(self, algorithm: str, smin: int) -> Optional[Measurement]:
        return self.cells.get((algorithm, smin))

    def series(self, algorithm: str) -> List[Optional[float]]:
        """Runtime series of one algorithm over the sweep (None = skipped)."""
        out = []
        for smin in self.smin_values:
            cell = self.get(algorithm, smin)
            out.append(None if cell is None or cell.skipped else cell.seconds)
        return out

    def winner(self, smin: int) -> Optional[str]:
        """Fastest algorithm at one support value."""
        best_name, best_time = None, None
        for algorithm in self.algorithms:
            cell = self.get(algorithm, smin)
            if cell is None or cell.skipped:
                continue
            if best_time is None or cell.seconds < best_time:
                best_name, best_time = algorithm, cell.seconds
        return best_name

    def crossover(self, left: str, right: str) -> Optional[int]:
        """Largest smin at which ``left`` is strictly faster than ``right``.

        The paper's figures are all about where the intersection miners
        start beating the enumeration miners as support drops; this
        pinpoints that support value (``None`` if ``left`` never wins).
        """
        for smin in sorted(self.smin_values, reverse=True):
            a, b = self.get(left, smin), self.get(right, smin)
            if a is None or a.skipped:
                continue
            if b is None or b.skipped or a.seconds < b.seconds:
                return smin
        return None

    def format_table(self, value: str = "seconds") -> str:
        """Paper-style table: rows = smin, columns = algorithms.

        ``value`` is ``"seconds"``, ``"log"`` (the figures' axis),
        ``"closed"`` (result sizes) or any counter name.
        """
        header = ["smin"] + list(self.algorithms)
        rows: List[List[str]] = []
        for smin in self.smin_values:
            row = [str(smin)]
            for algorithm in self.algorithms:
                cell = self.get(algorithm, smin)
                if cell is None or cell.skipped:
                    row.append("--")
                elif value == "seconds":
                    row.append(f"{cell.seconds:.4f}")
                elif value == "log":
                    row.append(f"{cell.log_seconds:+.2f}")
                elif value == "closed":
                    row.append(str(cell.n_closed))
                else:
                    row.append(str(cell.counters.get(value, 0)))
            rows.append(row)
        widths = [
            max(len(header[col]), *(len(row[col]) for row in rows)) if rows else len(header[col])
            for col in range(len(header))
        ]
        lines = [
            "  ".join(title.rjust(width) for title, width in zip(header, widths)),
            "  ".join("-" * width for width in widths),
        ]
        for row in rows:
            lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)


def _cell_worker(connection, db, smin, algorithm, options, hard_limit) -> None:
    """Subprocess body for one hard-limited measurement.

    The guard stops the run at ``hard_limit`` from the inside (sending
    ``None`` through the pipe); the parent's ``terminate()`` stays as
    the backstop for a worker that stops polling (e.g. stuck in numpy).
    """
    counters = OperationCounters()
    start = time.perf_counter()
    try:
        mined = mine(
            db,
            smin,
            algorithm=algorithm,
            counters=counters,
            timeout=hard_limit,
            **options,
        )
    except MiningInterrupted:
        connection.send(None)
    else:
        elapsed = time.perf_counter() - start
        connection.send((elapsed, len(mined), counters.as_dict()))
    connection.close()


def _measure_cell(
    db: TransactionDatabase,
    smin: int,
    algorithm: str,
    options: dict,
    repeats: int,
    hard_limit: Optional[float],
    isolation: str = "process",
) -> Optional[Tuple[float, int, Dict[str, int]]]:
    """One measurement, hard-limited according to ``isolation``.

    ``"process"`` runs the cell in a killable fork; ``"guard"`` runs it
    in-process under a :class:`~repro.runtime.RunGuard` deadline (no
    fork overhead, cooperative); ``"none"`` applies no hard limit.
    Returns ``None`` when the hard limit struck (the cell is then
    recorded as skipped, like the runs the paper had to terminate).
    """
    if hard_limit is None or isolation == "none":
        best = None
        for _ in range(repeats):
            counters = OperationCounters()
            start = time.perf_counter()
            mined = mine(db, smin, algorithm=algorithm, counters=counters, **options)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, len(mined), counters.as_dict())
        return best
    if isolation == "guard":
        best = None
        for _ in range(repeats):
            counters = OperationCounters()
            start = time.perf_counter()
            try:
                mined = mine(
                    db,
                    smin,
                    algorithm=algorithm,
                    counters=counters,
                    timeout=hard_limit,
                    **options,
                )
            except MiningInterrupted:
                return None
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, len(mined), counters.as_dict())
        return best
    context = multiprocessing.get_context("fork")
    best = None
    for _ in range(repeats):
        receiver, sender = context.Pipe(duplex=False)
        worker = context.Process(
            target=_cell_worker,
            args=(sender, db, smin, algorithm, options, hard_limit),
        )
        worker.start()
        sender.close()
        # The in-worker guard fires at hard_limit; the extra second of
        # poll is the grace period for it to report back before the
        # parent falls back to a hard kill.
        if receiver.poll(hard_limit + 1.0):
            measurement = receiver.recv()
            worker.join()
            if measurement is None:
                receiver.close()
                return None
            if best is None or measurement[0] < best[0]:
                best = measurement
        else:
            worker.terminate()
            worker.join()
            receiver.close()
            return None
        receiver.close()
    return best


def run_sweep(
    db: TransactionDatabase,
    smin_values: Sequence[int],
    algorithms: Sequence[str],
    dataset: str = "",
    repeats: int = 1,
    time_limit: Optional[float] = None,
    verify: bool = False,
    algorithm_options: Optional[Dict[str, dict]] = None,
    hard_limit_factor: float = 5.0,
    isolation: str = "process",
) -> SweepResult:
    """Time every algorithm at every support value.

    ``smin_values`` are swept from high to low support (the paper's
    direction of increasing difficulty).  An algorithm whose cell
    exceeds ``time_limit`` is not run at lower supports, and each cell
    is additionally hard-limited after ``time_limit *
    hard_limit_factor`` seconds — the equivalent of the paper
    terminating the runs that did not finish "in reasonable time".
    ``isolation`` selects how: ``"process"`` (default) forks a killable
    subprocess per cell, ``"guard"`` polls a
    :class:`~repro.runtime.RunGuard` deadline in-process (cheaper, and
    the only option where fork is unavailable), ``"none"`` disables the
    hard limit (soft early-stopping still applies).  ``verify=True``
    additionally checks every result against the brute-force oracle
    (tiny databases only, incompatible with the subprocess isolation so
    it runs in-process).  ``algorithm_options`` maps algorithm names to
    extra keyword options for :func:`repro.mining.mine`.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if isolation not in ("process", "guard", "none"):
        raise ValueError(f"unknown isolation {isolation!r}")
    options = algorithm_options or {}
    ordered = sorted(set(int(s) for s in smin_values), reverse=True)
    result = SweepResult(dataset, ordered, list(algorithms))
    hard_limit = None
    if time_limit is not None and not verify:
        hard_limit = max(time_limit * hard_limit_factor, time_limit + 30.0)
    dead = set()
    for smin in ordered:
        for algorithm in algorithms:
            if algorithm in dead:
                result.cells[(algorithm, smin)] = Measurement(
                    algorithm, smin, float("inf"), 0, {}, skipped=True
                )
                continue
            measurement = _measure_cell(
                db,
                smin,
                algorithm,
                options.get(algorithm, {}),
                repeats,
                hard_limit,
                isolation,
            )
            if measurement is None:
                result.cells[(algorithm, smin)] = Measurement(
                    algorithm, smin, float("inf"), 0, {}, skipped=True
                )
                dead.add(algorithm)
                continue
            seconds, n_closed, counter_dict = measurement
            if verify:
                mined = mine(db, smin, algorithm=algorithm, **options.get(algorithm, {}))
                check_closed_family(db, mined, smin)
            result.cells[(algorithm, smin)] = Measurement(
                algorithm, smin, seconds, n_closed, counter_dict
            )
            if time_limit is not None and seconds > time_limit:
                dead.add(algorithm)
    return result

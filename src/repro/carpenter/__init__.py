"""The improved Carpenter algorithm: transaction set enumeration."""

from .cobbler import mine_cobbler
from .list_based import mine_carpenter_lists
from .repository import HashRepository, PrefixTreeRepository, make_repository
from .table_based import mine_carpenter_table

__all__ = [
    "mine_carpenter_lists",
    "mine_carpenter_table",
    "mine_cobbler",
    "HashRepository",
    "PrefixTreeRepository",
    "make_repository",
]

"""Table-based Carpenter (Section 3.1.2, Table 1).

Same transaction-set enumeration as the list-based variant, but the
per-item tid lists and their moving read pointers are replaced by the
``n x |B|`` matrix of :func:`repro.data.matrix.build_matrix`:

* membership of item ``i`` in transaction ``t_l`` is ``M[l, i] != 0``;
* the remaining-occurrence count used by the item-elimination bound is
  the matrix entry itself, ``M[l, i] = |{ j >= l : i in t_j }|``.

So forming the intersection with the next transaction is mere row
indexing, and the elimination bound costs nothing extra — which is
exactly why the paper found this variant "somewhat better" than the
list-based one.

Two kernel paths (:mod:`repro.kernels`):

* ``bitint`` — the matrix is held as plain nested lists (scalar
  indexing into a numpy array would dominate the inner loop in
  CPython) and the elimination bound is a per-item bit loop;
* a vectorised backend — the matrix stays a numpy array, one
  :meth:`~repro.kernels.base.KernelBackend.bound_filter` column-count
  comparison replaces the whole per-item loop, and the forward
  containment check is one
  :meth:`~repro.kernels.base.KernelBackend.subset_any` batch over the
  packed transaction table.
"""

from __future__ import annotations

from typing import List, Optional

from ..common import finalize, prepare_for_mining
from ..data import itemset
from ..data.database import TransactionDatabase
from ..data.matrix import build_matrix
from ..kernels import KernelBackend, resolve_backend
from ..obs import resolve_probe
from ..result import MiningResult
from ..runtime import MiningInterrupted, RunGuard, checker
from ..stats import OperationCounters
from .repository import make_repository

__all__ = ["mine_carpenter_table"]


def mine_carpenter_table(
    db: TransactionDatabase,
    smin: int,
    item_order: str = "frequency-ascending",
    transaction_order: str = "size-ascending",
    repository_kind: str = "prefix-tree",
    eliminate_items: bool = True,
    perfect_extension: bool = True,
    counters: Optional[OperationCounters] = None,
    guard: Optional[RunGuard] = None,
    backend=None,
    probe=None,
) -> MiningResult:
    """Mine all closed frequent item sets with table-based Carpenter.

    ``guard`` is polled at every subproblem; on interruption the sets
    reported so far (all genuinely closed, with exact supports) are
    attached to the exception as an anytime result.  ``backend``
    selects the set-algebra kernel (:mod:`repro.kernels`).
    """
    obs = resolve_probe(probe)
    kernel = obs.wrap_kernel(resolve_backend(backend))
    with obs.phase("recode", algorithm="carpenter-table"):
        prepared, code_map = prepare_for_mining(
            db, smin, item_order=item_order, transaction_order=transaction_order
        )
    counters = obs.ensure_counters(counters)
    transactions = prepared.transactions
    n = len(transactions)
    n_items = prepared.n_items
    if n == 0 or smin > n:
        obs.record_counters(counters)
        return finalize((), code_map, db, "carpenter-table", smin)

    matrix = build_matrix(prepared)
    if not kernel.vectorized:
        # Plain nested lists: scalar indexing into a numpy array would
        # dominate the inner loop in CPython.
        matrix = matrix.tolist()
    repository = make_repository(repository_kind, n_items)
    full = (1 << n_items) - 1
    pairs: List[tuple] = []
    check = checker(guard, counters)
    trans_table = kernel.pack(transactions, n_items) if kernel.vectorized else None

    # DFS over subproblems (I, |K|, l); exclude pushed before include so
    # the include branch runs first (repository soundness).
    stack: List[tuple] = [(full, 0, 0)]
    try:
        with obs.phase("mine", algorithm="carpenter-table", transactions=n):
            _search(
                stack, transactions, matrix, n, smin, repository, pairs,
                eliminate_items, perfect_extension, counters, check,
                kernel, trans_table,
            )
    except MiningInterrupted as exc:
        exc.attach_partial(
            lambda: finalize(pairs, code_map, db, "carpenter-table", smin),
            algorithm="carpenter-table",
        )
        obs.record_counters(counters)
        raise
    with obs.phase("report", algorithm="carpenter-table"):
        result = finalize(pairs, code_map, db, "carpenter-table", smin)
    obs.record_counters(counters)
    return result


def _search(
    stack: List[tuple],
    transactions: List[int],
    matrix,
    n: int,
    smin: int,
    repository,
    pairs: List[tuple],
    eliminate_items: bool,
    perfect_extension: bool,
    counters: OperationCounters,
    check,
    kernel: KernelBackend,
    trans_table,
) -> None:
    """The DFS over subproblems, separated so interruption can unwind it."""
    batched = trans_table is not None
    while stack:
        check()
        intersection, k, position = stack.pop()
        if position >= n or k + (n - position) < smin:
            # Even including every remaining transaction cannot reach
            # the minimum support.
            continue
        counters.recursion_calls += 1
        row = matrix[position]
        # Intersection by row indexing: an item survives iff its matrix
        # entry is non-zero; with elimination it must additionally have
        # enough remaining occurrences.
        counters.intersections += 1
        mask = intersection & transactions[position]
        if not eliminate_items:
            candidate = mask
        elif batched:
            # One vectorised column-count comparison replaces the
            # per-item loop: keep the items of ``mask`` whose remaining
            # occurrences can still lift the set to the threshold.
            # (mask ⊆ t_position, so every kept entry is non-zero.)
            # This is Carpenter's form of the smin pushdown the
            # ``*_bounded`` kernels give the intersection miners: the
            # bound settles doomed items before any deeper work, here
            # on partial (suffix) occurrence counts rather than on
            # partial popcounts of a joint row.
            candidate = kernel.bound_filter(row, mask, max(smin - k, 0))
            counters.items_eliminated += itemset.size(mask ^ candidate)
        else:
            candidate = 0
            while mask:
                low = mask & -mask
                item = low.bit_length() - 1
                if k + row[item] >= smin:
                    candidate |= low
                else:
                    counters.items_eliminated += 1
                mask ^= low

        if candidate:
            skip_exclude = perfect_extension and candidate == intersection
            if k + 1 >= smin:
                counters.containment_checks += 1
                if candidate not in repository and not (
                    kernel.subset_any(trans_table, candidate, position + 1)
                    if batched
                    else _contained_forward(
                        candidate, transactions, position + 1, counters
                    )
                ):
                    pairs.append((candidate, k + 1))
                    counters.reports += 1
                    repository.add(candidate)
                    counters.observe_repository_size(len(repository))
            if position + 1 < n:
                if not skip_exclude:
                    stack.append((intersection, k, position + 1))
                stack.append((candidate, k + 1, position + 1))
        elif position + 1 < n:
            stack.append((intersection, k, position + 1))


def _contained_forward(
    candidate: int,
    transactions: List[int],
    start: int,
    counters: OperationCounters,
) -> bool:
    """Is ``candidate`` contained in some transaction at index >= start?"""
    for transaction in transactions[start:]:
        counters.containment_checks += 1
        if candidate & ~transaction == 0:
            return True
    return False

"""Cobbler [16] — combining row and column enumeration.

Carpenter enumerates *rows* (transaction sets); the classic miners
enumerate *columns* (item sets).  Cobbler, by Pan et al. and cited by
the paper as Carpenter's "closely related variant", switches between
the two: it starts like Carpenter, and whenever the remaining
sub-problem has become cheaper to solve by column enumeration — the
conditional sub-table is taller than it is wide — it hands the
sub-problem to a closed item set enumerator.

Correctness of the hand-over (see ``tests/carpenter/test_cobbler.py``
for the differential evidence):

At a Carpenter state ``(I, K, l)`` the running intersection satisfies
``I = ⋂_{k in K} t_k`` up to items removed by the elimination bound
(which provably cannot appear in any frequent set of the subtree).
A set ``S`` that is closed *within* the sub-database
``{ t_j ∩ I : j >= l }`` with sub-cover ``C`` therefore satisfies
``S = ⋂_{j in K ∪ C} t_j`` — it is closed with respect to exactly the
transactions ``K ∪ C``.  It is closed in the *full* database with
support ``|K| + |C|`` unless some earlier unused transaction also
contains it, and in that case the include-before-exclude order
guarantees the set was already reported, so the usual repository
membership test filters it — the same backward check Carpenter itself
uses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..common import finalize, prepare_for_mining
from ..data import itemset
from ..data.database import TransactionDatabase
from ..enumeration.closedness import ClosedSetStore
from ..kernels import resolve_backend
from ..obs import resolve_probe
from ..result import MiningResult
from ..runtime import MiningInterrupted, RunGuard, checker
from ..stats import OperationCounters
from .repository import make_repository

__all__ = ["mine_cobbler"]


def mine_cobbler(
    db: TransactionDatabase,
    smin: int,
    item_order: str = "frequency-ascending",
    transaction_order: str = "size-ascending",
    repository_kind: str = "hash",
    switch_ratio: float = 1.0,
    min_rows_to_switch: int = 8,
    counters: Optional[OperationCounters] = None,
    guard: Optional[RunGuard] = None,
    backend=None,
    probe=None,
) -> MiningResult:
    """Mine all closed frequent item sets with Cobbler.

    ``switch_ratio`` tunes the hand-over: the state switches to column
    enumeration when ``remaining_rows > switch_ratio * |I|`` (more rows
    left than the intersection is wide) and at least
    ``min_rows_to_switch`` rows remain.  ``switch_ratio = inf``
    degenerates to pure Carpenter; ``0`` switches immediately, i.e.
    pure column enumeration.  ``backend`` is accepted for API
    uniformity (validated, not used: the row/column hand-over reshapes
    the working tables at every switch, so there is no static table to
    batch over).
    """
    if switch_ratio < 0:
        raise ValueError(f"switch_ratio must be non-negative, got {switch_ratio}")
    resolve_backend(backend)
    obs = resolve_probe(probe)
    with obs.phase("recode", algorithm="cobbler"):
        prepared, code_map = prepare_for_mining(
            db, smin, item_order=item_order, transaction_order=transaction_order
        )
    counters = obs.ensure_counters(counters)
    transactions = prepared.transactions
    n = len(transactions)
    n_items = prepared.n_items
    if n == 0 or smin > n:
        obs.record_counters(counters)
        return finalize((), code_map, db, "cobbler", smin)

    repository = make_repository(repository_kind, n_items)
    full = (1 << n_items) - 1
    pairs: List[Tuple[int, int]] = []
    check = checker(guard, counters)

    stack: List[Tuple[int, int, int]] = [(full, 0, 0)]
    try:
        with obs.phase("mine", algorithm="cobbler", transactions=n):
            _row_search(
                stack, transactions, n, n_items, full, smin, switch_ratio,
                min_rows_to_switch, repository, pairs, counters, check,
            )
    except MiningInterrupted as exc:
        exc.attach_partial(
            lambda: finalize(pairs, code_map, db, "cobbler", smin),
            algorithm="cobbler",
        )
        obs.record_counters(counters)
        raise
    with obs.phase("report", algorithm="cobbler"):
        result = finalize(pairs, code_map, db, "cobbler", smin)
    obs.record_counters(counters)
    return result


def _row_search(
    stack: List[Tuple[int, int, int]],
    transactions: List[int],
    n: int,
    n_items: int,
    full: int,
    smin: int,
    switch_ratio: float,
    min_rows_to_switch: int,
    repository,
    pairs: List[Tuple[int, int]],
    counters: OperationCounters,
    check,
) -> None:
    """The Carpenter-style row enumeration with mid-search switching."""
    while stack:
        check()
        intersection, k, position = stack.pop()
        if position >= n or k + (n - position) < smin:
            continue
        rows_left = n - position
        width = itemset.size(intersection) if intersection != full else n_items
        if (
            rows_left >= min_rows_to_switch
            and rows_left > switch_ratio * width
        ):
            _column_phase(
                intersection, k, position, transactions, smin,
                repository, pairs, counters, check,
            )
            continue

        counters.recursion_calls += 1
        counters.intersections += 1
        candidate = intersection & transactions[position]
        if candidate:
            skip_exclude = candidate == intersection
            if k + 1 >= smin and candidate not in repository:
                counters.containment_checks += 1
                if not any(
                    candidate & ~t == 0 for t in transactions[position + 1 :]
                ):
                    pairs.append((candidate, k + 1))
                    counters.reports += 1
                    repository.add(candidate)
            if position + 1 < n:
                if not skip_exclude:
                    stack.append((intersection, k, position + 1))
                stack.append((candidate, k + 1, position + 1))
        elif position + 1 < n:
            stack.append((intersection, k, position + 1))


def _column_phase(
    intersection: int,
    k: int,
    position: int,
    transactions: List[int],
    smin: int,
    repository,
    pairs: List[Tuple[int, int]],
    counters: OperationCounters,
    check,
) -> None:
    """Solve one sub-problem by closed *item* enumeration (CHARM-style).

    The sub-database holds ``t_j ∩ I`` for the remaining rows; closed
    sets there with combined support ``|K| + sub-support >= smin`` are
    closed overall unless the repository already contains them.
    """
    sub_rows = [t & intersection for t in transactions[position:]]
    smin_sub = max(1, smin - k)

    # Vertical view of the sub-database, restricted to frequent items.
    tid_masks = {}
    for row_index, row in enumerate(sub_rows):
        bit = 1 << row_index
        remaining = row
        while remaining:
            low = remaining & -remaining
            item = low.bit_length() - 1
            tid_masks[item] = tid_masks.get(item, 0) | bit
            remaining ^= low
    items = sorted(
        (item, tids)
        for item, tids in tid_masks.items()
        if itemset.size(tids) >= smin_sub
    )

    store = ClosedSetStore(counters)
    # No explicit sub-root seeding: the closure of the empty sub-set,
    # when non-empty, consists of full-support items and is discovered
    # as the perfect-extension closure of its lowest item's branch.
    # (Seeding it up front would subsume that branch's own prefix and
    # wrongly prune the subtree below it.)
    frames: List[List] = [[0, items, 0]]
    while frames:
        check()
        frame = frames[-1]
        current, extensions, index = frame
        if index >= len(extensions):
            frames.pop()
            continue
        frame[2] = index + 1
        item, tids = extensions[index]
        counters.recursion_calls += 1
        support = itemset.size(tids)
        candidate = current | (1 << item)
        narrowed = []
        for other, other_tids in extensions[index + 1 :]:
            counters.intersections += 1
            joint = tids & other_tids
            if joint == tids:
                candidate |= 1 << other
            elif itemset.size(joint) >= smin_sub:
                narrowed.append((other, joint))
        counters.containment_checks += 1
        if store.subsumed(candidate, support):
            continue
        store.add(candidate, support)
        if narrowed:
            frames.append([candidate, narrowed, 0])

    for mask, sub_support in store.pairs():
        total = k + sub_support
        if total >= smin and mask not in repository:
            counters.containment_checks += 1
            pairs.append((mask, total))
            counters.reports += 1
            repository.add(mask)

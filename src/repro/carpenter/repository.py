"""Closed-set repositories for the Carpenter backward check.

Carpenter must decide, for a candidate intersection ``I1`` reached at
transaction index ``l`` with used set ``K``, whether some *earlier*
transaction ``t_j`` (``j < l``, ``j not in K``) contains ``I1``.
Because the include-branch is always solved before the exclude-branch,
that is the case exactly when ``I1`` was already reported — so the check
is a membership test in a repository of reported sets (Section 3.1.1).

The paper lays the repository out as a prefix tree whose top level is a
flat array over all items (many items, densely populated top level).
We provide that structure and a plain hash-set alternative, so the
design choice can be ablated:

* :class:`HashRepository` — a Python ``set`` of item set bitmasks;
  constant-time membership through hashing.  (In C, hashing an item set
  costs a pass over it, which is why the paper prefers the tree; in
  Python the int hash is already cached machinery.)
* :class:`PrefixTreeRepository` — the paper's structure: a trie over
  item codes in descending order, top level indexed directly by item.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Protocol

__all__ = ["Repository", "HashRepository", "PrefixTreeRepository", "make_repository"]


class Repository(Protocol):
    """What Carpenter needs from a repository."""

    def add(self, mask: int) -> None:  # pragma: no cover - protocol
        ...

    def __contains__(self, mask: int) -> bool:  # pragma: no cover - protocol
        ...

    def __len__(self) -> int:  # pragma: no cover - protocol
        ...


class HashRepository:
    """Hash-set repository of item set bitmasks."""

    __slots__ = ("_sets",)

    def __init__(self) -> None:
        self._sets: set = set()

    def add(self, mask: int) -> None:
        self._sets.add(mask)

    def __contains__(self, mask: int) -> bool:
        return mask in self._sets

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self) -> Iterator[int]:
        return iter(self._sets)


class _TrieNode:
    __slots__ = ("children", "terminal")

    def __init__(self) -> None:
        self.children: Dict[int, "_TrieNode"] = {}
        self.terminal = False


class PrefixTreeRepository:
    """Trie repository over descending item codes (the paper's layout).

    The top level is a flat array indexed by item code — the paper
    stresses this because on gene-expression data the top level is
    almost fully populated, so a flat array avoids walking a long
    sibling list.  Deeper levels are sparse dicts (the paper likewise
    found flat arrays unhelpful below the top level).
    """

    __slots__ = ("_top", "_n_items", "_size")

    def __init__(self, n_items: int) -> None:
        if n_items < 0:
            raise ValueError(f"n_items must be non-negative, got {n_items}")
        self._top: List[Optional[_TrieNode]] = [None] * n_items
        self._n_items = n_items
        self._size = 0

    def add(self, mask: int) -> None:
        if not mask:
            raise ValueError("cannot store the empty item set")
        items = _descending(mask)
        first = next(items)
        node = self._top[first]
        if node is None:
            node = _TrieNode()
            self._top[first] = node
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _TrieNode()
                node.children[item] = child
            node = child
        if not node.terminal:
            node.terminal = True
            self._size += 1

    def __contains__(self, mask: int) -> bool:
        if not mask:
            return False
        items = _descending(mask)
        node = self._top[next(items)]
        if node is None:
            return False
        for item in items:
            node = node.children.get(item)
            if node is None:
                return False
        return node.terminal

    def __len__(self) -> int:
        return self._size


def make_repository(kind: str, n_items: int) -> Repository:
    """Factory: ``"hash"`` or ``"prefix-tree"``."""
    if kind == "hash":
        return HashRepository()
    if kind == "prefix-tree":
        return PrefixTreeRepository(n_items)
    raise ValueError(f"unknown repository kind {kind!r}; expected 'hash' or 'prefix-tree'")


def _descending(mask: int) -> Iterator[int]:
    while mask:
        item = mask.bit_length() - 1
        yield item
        mask ^= 1 << item

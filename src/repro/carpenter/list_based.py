"""List-based Carpenter (Section 3.1.1).

Enumerates transaction index sets depth-first — include ``t_l`` before
excluding it, which is what makes the repository backward-check sound —
and intersects along the way.  The per-item machinery of the original
(vertical tid arrays with moving read pointers) appears here as sorted
tid lists consulted through binary search for the remaining-occurrence
counts; the intersections themselves are single bitmask ANDs, the
Python stand-in for the C pointer walk.

Improvements from the paper, all on by default and all ablatable:

* repository backward check (either backend of
  :mod:`repro.carpenter.repository`),
* the perfect-extension analogue — if ``I1 == I0`` the exclude branch
  cannot produce output and is skipped,
* item elimination — item ``i`` is dropped from the running
  intersection as soon as ``|K| + |{j >= l : i in t_j}| < smin``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional

from ..common import finalize, prepare_for_mining
from ..data.database import TransactionDatabase
from ..kernels import resolve_backend
from ..obs import resolve_probe
from ..result import MiningResult
from ..runtime import MiningInterrupted, RunGuard, checker
from ..stats import OperationCounters
from .repository import make_repository

__all__ = ["mine_carpenter_lists"]


def mine_carpenter_lists(
    db: TransactionDatabase,
    smin: int,
    item_order: str = "frequency-ascending",
    transaction_order: str = "size-ascending",
    repository_kind: str = "prefix-tree",
    eliminate_items: bool = True,
    perfect_extension: bool = True,
    counters: Optional[OperationCounters] = None,
    guard: Optional[RunGuard] = None,
    backend=None,
    probe=None,
) -> MiningResult:
    """Mine all closed frequent item sets with list-based Carpenter.

    ``guard`` is polled at every subproblem; on interruption the sets
    reported so far (all genuinely closed, with exact supports) are
    attached to the exception as an anytime result.  ``backend``
    selects the set-algebra kernel (:mod:`repro.kernels`); a vectorised
    backend batches the forward containment check of the closedness
    test over the packed transaction table.
    """
    obs = resolve_probe(probe)
    kernel = obs.wrap_kernel(resolve_backend(backend))
    with obs.phase("recode", algorithm="carpenter-lists"):
        prepared, code_map = prepare_for_mining(
            db, smin, item_order=item_order, transaction_order=transaction_order
        )
    counters = obs.ensure_counters(counters)
    transactions = prepared.transactions
    n = len(transactions)
    n_items = prepared.n_items
    if n == 0 or smin > n:
        obs.record_counters(counters)
        return finalize((), code_map, db, "carpenter-lists", smin)

    # Vertical representation: sorted tid list per item.  The remaining
    # count |{j >= l : i in t_j}| is len(list) - bisect_left(list, l).
    tid_lists: List[List[int]] = [[] for _ in range(n_items)]
    for tid, transaction in enumerate(transactions):
        mask = transaction
        while mask:
            low = mask & -mask
            tid_lists[low.bit_length() - 1].append(tid)
            mask ^= low

    repository = make_repository(repository_kind, n_items)
    full = (1 << n_items) - 1
    pairs: List[tuple] = []
    check = checker(guard, counters)
    trans_table = kernel.pack(transactions, n_items) if kernel.vectorized else None

    # Explicit DFS stack of subproblems (I, |K|, l).  The exclude branch
    # is pushed first so the include branch is explored first (LIFO) —
    # required for the repository check to be sound.
    stack: List[tuple] = [(full, 0, 0)]
    try:
        with obs.phase("mine", algorithm="carpenter-lists", transactions=n):
            _search(
                stack, transactions, n, smin, tid_lists, repository, pairs,
                eliminate_items, perfect_extension, counters, check,
                kernel, trans_table,
            )
    except MiningInterrupted as exc:
        exc.attach_partial(
            lambda: finalize(pairs, code_map, db, "carpenter-lists", smin),
            algorithm="carpenter-lists",
        )
        obs.record_counters(counters)
        raise
    with obs.phase("report", algorithm="carpenter-lists"):
        result = finalize(pairs, code_map, db, "carpenter-lists", smin)
    obs.record_counters(counters)
    return result


def _search(
    stack: List[tuple],
    transactions: List[int],
    n: int,
    smin: int,
    tid_lists: List[List[int]],
    repository,
    pairs: List[tuple],
    eliminate_items: bool,
    perfect_extension: bool,
    counters: OperationCounters,
    check,
    kernel,
    trans_table,
) -> None:
    """The DFS over subproblems, separated so interruption can unwind it."""
    batched = trans_table is not None
    while stack:
        check()
        intersection, k, position = stack.pop()
        if position >= n or k + (n - position) < smin:
            # Even including every remaining transaction cannot reach
            # the minimum support.
            continue
        counters.recursion_calls += 1
        candidate = intersection & transactions[position]
        counters.intersections += 1

        if candidate and eliminate_items:
            candidate = _eliminate(
                candidate, k, position, smin, tid_lists, counters
            )

        skip_exclude = False
        if candidate:
            if perfect_extension and candidate == intersection:
                # t_position fully contains the running intersection: any
                # set found while excluding it would be contained in
                # t_position too and hence fail the closedness test.
                skip_exclude = True
            if k + 1 >= smin and candidate not in repository:
                counters.containment_checks += 1
                if not (
                    kernel.subset_any(trans_table, candidate, position + 1)
                    if batched
                    else _contained_forward(
                        candidate, transactions, position + 1, counters
                    )
                ):
                    pairs.append((candidate, k + 1))
                    counters.reports += 1
                    repository.add(candidate)
                    counters.observe_repository_size(len(repository))
            if position + 1 < n:
                if not skip_exclude:
                    stack.append((intersection, k, position + 1))
                stack.append((candidate, k + 1, position + 1))
        elif position + 1 < n:
            stack.append((intersection, k, position + 1))


def _eliminate(
    candidate: int,
    k: int,
    position: int,
    smin: int,
    tid_lists: List[List[int]],
    counters: OperationCounters,
) -> int:
    """Drop items whose remaining occurrences cannot reach ``smin``."""
    result = candidate
    mask = candidate
    while mask:
        low = mask & -mask
        item = low.bit_length() - 1
        tids = tid_lists[item]
        remaining = len(tids) - bisect_left(tids, position)
        if k + remaining < smin:
            result ^= low
            counters.items_eliminated += 1
        mask ^= low
    return result


def _contained_forward(
    candidate: int,
    transactions: List[int],
    start: int,
    counters: OperationCounters,
) -> bool:
    """Is ``candidate`` contained in some transaction at index >= start?"""
    for transaction in transactions[start:]:
        counters.containment_checks += 1
        if candidate & ~transaction == 0:
            return True
    return False

"""Workload generators mirroring the paper's four evaluation data sets.

Every generator is deterministic given its ``seed`` and scales through
explicit size parameters; :func:`load` provides a registry keyed by the
names the paper's figures use.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..data.database import TransactionDatabase
from .basket import quest_baskets
from .gene_expression import (
    expression_database,
    ncbi60_like,
    synthetic_expression_matrix,
    yeast_compendium,
)
from .thrombin import thrombin_like
from .webview import webview_clicks, webview_transposed

__all__ = [
    "DATASETS",
    "load",
    "yeast_compendium",
    "ncbi60_like",
    "thrombin_like",
    "webview_clicks",
    "webview_transposed",
    "quest_baskets",
    "synthetic_expression_matrix",
    "expression_database",
]

#: Registry of named workloads (the paper's figure data sets + the
#: standard-benchmark regime used by the crossover ablation).
DATASETS: Dict[str, Callable[..., TransactionDatabase]] = {
    "yeast": yeast_compendium,
    "ncbi60": ncbi60_like,
    "thrombin": thrombin_like,
    "webview-tpo": webview_transposed,
    "webview": webview_clicks,
    "baskets": quest_baskets,
}


def load(name: str, **options) -> TransactionDatabase:
    """Instantiate a registered workload by name.

    >>> db = load("ncbi60", n_genes=50, n_cell_lines=10)
    >>> db.n_transactions
    10
    """
    generator = DATASETS.get(name)
    if generator is None:
        raise ValueError(f"unknown data set {name!r}; available: {sorted(DATASETS)}")
    return generator(**options)

"""Synthetic gene-expression workloads (Section 4 of the paper).

The paper mines two microarray compendia:

* the Hughes et al. yeast compendium — log-expression ratios of 6316
  transcripts under 300 mutations/chemical treatments, and
* the NCBI60 cancer cell-line panel.

Neither raw data set ships with this reproduction, so this module
generates matrices with the same *structure*: a heavy majority of
near-zero log ratios, plus planted co-regulation modules — groups of
genes that respond together (same sign) to groups of conditions, which
is precisely what makes closed-set mining interesting on such data.
The matrices are then discretised with the paper's own ±0.2 rule
(:func:`repro.data.transforms.expression_to_database`).

The mining regime of Figures 5 and 6 uses conditions as transactions
(few transactions, very many gene/direction items).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.database import TransactionDatabase
from ..data.transforms import expression_to_database

__all__ = [
    "synthetic_expression_matrix",
    "expression_database",
    "yeast_compendium",
    "ncbi60_like",
]


def synthetic_expression_matrix(
    n_genes: int,
    n_conditions: int,
    n_modules: int = 20,
    module_gene_frac: float = 0.08,
    module_condition_frac: float = 0.15,
    signal: float = 0.45,
    noise_sd: float = 0.12,
    baseline_frac: float = 0.0,
    baseline_shift: float = 0.18,
    baseline_spread: float = 0.12,
    module_sign: str = "per-condition",
    seed: int = 0,
) -> np.ndarray:
    """Generate a log-expression matrix with planted co-regulation modules.

    Background values are ``N(0, noise_sd)`` — with the default sd most
    fall inside the ±0.2 dead zone, matching the sparsity of real
    discretised compendia.  Each of the ``n_modules`` modules picks a
    random gene subset and condition subset; affected entries get an
    added ``±signal`` whose sign is fixed per (module, condition), so
    module genes are consistently over- or under-expressed together —
    the co-expression structure frequent item set mining is meant to
    recover.

    ``baseline_frac`` plants constitutively shifted genes: a fraction of
    genes receives a per-gene mean of
    ``±(baseline_shift + U(0, baseline_spread))`` across *all*
    conditions.  Their items reach support close to the number of
    transactions with noisy, mutually overlapping covers — the dense
    high-support regime real cell-line panels exhibit, and what makes
    mining at 75-90% minimum support (paper Figure 6) non-trivial.
    """
    if n_genes < 1 or n_conditions < 1:
        raise ValueError("matrix dimensions must be positive")
    if not 0.0 < module_gene_frac <= 1.0 or not 0.0 < module_condition_frac <= 1.0:
        raise ValueError("module fractions must be in (0, 1]")
    if not 0.0 <= baseline_frac <= 1.0:
        raise ValueError(f"baseline_frac must be in [0, 1], got {baseline_frac}")
    rng = np.random.default_rng(seed)
    values = rng.normal(0.0, noise_sd, size=(n_genes, n_conditions))
    if baseline_frac > 0.0:
        n_baseline = int(round(baseline_frac * n_genes))
        baseline_genes = rng.choice(n_genes, size=n_baseline, replace=False)
        shifts = baseline_shift + rng.uniform(0.0, baseline_spread, size=n_baseline)
        shifts *= rng.choice((-1.0, 1.0), size=n_baseline)
        values[baseline_genes] += shifts[:, None]
    if module_sign not in ("per-condition", "per-module"):
        raise ValueError(
            f"module_sign must be 'per-condition' or 'per-module', got {module_sign!r}"
        )
    genes_per_module = max(1, int(round(module_gene_frac * n_genes)))
    conditions_per_module = max(1, int(round(module_condition_frac * n_conditions)))
    for _ in range(n_modules):
        genes = rng.choice(n_genes, size=genes_per_module, replace=False)
        conditions = rng.choice(n_conditions, size=conditions_per_module, replace=False)
        if module_sign == "per-module":
            # One direction for the whole module: items reach support
            # close to the module's condition count (cell-line panels).
            signs = np.full(conditions_per_module, rng.choice((-1.0, 1.0)))
        else:
            # Direction varies by condition: support splits between the
            # over- and under-expressed item of each gene (compendia).
            signs = rng.choice((-1.0, 1.0), size=conditions_per_module)
        for condition, sign in zip(conditions, signs):
            values[genes, condition] += sign * signal
    return values


def expression_database(
    values: np.ndarray,
    orientation: str = "conditions-as-transactions",
    upper: float = 0.2,
    lower: float = -0.2,
) -> TransactionDatabase:
    """Discretise a log-expression matrix into a transaction database."""
    return expression_to_database(
        values, upper=upper, lower=lower, orientation=orientation
    )


def yeast_compendium(
    n_genes: int = 6316,
    n_conditions: int = 300,
    n_modules: Optional[int] = None,
    module_gene_frac: float = 0.015,
    module_condition_frac: float = 0.06,
    signal: float = 0.4,
    noise_sd: float = 0.1,
    seed: int = 0,
    orientation: str = "conditions-as-transactions",
) -> TransactionDatabase:
    """A yeast-compendium-shaped workload (Figure 5).

    The paper's dimensions (6316 transcripts x 300 conditions) are the
    default; what is scaled down relative to the real compendium is the
    *depth* of the co-regulation structure, so that closed-set counts
    at the benchmark supports stay within pure-Python reach (thousands
    to tens of thousands instead of the paper's millions).
    """
    values = synthetic_expression_matrix(
        n_genes,
        n_conditions,
        n_modules=n_modules if n_modules is not None else max(4, n_conditions // 10),
        module_gene_frac=module_gene_frac,
        module_condition_frac=module_condition_frac,
        signal=signal,
        noise_sd=noise_sd,
        seed=seed,
    )
    return expression_database(values, orientation)


def tissue_panel_matrix(
    n_genes: int,
    n_cell_lines: int,
    n_tissues: int = 8,
    signature_frac: float = 0.15,
    signature_prob: float = 0.85,
    module_prob: float = 0.25,
    signal: float = 0.5,
    noise_sd: float = 0.1,
    seed: int = 1,
) -> np.ndarray:
    """Log-expression matrix for a cell-line panel with tissue structure.

    Cell lines are partitioned into ``n_tissues`` tissues of origin.
    A ``signature_frac`` fraction of genes are *signature genes*: each
    picks one direction and is shifted that way in every cell line of a
    tissue independently with probability ``signature_prob`` — so cell
    lines of the same tissue share most of their discretised items, the
    block structure real panels exhibit.  The remaining genes respond
    per (gene, tissue) with probability ``module_prob`` in a random
    direction, giving the moderate-support tail.  Gaussian noise on
    every entry supplies the per-cell-line dropout that makes covers
    distinct.
    """
    if n_tissues < 1 or n_tissues > n_cell_lines:
        raise ValueError(f"n_tissues must be in [1, n_cell_lines], got {n_tissues}")
    rng = np.random.default_rng(seed)
    values = rng.normal(0.0, noise_sd, size=(n_genes, n_cell_lines))
    tissue_of = np.sort(np.arange(n_cell_lines) % n_tissues)
    n_signature = int(round(signature_frac * n_genes))
    directions = rng.choice((-1.0, 1.0), size=n_genes)
    for gene in range(n_genes):
        is_signature = gene < n_signature
        for tissue in range(n_tissues):
            if is_signature:
                active = rng.random() < signature_prob
                direction = directions[gene]
            else:
                active = rng.random() < module_prob
                direction = rng.choice((-1.0, 1.0))
            if active:
                members = tissue_of == tissue
                values[gene, members] += direction * signal
    return values


def ncbi60_like(
    n_genes: int = 1500,
    n_cell_lines: int = 60,
    n_tissues: int = 8,
    signature_frac: float = 0.15,
    signature_prob: float = 0.85,
    noise_sd: float = 0.1,
    seed: int = 1,
    orientation: str = "conditions-as-transactions",
) -> TransactionDatabase:
    """An NCBI60-shaped workload (Figure 6).

    Sixty transactions (cell lines) over thousands of gene/direction
    items, with the tissue-of-origin block structure of the real panel:
    signature genes give many items support in the 75-95% range whose
    covers are unions of tissue blocks perturbed by per-cell-line
    dropout — the regime of the paper's smin = 46..54 sweep.
    """
    values = tissue_panel_matrix(
        n_genes,
        n_cell_lines,
        n_tissues=min(n_tissues, n_cell_lines),
        signature_frac=signature_frac,
        signature_prob=signature_prob,
        noise_sd=noise_sd,
        seed=seed,
    )
    return expression_database(values, orientation)

"""IBM-Quest-style market-basket generator.

The paper explains why intersection miners are *not* the method of
choice on standard benchmark data: "standard benchmark data sets
contain comparatively few items (a few hundred), and very many
transactions".  This generator produces exactly that regime — the
classic synthetic market-basket model of Agrawal & Srikant: a pool of
potentially frequent patterns, transactions assembled by sampling and
corrupting patterns — so the crossover between the two algorithm
families can be demonstrated from both sides
(``benchmarks/bench_ablation_regime.py``).
"""

from __future__ import annotations

import random
from typing import List

from ..data.database import TransactionDatabase

__all__ = ["quest_baskets"]


def quest_baskets(
    n_transactions: int = 2000,
    n_items: int = 100,
    n_patterns: int = 30,
    mean_pattern_length: float = 4.0,
    mean_transaction_length: float = 10.0,
    corruption: float = 0.25,
    seed: int = 4,
) -> TransactionDatabase:
    """Generate market-basket transactions à la IBM Quest.

    A pool of ``n_patterns`` potentially frequent item sets is drawn
    with geometric sizes around ``mean_pattern_length``; each
    transaction keeps appending randomly chosen patterns — each item of
    a pattern dropped independently with probability ``corruption`` —
    until its intended geometric length is reached.
    """
    if n_transactions < 1 or n_items < 1:
        raise ValueError("n_transactions and n_items must be positive")
    if not 0.0 <= corruption < 1.0:
        raise ValueError(f"corruption must be in [0, 1), got {corruption}")
    rng = random.Random(seed)

    def geometric(mean: float) -> int:
        p = 1.0 / mean
        size = 1
        while rng.random() > p:
            size += 1
        return size

    patterns: List[List[int]] = []
    for _ in range(n_patterns):
        size = min(n_items, geometric(mean_pattern_length))
        patterns.append(rng.sample(range(n_items), size))

    transactions: List[List[int]] = []
    for _ in range(n_transactions):
        wanted = geometric(mean_transaction_length)
        items = set()
        # Bounded draw count: a short pattern pool can make the wanted
        # length unreachable, so give up after enough attempts.
        for _attempt in range(8 * n_patterns):
            if len(items) >= wanted or len(items) >= n_items:
                break
            pattern = patterns[rng.randrange(n_patterns)]
            for item in pattern:
                if rng.random() >= corruption:
                    items.add(item)
        transactions.append(sorted(items))
    return TransactionDatabase.from_iterable(
        transactions, item_order=list(range(n_items))
    )

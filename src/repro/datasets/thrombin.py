"""Thrombin-shaped workload (Figure 7).

The paper uses the test part of the KDD Cup 2001 Thrombin data —
"each record describes a molecule that binds or does not bind to
thrombin by 139,351 binary features" — restricted to the first 64
records.  It is not gene-expression data but "exhibits similar
characteristics": a few very long, sparse binary records over an
enormous feature base.

The generator reproduces that structure with *scaffold groups*:
molecular substructures shared by subsets of the molecules.  Each group
is a block of features that always occur together; each record carries
group ``g`` with the group's popularity ``p_g``.  Popular scaffolds
(carried by most molecules) make the high-support regime of the
paper's sweep rich — the closed sets are exactly the intersections of
scaffold covers — while unpopular scaffolds populate the low end, so
the closed-set count grows smoothly as the minimum support drops.
A long tail of near-unique features supplies the realistic item-base
size without affecting the frequent structure.
"""

from __future__ import annotations

import random
from typing import List

from ..data.database import TransactionDatabase

__all__ = ["thrombin_like"]


def thrombin_like(
    n_records: int = 64,
    n_features: int = 4000,
    n_popular_groups: int = 14,
    n_rare_groups: int = 26,
    group_size: int = 60,
    popular_range: tuple = (0.75, 0.95),
    rare_range: tuple = (0.15, 0.55),
    tail_rate: float = 0.01,
    seed: int = 2,
) -> TransactionDatabase:
    """Generate a thrombin-shaped binary feature database.

    ``n_popular_groups`` scaffolds with per-record inclusion
    probabilities in ``popular_range`` drive the high-support closed
    structure; ``n_rare_groups`` with probabilities in ``rare_range``
    activate as the support threshold drops.  Features beyond the
    scaffold blocks occur at ``tail_rate`` independently (these are the
    sparse, near-unique descriptors that give the real data its
    enormous feature count; they fall to the frequency filter at any
    interesting minimum support).  Pass ``n_features=139351`` for the
    full-scale item base.
    """
    if n_records < 1 or n_features < 1:
        raise ValueError("n_records and n_features must be positive")
    n_groups = n_popular_groups + n_rare_groups
    if n_groups * group_size > n_features:
        raise ValueError("scaffold blocks exceed the feature base")
    rng = random.Random(seed)

    popularity = [rng.uniform(*popular_range) for _ in range(n_popular_groups)]
    popularity += [rng.uniform(*rare_range) for _ in range(n_rare_groups)]

    tail_start = n_groups * group_size
    n_tail = n_features - tail_start

    transactions: List[List[int]] = []
    for _ in range(n_records):
        features: List[int] = []
        for group, probability in enumerate(popularity):
            if rng.random() < probability:
                start = group * group_size
                features.extend(range(start, start + group_size))
        for offset in range(n_tail):
            if rng.random() < tail_rate:
                features.append(tail_start + offset)
        transactions.append(features)
    return TransactionDatabase.from_iterable(
        transactions, item_order=list(range(n_features))
    )

"""BMS-WebView-1-shaped click-stream workload (Figure 8).

BMS-WebView-1 (KDD Cup 2000) records click-stream sessions of a
leg-care web shop: tens of thousands of short sessions over a few
hundred product detail pages, with strongly skewed page popularity.
The paper mines its *transpose* — pages as transactions, sessions as
items — to obtain another "few transactions, very many items" data set.

:func:`webview_clicks` generates the untransposed sessions (Zipfian
page popularity, short geometric session lengths, plus a handful of
popular navigation paths that make sessions overlap);
:func:`webview_transposed` applies the same transpose operator the
paper used.
"""

from __future__ import annotations

import random
from typing import List

from ..data.database import TransactionDatabase
from ..data.transforms import transpose

__all__ = ["webview_clicks", "webview_transposed"]


def webview_clicks(
    n_sessions: int = 3000,
    n_pages: int = 300,
    mean_session_length: float = 2.5,
    zipf_exponent: float = 1.0,
    n_paths: int = 40,
    path_length: int = 4,
    seed: int = 3,
) -> TransactionDatabase:
    """Generate click-stream sessions.

    Each session draws a geometric number of pages from a Zipfian
    popularity distribution; with probability 1/3 it additionally
    follows one of ``n_paths`` fixed navigation paths (consecutive page
    groups browsed together), which is what creates the co-occurrence
    structure the original data exhibits.
    """
    if n_sessions < 1 or n_pages < 1:
        raise ValueError("n_sessions and n_pages must be positive")
    if mean_session_length <= 0:
        raise ValueError("mean_session_length must be positive")
    rng = random.Random(seed)
    weights = [(rank + 1.0) ** -zipf_exponent for rank in range(n_pages)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)

    def draw_page() -> int:
        u = rng.random()
        low, high = 0, n_pages - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < u:
                low = mid + 1
            else:
                high = mid
        return low

    paths = [
        [rng.randrange(n_pages) for _ in range(path_length)] for _ in range(n_paths)
    ]
    stop_probability = 1.0 / mean_session_length
    transactions: List[List[int]] = []
    for _ in range(n_sessions):
        pages = set()
        while True:
            pages.add(draw_page())
            if rng.random() < stop_probability:
                break
        if paths and rng.random() < 1.0 / 3.0:
            pages.update(paths[rng.randrange(n_paths)])
        transactions.append(sorted(pages))
    return TransactionDatabase.from_iterable(
        transactions, item_order=list(range(n_pages))
    )


def webview_transposed(
    n_sessions: int = 3000,
    n_pages: int = 300,
    seed: int = 3,
    **options,
) -> TransactionDatabase:
    """The transposed click data of Figure 8: pages as transactions."""
    return transpose(webview_clicks(n_sessions, n_pages, seed=seed, **options))

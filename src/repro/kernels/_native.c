/* Native kernel primitives over packed little-endian uint64 rows.
 *
 * This module implements the profiled-worst batched primitives of the
 * kernel ABI (see repro/kernels/base.py) as plain C loops:
 *
 *   intersect(rows, mask)                      -> joint row bytes
 *   intersect_count(rows, mask)                -> (joint bytes, supports)
 *   intersect_count_bounded(rows, mask, smin)  -> (joint bytes, supports)
 *   superset_max_support_bounded(rows, supports, mask, smin) -> int
 *   popcount_rows(rows)                        -> supports
 *
 * `rows` is any C-contiguous 2-D buffer of 8-byte items (the resident
 * PackedTable matrix exposes one through the buffer protocol), `mask`
 * the probe packed to the table width with int.to_bytes(..., "little").
 * No numpy headers are needed: the module consumes raw buffers and
 * returns bytes, and the Python wrapper (repro/kernels/native.py) wraps
 * them back into PackedTable rows.  AND, popcount and the containment
 * test are endian-agnostic on the packed byte layout, so interpreting
 * the little-endian rows as native uint64 words is exact everywhere.
 *
 * Bounded primitives honour the exact BELOW_BOUND sentinel contract:
 * a row whose true joint popcount is below smin reports support -1 and
 * a zeroed joint, whether or not the per-word early abort
 * (count + remaining_words * 64 < smin, arXiv:1901.07773) fired for it.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>

/* Must equal repro.kernels.base.BELOW_BOUND (asserted at import time
 * by the Python wrapper via the BELOW_BOUND module constant). */
#define NATIVE_BELOW_BOUND (-1)

#if defined(__GNUC__) || defined(__clang__)
#define popcount64(x) ((int64_t)__builtin_popcountll((unsigned long long)(x)))
#else
static int64_t
popcount64(uint64_t v)
{
    v = v - ((v >> 1) & UINT64_C(0x5555555555555555));
    v = (v & UINT64_C(0x3333333333333333)) +
        ((v >> 2) & UINT64_C(0x3333333333333333));
    v = (v + (v >> 4)) & UINT64_C(0x0F0F0F0F0F0F0F0F);
    return (int64_t)((v * UINT64_C(0x0101010101010101)) >> 56);
}
#endif

typedef struct {
    Py_buffer view;
    Py_ssize_t n_rows;
    Py_ssize_t n_words;
    const uint64_t *data;
} rows_buffer;

static int
get_rows(PyObject *obj, rows_buffer *rows)
{
    if (PyObject_GetBuffer(obj, &rows->view, PyBUF_C_CONTIGUOUS) < 0)
        return -1;
    if (rows->view.ndim != 2 || rows->view.itemsize != 8) {
        PyBuffer_Release(&rows->view);
        PyErr_SetString(PyExc_TypeError,
                        "rows must be a C-contiguous 2-D buffer of "
                        "8-byte words");
        return -1;
    }
    rows->n_rows = rows->view.shape[0];
    rows->n_words = rows->view.shape[1];
    rows->data = (const uint64_t *)rows->view.buf;
    return 0;
}

/* Copy the packed probe into an owned aligned word buffer (the bytes
 * object's internal pointer has no alignment guarantee in the buffer
 * protocol contract). */
static uint64_t *
get_mask(Py_buffer *mask_view, Py_ssize_t n_words)
{
    uint64_t *words;
    if (mask_view->len != n_words * 8) {
        PyErr_Format(PyExc_ValueError,
                     "mask must pack to the table width: expected %zd "
                     "bytes, got %zd", n_words * 8, mask_view->len);
        return NULL;
    }
    words = (uint64_t *)PyMem_Malloc((size_t)(n_words ? n_words : 1) * 8);
    if (words == NULL) {
        PyErr_NoMemory();
        return NULL;
    }
    memcpy(words, mask_view->buf, (size_t)n_words * 8);
    return words;
}

static PyObject *
native_intersect(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *rows_obj, *out = NULL;
    Py_buffer mask_view;
    rows_buffer rows;
    uint64_t *mask = NULL, *dst;
    Py_ssize_t i, w, n_words;

    if (!PyArg_ParseTuple(args, "Oy*:intersect", &rows_obj, &mask_view))
        return NULL;
    if (get_rows(rows_obj, &rows) < 0) {
        PyBuffer_Release(&mask_view);
        return NULL;
    }
    n_words = rows.n_words;
    mask = get_mask(&mask_view, n_words);
    if (mask == NULL)
        goto done;
    out = PyBytes_FromStringAndSize(NULL, rows.n_rows * n_words * 8);
    if (out == NULL)
        goto done;
    dst = (uint64_t *)PyBytes_AS_STRING(out);
    for (i = 0; i < rows.n_rows; i++) {
        const uint64_t *src = rows.data + i * n_words;
        uint64_t *row = dst + i * n_words;
        for (w = 0; w < n_words; w++)
            row[w] = src[w] & mask[w];
    }
done:
    PyMem_Free(mask);
    PyBuffer_Release(&rows.view);
    PyBuffer_Release(&mask_view);
    return out;
}

/* Shared body of intersect_count / intersect_count_bounded: smin is
 * LLONG_MIN-free — a bounded call passes the caller's smin, the
 * unbounded one passes 0, where no support can ever fall below the
 * bound and the sentinel branch is dead. */
static PyObject *
intersect_count_impl(PyObject *args, const char *signature, int bounded)
{
    PyObject *rows_obj, *out = NULL, *supports = NULL, *result = NULL;
    Py_buffer mask_view;
    rows_buffer rows;
    uint64_t *mask = NULL, *dst;
    long long smin = 0;
    Py_ssize_t i, w, n_words;

    if (bounded) {
        if (!PyArg_ParseTuple(args, signature, &rows_obj, &mask_view, &smin))
            return NULL;
    }
    else {
        if (!PyArg_ParseTuple(args, signature, &rows_obj, &mask_view))
            return NULL;
    }
    if (get_rows(rows_obj, &rows) < 0) {
        PyBuffer_Release(&mask_view);
        return NULL;
    }
    n_words = rows.n_words;
    mask = get_mask(&mask_view, n_words);
    if (mask == NULL)
        goto done;
    out = PyBytes_FromStringAndSize(NULL, rows.n_rows * n_words * 8);
    supports = PyList_New(rows.n_rows);
    if (out == NULL || supports == NULL)
        goto done;
    dst = (uint64_t *)PyBytes_AS_STRING(out);
    for (i = 0; i < rows.n_rows; i++) {
        const uint64_t *src = rows.data + i * n_words;
        uint64_t *row = dst + i * n_words;
        int64_t count = 0;
        PyObject *value;
        if (smin > 0) {
            /* Early-stopping rule: once the running count plus the
             * remaining-word upper bound cannot reach smin, the row is
             * settled — its tail words are never touched. */
            for (w = 0; w < n_words; w++) {
                uint64_t joint = src[w] & mask[w];
                row[w] = joint;
                count += popcount64(joint);
                if (count + (int64_t)(n_words - 1 - w) * 64 < smin)
                    break;
            }
            if (count < smin) {
                memset(row, 0, (size_t)n_words * 8);
                count = NATIVE_BELOW_BOUND;
            }
        }
        else {
            for (w = 0; w < n_words; w++) {
                uint64_t joint = src[w] & mask[w];
                row[w] = joint;
                count += popcount64(joint);
            }
        }
        value = PyLong_FromLongLong(count);
        if (value == NULL)
            goto done;
        PyList_SET_ITEM(supports, i, value);
    }
    result = PyTuple_Pack(2, out, supports);
done:
    Py_XDECREF(out);
    Py_XDECREF(supports);
    PyMem_Free(mask);
    PyBuffer_Release(&rows.view);
    PyBuffer_Release(&mask_view);
    return result;
}

static PyObject *
native_intersect_count(PyObject *Py_UNUSED(self), PyObject *args)
{
    return intersect_count_impl(args, "Oy*:intersect_count", 0);
}

static PyObject *
native_intersect_count_bounded(PyObject *Py_UNUSED(self), PyObject *args)
{
    return intersect_count_impl(args, "Oy*L:intersect_count_bounded", 1);
}

static PyObject *
native_superset_max_support_bounded(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *rows_obj, *supports_obj, *fast = NULL, *result = NULL;
    Py_buffer mask_view;
    rows_buffer rows;
    uint64_t *mask = NULL;
    long long smin, best = 0;
    Py_ssize_t i, w, n_words;

    if (!PyArg_ParseTuple(args, "OOy*L:superset_max_support_bounded",
                          &rows_obj, &supports_obj, &mask_view, &smin))
        return NULL;
    if (get_rows(rows_obj, &rows) < 0) {
        PyBuffer_Release(&mask_view);
        return NULL;
    }
    n_words = rows.n_words;
    mask = get_mask(&mask_view, n_words);
    if (mask == NULL)
        goto done;
    fast = PySequence_Fast(supports_obj, "supports must be a sequence");
    if (fast == NULL)
        goto done;
    if (PySequence_Fast_GET_SIZE(fast) != rows.n_rows) {
        PyErr_Format(PyExc_ValueError,
                     "supports length %zd does not match %zd rows",
                     PySequence_Fast_GET_SIZE(fast), rows.n_rows);
        goto done;
    }
    for (i = 0; i < rows.n_rows; i++) {
        long long support =
            PyLong_AsLongLong(PySequence_Fast_GET_ITEM(fast, i));
        const uint64_t *src;
        int contains = 1;
        if (support == -1 && PyErr_Occurred())
            goto done;
        /* The support prefilter is the early abort: a row below smin
         * (or below the best answer so far) never reaches the
         * containment test. */
        if (support < smin || support <= best)
            continue;
        src = rows.data + i * n_words;
        for (w = 0; w < n_words; w++) {
            if ((src[w] & mask[w]) != mask[w]) {
                contains = 0;
                break;
            }
        }
        if (contains)
            best = support;
    }
    result = PyLong_FromLongLong(best);
done:
    Py_XDECREF(fast);
    PyMem_Free(mask);
    PyBuffer_Release(&rows.view);
    PyBuffer_Release(&mask_view);
    return result;
}

static PyObject *
native_popcount_rows(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *rows_obj, *supports = NULL, *result = NULL;
    rows_buffer rows;
    Py_ssize_t i, w;

    if (!PyArg_ParseTuple(args, "O:popcount_rows", &rows_obj))
        return NULL;
    if (get_rows(rows_obj, &rows) < 0)
        return NULL;
    supports = PyList_New(rows.n_rows);
    if (supports == NULL)
        goto done;
    for (i = 0; i < rows.n_rows; i++) {
        const uint64_t *src = rows.data + i * rows.n_words;
        int64_t count = 0;
        PyObject *value;
        for (w = 0; w < rows.n_words; w++)
            count += popcount64(src[w]);
        value = PyLong_FromLongLong(count);
        if (value == NULL) {
            Py_CLEAR(supports);
            goto done;
        }
        PyList_SET_ITEM(supports, i, value);
    }
    result = supports;
    supports = NULL;
done:
    Py_XDECREF(supports);
    PyBuffer_Release(&rows.view);
    return result;
}

static PyMethodDef native_methods[] = {
    {"intersect", native_intersect, METH_VARARGS,
     "intersect(rows, mask) -> bytes of every row AND the packed mask"},
    {"intersect_count", native_intersect_count, METH_VARARGS,
     "intersect_count(rows, mask) -> (joint bytes, per-row popcounts)"},
    {"intersect_count_bounded", native_intersect_count_bounded, METH_VARARGS,
     "intersect_count_bounded(rows, mask, smin) -> (joint bytes, "
     "supports with the BELOW_BOUND sentinel)"},
    {"superset_max_support_bounded", native_superset_max_support_bounded,
     METH_VARARGS,
     "superset_max_support_bounded(rows, supports, mask, smin) -> "
     "largest support >= smin over rows containing mask (0 if none)"},
    {"popcount_rows", native_popcount_rows, METH_VARARGS,
     "popcount_rows(rows) -> per-row popcounts"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "repro.kernels._native",
    "C implementations of the profiled-worst kernel primitives "
    "(consumed through repro.kernels.native.NativeBackend).",
    -1,
    native_methods,
    NULL,
    NULL,
    NULL,
    NULL,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    PyObject *module = PyModule_Create(&native_module);
    if (module == NULL)
        return NULL;
    if (PyModule_AddIntConstant(module, "BELOW_BOUND",
                                NATIVE_BELOW_BOUND) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}

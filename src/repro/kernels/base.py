"""The set-algebra kernel interface.

Every miner in this package bottoms out in the same handful of bitmask
operations: intersecting one set against many, counting members,
testing containment, AND-reducing a selected family.  A
:class:`KernelBackend` bundles *batched* forms of those primitives so a
hot loop can hand a whole family of sets to the backend in one call
instead of iterating in Python.

Two representations appear in the interface:

* **mask** — a plain Python integer bitmask, the package-wide canonical
  item set / tid set encoding (:mod:`repro.data.itemset`);
* **table** — an opaque, backend-specific packed form of a *fixed* list
  of masks, built once via :meth:`KernelBackend.pack` and reused across
  many calls (the numpy backend stores a ``(rows, words)`` ``uint64``
  matrix; the pure-int backend keeps the list).

All batch methods accept and return plain ints at the boundary, so a
miner can switch backends without changing its own data structures —
the backends differ only in how the batch is executed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["KernelBackend", "BELOW_BOUND"]

#: Support sentinel of the ``*_bounded`` primitives: an entry whose
#: *true* intersection support is below the requested ``smin`` reports
#: this value and a zeroed joint.  The sentinel is **data-dependent**,
#: never implementation-dependent — whether a backend actually skipped
#: work (the numpy blockwise early abort) or computed the full popcount
#: (the pure-int reference), the same entries carry the sentinel, so
#: cross-backend parity and the observability counters derived from it
#: stay exact and deterministic.
BELOW_BOUND = -1


class KernelBackend:
    """Abstract batched set algebra; see the module docstring.

    Concrete backends: :class:`repro.kernels.bitint.BitIntBackend`
    (arbitrary-precision Python ints, the seed implementation) and
    :class:`repro.kernels.numpy_packed.NumpyBackend` (packed ``uint64``
    rows with vectorised word-parallel operations).
    """

    __slots__ = ()

    #: Registry name of the backend.
    name: str = "?"
    #: True when the backend executes batches outside the interpreter
    #: loop; miners use this to pick their batched code paths.
    vectorized: bool = False

    # -- packed tables --------------------------------------------------

    def pack(self, masks: Sequence[int], n_bits: int):
        """Pack a fixed list of masks into the backend's table form."""
        raise NotImplementedError

    def unpack(self, table) -> List[int]:
        """The masks of a table, as plain ints, in row order."""
        raise NotImplementedError

    def table_len(self, table) -> int:
        """Number of rows in a table."""
        raise NotImplementedError

    # -- resident tables -------------------------------------------------
    # Tables are *resident*: a miner packs its repository or tid lists
    # once, holds the handle across kernel calls, and grows it in place
    # as new rows arrive.  The table-in/table-out primitives below keep
    # intermediate results in the packed domain — for the numpy backend
    # that means no int <-> ndarray conversion on the hot path, which is
    # what bounded the conversion-heavy primitives at ~1.0x before.

    def append_rows(self, table, masks: Sequence[int]) -> None:
        """Append masks to a table in place (amortised-doubling growth).

        Bumps the table's generation tag.  Masks must fit the table's
        packed width (``< 2**n_bits``, word-rounded).
        """
        raise NotImplementedError

    def table_generation(self, table) -> int:
        """Mutation counter of a table: 0 at pack time, +1 per append.

        Lets a cache (the serving engine's memoised packed family)
        validate a held handle without comparing contents.
        """
        raise NotImplementedError

    def table_row(self, table, index: int) -> int:
        """One table row as a plain int mask."""
        raise NotImplementedError

    def select_rows(self, table, indices: Sequence[int]):
        """A new table holding the given rows, in the given order."""
        raise NotImplementedError

    def superset_rows(self, table, mask: int) -> List[int]:
        """Indices (ascending) of the rows that contain ``mask``.

        The supersets_of serving query against a packed closed family.
        """
        raise NotImplementedError

    def intersect_rows(self, table, mask: int) -> List[int]:
        """``[row & mask for row in table]`` as plain ints.

        The flat cumulative repository sweep: the repository stays
        resident (packed once, grown via :meth:`append_rows`), only the
        per-transaction joints cross the int boundary.
        """
        raise NotImplementedError

    def intersect_table(self, table, mask: int, start: int = 0):
        """``row & mask`` for rows at index >= ``start``, as a new table.

        Table-in/table-out: the result never leaves the packed domain,
        so a descent that narrows a family repeatedly (Eclat) pays no
        conversion per level.
        """
        raise NotImplementedError

    def intersect_count_table(
        self, table, mask: int, start: int = 0
    ) -> Tuple[object, List[int]]:
        """:meth:`intersect_table` plus the popcount of every result row.

        Returns ``(joint_table, supports)``.
        """
        raise NotImplementedError

    def intersect_count_table_bounded(
        self, table, mask: int, smin: int, start: int = 0
    ) -> Tuple[object, List[int]]:
        """Early-stopping :meth:`intersect_count_table`.

        Every result row whose true popcount is below ``smin`` reports
        support :data:`BELOW_BOUND` and a zeroed joint row; rows at or
        above ``smin`` are exact and identical to the unbounded call.
        Backends may abort a row's popcount once the running count plus
        the remaining-word upper bound (``remaining_words * 64``) can no
        longer reach ``smin`` — the early-stopping rule of
        arXiv:1901.07773 — but the reported sentinel set depends only on
        the data (see :data:`BELOW_BOUND`).
        """
        raise NotImplementedError

    def intersect_count_many_bounded(
        self, masks: Sequence[int], mask: int, n_bits: int, smin: int
    ) -> Tuple[List[int], List[int]]:
        """Early-stopping :meth:`intersect_count_many` (mask-list form).

        Same sentinel contract as :meth:`intersect_count_table_bounded`:
        ``(joints, supports)`` with ``joints[i] = 0`` and
        ``supports[i] = BELOW_BOUND`` whenever the true joint popcount
        is below ``smin``.
        """
        raise NotImplementedError

    def intersect_count_rows_bounded(
        self, table, indices: Sequence[int], mask: int, smin: int
    ) -> Tuple[List[int], List[int]]:
        """Early-stopping :meth:`intersect_count_rows`.

        The LCM extension step with ``smin`` pushed down: infrequent
        extensions report the sentinel instead of a fully-materialised
        joint.  Same sentinel contract as the other bounded primitives.
        """
        raise NotImplementedError

    def superset_max_support_bounded(
        self, table, supports: Sequence[int], mask: int, smin: int
    ) -> int:
        """:meth:`superset_max_support` restricted to rows with
        ``supports[i] >= smin``.

        Returns 0 when no qualifying row contains ``mask``.  With
        ``smin <= min(supports)`` this equals the unbounded query; a
        higher ``smin`` lets the backend skip the containment test for
        rows that could not answer anyway (the serving point query
        where only frequent supersets matter).
        """
        raise NotImplementedError

    # -- scalar helpers --------------------------------------------------

    def popcount(self, mask: int) -> int:
        """Number of set bits of one mask."""
        raise NotImplementedError

    # -- batched primitives ---------------------------------------------

    def popcount_many(self, masks: Sequence[int]) -> List[int]:
        """Popcount of every mask in a list."""
        raise NotImplementedError

    def popcount_rows(self, table) -> List[int]:
        """Popcount of every row of a packed table."""
        raise NotImplementedError

    def intersect_many(self, masks: Sequence[int], mask: int, n_bits: int) -> List[int]:
        """``[m & mask for m in masks]`` as one batch."""
        raise NotImplementedError

    def intersect_count_many(
        self, masks: Sequence[int], mask: int, n_bits: int
    ) -> Tuple[List[int], List[int]]:
        """Intersections *and* their popcounts in one pass.

        Returns ``(joints, supports)`` with ``joints[i] = masks[i] & mask``
        and ``supports[i]`` its popcount — the shape of the Eclat / CHARM
        extension step, where every candidate's support is needed anyway.
        """
        raise NotImplementedError

    def intersect_count_rows(
        self, table, indices: Sequence[int], mask: int
    ) -> Tuple[List[int], List[int]]:
        """Like :meth:`intersect_count_many`, over selected table rows."""
        raise NotImplementedError

    def subset_any(self, table, mask: int, start: int = 0) -> bool:
        """Is ``mask`` a subset of any table row at index >= ``start``?

        The closedness backward check of the Carpenter family.
        """
        raise NotImplementedError

    def superset_max_support(self, table, supports: Sequence[int], mask: int) -> int:
        """Largest ``supports[i]`` over rows that contain ``mask``.

        ``supports`` is aligned with the table rows.  Returns 0 when no
        row is a superset.  This is the repository support query of the
        serving layer (support of a set = support of its smallest
        closed superset) executed against a packed closed family.
        """
        raise NotImplementedError

    def intersect_selected(self, table, selector: int) -> int:
        """AND-reduce the rows whose index bit is set in ``selector``.

        The closure computation: intersect the transactions of a cover.
        Returns the all-ones mask of the table width when ``selector``
        is empty (the neutral element over the packed width).
        """
        raise NotImplementedError

    def column_counts(self, masks: Sequence[int], n_bits: int) -> List[int]:
        """Per-bit occurrence counts over a list of masks.

        ``column_counts(transactions, n_items)[i]`` is the support of
        item ``i`` — the remaining-occurrence counter family behind the
        item-elimination pruning of IsTa and Carpenter.
        """
        raise NotImplementedError

    def bound_filter(self, counts, mask: int, threshold: int) -> int:
        """Bits of ``mask`` whose per-bit count reaches ``threshold``.

        ``counts`` is one row of the Table-1 matrix (a sequence for the
        pure-int backend, an ``ndarray`` row for numpy); the result is
        the item-elimination filter of table-based Carpenter as a mask.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"

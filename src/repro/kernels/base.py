"""The set-algebra kernel interface.

Every miner in this package bottoms out in the same handful of bitmask
operations: intersecting one set against many, counting members,
testing containment, AND-reducing a selected family.  A
:class:`KernelBackend` bundles *batched* forms of those primitives so a
hot loop can hand a whole family of sets to the backend in one call
instead of iterating in Python.

Two representations appear in the interface:

* **mask** — a plain Python integer bitmask, the package-wide canonical
  item set / tid set encoding (:mod:`repro.data.itemset`);
* **table** — an opaque, backend-specific packed form of a *fixed* list
  of masks, built once via :meth:`KernelBackend.pack` and reused across
  many calls (the numpy backend stores a ``(rows, words)`` ``uint64``
  matrix; the pure-int backend keeps the list).

All batch methods accept and return plain ints at the boundary, so a
miner can switch backends without changing its own data structures —
the backends differ only in how the batch is executed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["KernelBackend"]


class KernelBackend:
    """Abstract batched set algebra; see the module docstring.

    Concrete backends: :class:`repro.kernels.bitint.BitIntBackend`
    (arbitrary-precision Python ints, the seed implementation) and
    :class:`repro.kernels.numpy_packed.NumpyBackend` (packed ``uint64``
    rows with vectorised word-parallel operations).
    """

    __slots__ = ()

    #: Registry name of the backend.
    name: str = "?"
    #: True when the backend executes batches outside the interpreter
    #: loop; miners use this to pick their batched code paths.
    vectorized: bool = False

    # -- packed tables --------------------------------------------------

    def pack(self, masks: Sequence[int], n_bits: int):
        """Pack a fixed list of masks into the backend's table form."""
        raise NotImplementedError

    def unpack(self, table) -> List[int]:
        """The masks of a table, as plain ints, in row order."""
        raise NotImplementedError

    def table_len(self, table) -> int:
        """Number of rows in a table."""
        raise NotImplementedError

    # -- scalar helpers --------------------------------------------------

    def popcount(self, mask: int) -> int:
        """Number of set bits of one mask."""
        raise NotImplementedError

    # -- batched primitives ---------------------------------------------

    def popcount_many(self, masks: Sequence[int]) -> List[int]:
        """Popcount of every mask in a list."""
        raise NotImplementedError

    def popcount_rows(self, table) -> List[int]:
        """Popcount of every row of a packed table."""
        raise NotImplementedError

    def intersect_many(self, masks: Sequence[int], mask: int, n_bits: int) -> List[int]:
        """``[m & mask for m in masks]`` as one batch."""
        raise NotImplementedError

    def intersect_count_many(
        self, masks: Sequence[int], mask: int, n_bits: int
    ) -> Tuple[List[int], List[int]]:
        """Intersections *and* their popcounts in one pass.

        Returns ``(joints, supports)`` with ``joints[i] = masks[i] & mask``
        and ``supports[i]`` its popcount — the shape of the Eclat / CHARM
        extension step, where every candidate's support is needed anyway.
        """
        raise NotImplementedError

    def intersect_count_rows(
        self, table, indices: Sequence[int], mask: int
    ) -> Tuple[List[int], List[int]]:
        """Like :meth:`intersect_count_many`, over selected table rows."""
        raise NotImplementedError

    def subset_any(self, table, mask: int, start: int = 0) -> bool:
        """Is ``mask`` a subset of any table row at index >= ``start``?

        The closedness backward check of the Carpenter family.
        """
        raise NotImplementedError

    def superset_max_support(self, table, supports: Sequence[int], mask: int) -> int:
        """Largest ``supports[i]`` over rows that contain ``mask``.

        ``supports`` is aligned with the table rows.  Returns 0 when no
        row is a superset.  This is the repository support query of the
        serving layer (support of a set = support of its smallest
        closed superset) executed against a packed closed family.
        """
        raise NotImplementedError

    def intersect_selected(self, table, selector: int) -> int:
        """AND-reduce the rows whose index bit is set in ``selector``.

        The closure computation: intersect the transactions of a cover.
        Returns the all-ones mask of the table width when ``selector``
        is empty (the neutral element over the packed width).
        """
        raise NotImplementedError

    def column_counts(self, masks: Sequence[int], n_bits: int) -> List[int]:
        """Per-bit occurrence counts over a list of masks.

        ``column_counts(transactions, n_items)[i]`` is the support of
        item ``i`` — the remaining-occurrence counter family behind the
        item-elimination pruning of IsTa and Carpenter.
        """
        raise NotImplementedError

    def bound_filter(self, counts, mask: int, threshold: int) -> int:
        """Bits of ``mask`` whose per-bit count reaches ``threshold``.

        ``counts`` is one row of the Table-1 matrix (a sequence for the
        pure-int backend, an ``ndarray`` row for numpy); the result is
        the item-elimination filter of table-based Carpenter as a mask.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"

"""Native (C extension) kernel backend behind the same ABI.

:class:`NativeBackend` subclasses the numpy backend and re-routes the
profiled-worst primitives — the resident intersection family
(``intersect_table``, ``intersect_count_table``,
``intersect_count_table_bounded``), the serving point query
(``superset_max_support_bounded``) and ``popcount_rows`` — through
``repro.kernels._native``, a small C module built from
``src/repro/kernels/_native.c`` (an *optional* setuptools extension:
``pip install -e .`` builds it when a compiler is present and silently
skips it otherwise; ``python setup.py build_ext --inplace`` builds it
for a source checkout).

The C module consumes the resident :class:`PackedTable` matrix through
the buffer protocol and needs no numpy headers; masks cross the
boundary as ``int.to_bytes(n_words * 8, "little")`` and joint rows come
back as bytes wrapped into a fresh table.  Everything not listed above
(packing, appends, the mask-list forms, column counts, ...) inherits
the numpy/plain-int implementation unchanged — per-primitive best
implementation, exactly like the numpy backend's own hybrid split.

Why these five win in C even against vectorised numpy: the bench
fixture's rows are a few dozen words, so one numpy call spends more on
dispatch, broadcasting and temporaries (AND matrix, byte-count matrix,
reduction) than on the actual word loop.  The C loop fuses
AND + popcount + bound test into one pass over each row, honours the
exact ``BELOW_BOUND`` sentinel contract, and gives the early-stopping
rule word granularity instead of the half-split.

When the extension is not built this module still imports cleanly and
``HAVE_NATIVE`` is ``False``; the registry then leaves ``"native"``
unregistered and backend resolution falls back to ``numpy`` (see
:func:`repro.kernels.get_backend`).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .base import BELOW_BOUND
from .numpy_packed import _WORD_DTYPE, NumpyBackend, PackedTable

try:  # pragma: no cover - exercised via HAVE_NATIVE on both leg types
    from . import _native
except ImportError:  # compiler-absent install: pure-Python fallback
    _native = None

__all__ = ["HAVE_NATIVE", "NativeBackend"]

#: True when the optional C extension was built and imported.
HAVE_NATIVE = _native is not None

if _native is not None and _native.BELOW_BOUND != BELOW_BOUND:
    raise ImportError(
        f"repro.kernels._native sentinel {_native.BELOW_BOUND} does not "
        f"match BELOW_BOUND {BELOW_BOUND}; rebuild the extension"
    )


def _wrap_joint(data: bytes, table: PackedTable) -> PackedTable:
    joint = np.frombuffer(data, dtype=_WORD_DTYPE).reshape(-1, table.n_words)
    return PackedTable.from_rows(joint, table.n_bits)


class NativeBackend(NumpyBackend):
    """C-loop execution of the resident intersection family."""

    __slots__ = ()

    name = "native"
    vectorized = True

    # -- resident intersection family ------------------------------------

    def intersect_table(
        self, table: PackedTable, mask: int, start: int = 0
    ) -> PackedTable:
        rows = table.rows[start:]
        data = _native.intersect(
            rows, mask.to_bytes(table.n_words * 8, "little")
        )
        return _wrap_joint(data, table)

    def intersect_count_table(
        self, table: PackedTable, mask: int, start: int = 0
    ) -> Tuple[PackedTable, List[int]]:
        rows = table.rows[start:]
        data, supports = _native.intersect_count(
            rows, mask.to_bytes(table.n_words * 8, "little")
        )
        return _wrap_joint(data, table), supports

    def intersect_count_table_bounded(
        self, table: PackedTable, mask: int, smin: int, start: int = 0
    ) -> Tuple[PackedTable, List[int]]:
        rows = table.rows[start:]
        data, supports = _native.intersect_count_bounded(
            rows, mask.to_bytes(table.n_words * 8, "little"), smin
        )
        return _wrap_joint(data, table), supports

    def superset_max_support_bounded(
        self, table: PackedTable, supports: Sequence[int], mask: int, smin: int
    ) -> int:
        if not table._n_rows:
            return 0
        if mask >> (table.n_words * 64):
            # Query bits beyond the packed width: no row can cover them.
            return 0
        if not isinstance(supports, (list, tuple)):
            supports = list(supports)
        return _native.superset_max_support_bounded(
            table.rows,
            supports,
            mask.to_bytes(table.n_words * 8, "little"),
            smin,
        )

    # -- batched popcounts ------------------------------------------------

    def popcount_rows(self, table: PackedTable) -> List[int]:
        return _native.popcount_rows(table.rows)

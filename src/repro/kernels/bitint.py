"""Pure Python-int kernel backend.

The seed implementation of the set algebra: arbitrary-precision ints as
bitmasks, one C-level big-int operation per primitive.  Batches are
plain Python loops — this backend exists as the always-available
reference and as the fair baseline the numpy backend is measured
against in ``benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..data.itemset import _popcount
from .base import BELOW_BOUND, KernelBackend

__all__ = ["BitIntBackend", "BitTable"]


class BitTable:
    """Packed-table form of the pure-int backend: just the mask list.

    Resident like the numpy :class:`~repro.kernels.numpy_packed.PackedTable`:
    append-friendly (list append is already amortised-doubling) and
    generation-tagged so caches holding a handle can validate it.
    """

    __slots__ = ("masks", "n_bits", "generation")

    def __init__(self, masks: List[int], n_bits: int) -> None:
        self.masks = masks
        self.n_bits = n_bits
        self.generation = 0

    def __len__(self) -> int:
        return len(self.masks)


class BitIntBackend(KernelBackend):
    """Batched set algebra over plain Python ints (reference backend)."""

    __slots__ = ()

    name = "bitint"
    vectorized = False

    # -- packed tables --------------------------------------------------

    def pack(self, masks: Sequence[int], n_bits: int) -> BitTable:
        return BitTable(list(masks), n_bits)

    def unpack(self, table: BitTable) -> List[int]:
        return list(table.masks)

    def table_len(self, table: BitTable) -> int:
        return len(table.masks)

    # -- resident tables -------------------------------------------------

    def append_rows(self, table: BitTable, masks: Sequence[int]) -> None:
        table.masks.extend(masks)
        table.generation += 1

    def table_generation(self, table: BitTable) -> int:
        return table.generation

    def table_row(self, table: BitTable, index: int) -> int:
        return table.masks[index]

    def select_rows(self, table: BitTable, indices: Sequence[int]) -> BitTable:
        masks = table.masks
        return BitTable([masks[index] for index in indices], table.n_bits)

    def superset_rows(self, table: BitTable, mask: int) -> List[int]:
        return [
            index
            for index, row in enumerate(table.masks)
            if mask & ~row == 0
        ]

    def intersect_rows(self, table: BitTable, mask: int) -> List[int]:
        return [row & mask for row in table.masks]

    def intersect_table(self, table: BitTable, mask: int, start: int = 0) -> BitTable:
        return BitTable([row & mask for row in table.masks[start:]], table.n_bits)

    def intersect_count_table(
        self, table: BitTable, mask: int, start: int = 0
    ) -> Tuple[BitTable, List[int]]:
        joints = [row & mask for row in table.masks[start:]]
        return BitTable(joints, table.n_bits), [_popcount(joint) for joint in joints]

    def intersect_count_table_bounded(
        self, table: BitTable, mask: int, smin: int, start: int = 0
    ) -> Tuple[BitTable, List[int]]:
        # The big-int AND runs at C speed either way; the reference
        # backend realises only the sentinel contract, not the skip.
        joints: List[int] = []
        supports: List[int] = []
        for row in table.masks[start:]:
            joint = row & mask
            support = _popcount(joint)
            if support < smin:
                joints.append(0)
                supports.append(BELOW_BOUND)
            else:
                joints.append(joint)
                supports.append(support)
        return BitTable(joints, table.n_bits), supports

    def intersect_count_many_bounded(
        self, masks: Sequence[int], mask: int, n_bits: int, smin: int
    ) -> Tuple[List[int], List[int]]:
        joints: List[int] = []
        supports: List[int] = []
        for m in masks:
            joint = m & mask
            support = _popcount(joint)
            if support < smin:
                joints.append(0)
                supports.append(BELOW_BOUND)
            else:
                joints.append(joint)
                supports.append(support)
        return joints, supports

    def intersect_count_rows_bounded(
        self, table: BitTable, indices: Sequence[int], mask: int, smin: int
    ) -> Tuple[List[int], List[int]]:
        masks = table.masks
        joints: List[int] = []
        supports: List[int] = []
        for index in indices:
            joint = masks[index] & mask
            support = _popcount(joint)
            if support < smin:
                joints.append(0)
                supports.append(BELOW_BOUND)
            else:
                joints.append(joint)
                supports.append(support)
        return joints, supports

    def superset_max_support_bounded(
        self, table: BitTable, supports: Sequence[int], mask: int, smin: int
    ) -> int:
        best = 0
        for row, supp in zip(table.masks, supports):
            if supp > best and supp >= smin and mask & ~row == 0:
                best = supp
        return best

    # -- scalar helpers --------------------------------------------------

    def popcount(self, mask: int) -> int:
        return _popcount(mask)

    # -- batched primitives ---------------------------------------------

    def popcount_many(self, masks: Sequence[int]) -> List[int]:
        return [_popcount(mask) for mask in masks]

    def popcount_rows(self, table: BitTable) -> List[int]:
        return [_popcount(mask) for mask in table.masks]

    def intersect_many(self, masks: Sequence[int], mask: int, n_bits: int) -> List[int]:
        return [m & mask for m in masks]

    def intersect_count_many(
        self, masks: Sequence[int], mask: int, n_bits: int
    ) -> Tuple[List[int], List[int]]:
        joints = [m & mask for m in masks]
        return joints, [_popcount(joint) for joint in joints]

    def intersect_count_rows(
        self, table: BitTable, indices: Sequence[int], mask: int
    ) -> Tuple[List[int], List[int]]:
        masks = table.masks
        joints = [masks[index] & mask for index in indices]
        return joints, [_popcount(joint) for joint in joints]

    def subset_any(self, table: BitTable, mask: int, start: int = 0) -> bool:
        for row in table.masks[start:]:
            if mask & ~row == 0:
                return True
        return False

    def superset_max_support(
        self, table: BitTable, supports: Sequence[int], mask: int
    ) -> int:
        best = 0
        for row, supp in zip(table.masks, supports):
            if supp > best and mask & ~row == 0:
                best = supp
        return best

    def intersect_selected(self, table: BitTable, selector: int) -> int:
        result = (1 << table.n_bits) - 1 if table.n_bits else 0
        masks = table.masks
        remaining = selector
        while remaining:
            low = remaining & -remaining
            result &= masks[low.bit_length() - 1]
            if not result:
                break
            remaining ^= low
        return result

    def column_counts(self, masks: Sequence[int], n_bits: int) -> List[int]:
        counts = [0] * n_bits
        for mask in masks:
            remaining = mask
            while remaining:
                low = remaining & -remaining
                counts[low.bit_length() - 1] += 1
                remaining ^= low
        return counts

    def bound_filter(self, counts, mask: int, threshold: int) -> int:
        result = 0
        remaining = mask
        while remaining:
            low = remaining & -remaining
            if counts[low.bit_length() - 1] >= threshold:
                result |= low
            remaining ^= low
        return result

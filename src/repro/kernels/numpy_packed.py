"""NumPy packed-``uint64`` kernel backend.

Masks are packed into little-endian ``uint64`` word rows — a family of
``n`` sets over ``b`` bits becomes an ``(n, ceil(b/64))`` matrix — and
batched primitives run as vectorised word-parallel operations.  This is
the bit-parallel layout the paper's C implementations get from machine
words, recovered inside numpy.

A profiling note that shapes this file: CPython's arbitrary-precision
integers *already* execute ``&``, ``|`` and ``bit_count`` as C-level
word loops, so a numpy rewrite of a primitive only wins when the
pure-int form needs per-bit or per-row work in the interpreter.
Concretely (see ``benchmarks/BENCH_kernels.json``):

* ``column_counts`` (per-bit Python loop in the int backend),
  ``bound_filter`` (per-bit loop), ``subset_any`` (per-row loop) and
  ``popcount_rows`` (per-row method call) are vectorised here and win
  by large factors on wide dense data;
* ``intersect_many`` / ``intersect_count_many`` / ``intersect_selected``
  and friends are *conversion-bound*: the ``int ↔ bytes ↔ ndarray``
  round trip at the boundary costs more than the C big-int operation it
  replaces.  For those this backend deliberately executes the same
  plain-int code as the ``bitint`` backend — per-primitive best
  implementation, never slower than the reference.

Conversion between Python ints and packed rows goes through
``int.to_bytes`` / ``int.from_bytes`` (C-level, linear in the word
count).  Popcounts use ``numpy.bitwise_count`` (numpy >= 2.0) with a
byte-table fallback.

Tables are **resident**: a :class:`PackedTable` lives across kernel
calls, grows in place (:meth:`NumpyBackend.append_rows`, amortised
doubling) and carries a generation tag for cache validation.  It holds
*one* representation at a time — plain ints until a vectorised
primitive first needs the word matrix, then only the matrix (the ints
are dropped, never held alongside the packed rows at peak).  The
table-in/table-out primitives (``intersect_table`` and friends) keep
results in the packed domain, which is what finally breaks the ~1.0x
conversion ceiling on ``intersect_many`` / ``intersect_count_many``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.itemset import _popcount
from .base import BELOW_BOUND, KernelBackend

__all__ = ["NumpyBackend", "PackedTable"]

_WORD_DTYPE = np.dtype("<u8")
_WORD_BYTES = 8

#: Below this many total words, a gather-style vectorised call loses to
#: the plain big-int loop (fixed numpy dispatch overhead dominates);
#: primitives with both forms available switch on this.
_VECTOR_MIN_WORDS = 512

if hasattr(np, "bitwise_count"):
    def _popcount_matrix(rows: np.ndarray) -> np.ndarray:
        return np.bitwise_count(rows).sum(axis=1, dtype=np.int64)
else:  # pragma: no cover - numpy < 2.0 only
    _BYTE_POPCOUNT = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def _popcount_matrix(rows: np.ndarray) -> np.ndarray:
        if rows.size == 0:
            return np.zeros(rows.shape[0], dtype=np.int64)
        # Column-sliced inputs (the bounded half-split) are not
        # contiguous; the byte view needs an owned buffer.
        as_bytes = np.ascontiguousarray(rows).view(np.uint8).reshape(
            rows.shape[0], -1
        )
        return _BYTE_POPCOUNT[as_bytes].sum(axis=1, dtype=np.int64)


def _n_words(n_bits: int) -> int:
    return max(1, (n_bits + 63) // 64)


def _pack_mask(mask: int, n_words: int) -> np.ndarray:
    """One mask as a little-endian word row."""
    return np.frombuffer(mask.to_bytes(n_words * _WORD_BYTES, "little"), dtype=_WORD_DTYPE)


def _pack_masks(masks: Sequence[int], n_bits: int) -> np.ndarray:
    n_words = _n_words(n_bits)
    row_bytes = n_words * _WORD_BYTES
    buffer = b"".join(mask.to_bytes(row_bytes, "little") for mask in masks)
    rows = np.frombuffer(buffer, dtype=_WORD_DTYPE)
    return rows.reshape(len(masks), n_words) if masks else rows.reshape(0, n_words)


def _unpack_rows(rows: np.ndarray) -> List[int]:
    """Bulk row matrix -> plain ints (one tobytes, C-level slicing)."""
    if not rows.shape[0]:
        return []
    row_bytes = rows.shape[1] * _WORD_BYTES
    data = np.ascontiguousarray(rows).tobytes()
    return [
        int.from_bytes(data[offset : offset + row_bytes], "little")
        for offset in range(0, len(data), row_bytes)
    ]


#: The half-split bound only pays on wide rows: below this word count
#: the extra pass (slice copy + second popcount dispatch) costs as much
#: as it can save, so narrow joints take one full popcount and rely on
#: the sentinel alone.  Measured crossover on the bench fixture family:
#: ~0.9x at 64 words, ~0.78x at 256+ words when aborts trigger.
_SPLIT_MIN_WORDS = 64


def _bounded_supports(joint: np.ndarray, smin: int) -> np.ndarray:
    """Row popcounts with the half-split early-stopping rule.

    Counts the first half of each row's words, then finishes only the
    rows whose running count plus the remaining-word upper bound
    (``remaining_words * 64``) can still reach ``smin``
    (arXiv:1901.07773).  Rows settled early keep their partial count —
    provably below ``smin``, so callers sentinel them identically to a
    full count.  Rows that survive the bound get exact popcounts.
    """
    n_words = joint.shape[1]
    if smin <= 0 or n_words < _SPLIT_MIN_WORDS or not joint.shape[0]:
        return _popcount_matrix(joint)
    half = n_words // 2
    # Column slices are strided; popcount on a contiguous copy is
    # faster than on the strided view for every width this path sees.
    supports = _popcount_matrix(np.ascontiguousarray(joint[:, :half]))
    alive = supports + (n_words - half) * 64 >= smin
    if alive.all():
        supports += _popcount_matrix(np.ascontiguousarray(joint[:, half:]))
    elif alive.any():
        # Fancy indexing already yields an owned, contiguous tail.
        supports[alive] += _popcount_matrix(joint[alive, half:])
    return supports


class PackedTable:
    """A resident mask family: plain ints *or* a packed word matrix.

    Starts int-backed (packing is free); the ``(n, words)``
    little-endian ``uint64`` matrix is built on first use by a
    vectorised primitive, at which point the int list is **dropped** —
    the two representations are never held together at peak, and either
    can be rebuilt from the other on demand.  Appends grow whichever
    form is live (the matrix by amortised doubling) and bump
    ``generation`` so caches holding the handle can validate it.
    """

    __slots__ = ("n_bits", "n_words", "generation", "_n_rows", "_ints", "_rows")

    def __init__(self, ints: List[int], n_bits: int) -> None:
        self.n_bits = n_bits
        self.n_words = _n_words(n_bits)
        self.generation = 0
        self._n_rows = len(ints)
        self._ints: Optional[List[int]] = ints
        self._rows: Optional[np.ndarray] = None

    @classmethod
    def from_rows(cls, rows: np.ndarray, n_bits: int) -> "PackedTable":
        """Wrap an existing word matrix (table-out primitives)."""
        table = cls.__new__(cls)
        table.n_bits = n_bits
        table.n_words = rows.shape[1]
        table.generation = 0
        table._n_rows = rows.shape[0]
        table._ints = None
        table._rows = rows
        return table

    @property
    def rows(self) -> np.ndarray:
        """The packed matrix (materialises it and releases the ints)."""
        rows = self._rows
        if rows is None:
            rows = _pack_masks(self._ints, self.n_bits)
            self._rows = rows
            self._ints = None  # single residency: never both at peak
        return rows[: self._n_rows]

    @property
    def ints(self) -> List[int]:
        """The rows as plain ints (rebuilt per call once rows-backed)."""
        ints = self._ints
        if ints is None:
            return _unpack_rows(self._rows[: self._n_rows])
        return ints

    def __len__(self) -> int:
        return self._n_rows


class NumpyBackend(KernelBackend):
    """Word-parallel batched set algebra over packed uint64 rows."""

    __slots__ = ()

    name = "numpy"
    vectorized = True

    # -- packed tables --------------------------------------------------

    def pack(self, masks: Sequence[int], n_bits: int) -> PackedTable:
        return PackedTable(list(masks), n_bits)

    def unpack(self, table: PackedTable) -> List[int]:
        ints = table._ints
        return list(ints) if ints is not None else table.ints

    def table_len(self, table: PackedTable) -> int:
        return table._n_rows

    # -- resident tables -------------------------------------------------

    def append_rows(self, table: PackedTable, masks: Sequence[int]) -> None:
        masks = list(masks)
        ints = table._ints
        if ints is not None:
            # Int-backed: the list *is* the storage (already amortised).
            ints.extend(masks)
            table._n_rows += len(masks)
        else:
            needed = table._n_rows + len(masks)
            rows = table._rows
            capacity = rows.shape[0] if rows is not None else 0
            if capacity < needed or not rows.flags.writeable:
                # frombuffer-packed matrices are read-only and exactly
                # sized; the first append moves to an owned, writable
                # buffer, subsequent growth doubles it.
                new_capacity = max(needed, 2 * capacity, 8)
                grown = np.zeros((new_capacity, table.n_words), dtype=_WORD_DTYPE)
                if table._n_rows:
                    grown[: table._n_rows] = rows[: table._n_rows]
                table._rows = rows = grown
            if masks:
                rows[table._n_rows : needed] = _pack_masks(masks, table.n_bits)
            table._n_rows = needed
        table.generation += 1

    def table_generation(self, table: PackedTable) -> int:
        return table.generation

    def table_row(self, table: PackedTable, index: int) -> int:
        ints = table._ints
        if ints is not None:
            return ints[index]
        return int.from_bytes(table.rows[index].tobytes(), "little")

    def select_rows(self, table: PackedTable, indices: Sequence[int]) -> PackedTable:
        ints = table._ints
        if ints is not None:
            return PackedTable([ints[index] for index in indices], table.n_bits)
        indices = list(indices)
        if not indices:
            return PackedTable.from_rows(
                np.zeros((0, table.n_words), dtype=_WORD_DTYPE), table.n_bits
            )
        selected = table.rows[np.asarray(indices, dtype=np.intp)]
        return PackedTable.from_rows(selected, table.n_bits)

    def superset_rows(self, table: PackedTable, mask: int) -> List[int]:
        if not table._n_rows:
            return []
        if mask >> (table.n_words * 64):
            return []
        rows = table.rows
        candidate = _pack_mask(mask, table.n_words)
        hits = ((rows & candidate) == candidate).all(axis=1)
        return np.nonzero(hits)[0].tolist()

    def intersect_rows(self, table: PackedTable, mask: int) -> List[int]:
        ints = table._ints
        if ints is not None:
            # Int-backed: the plain loop beats AND-then-bulk-unpack.
            return [row & mask for row in ints]
        joint = table.rows & _pack_mask(mask, table.n_words)
        return _unpack_rows(joint)

    def intersect_table(
        self, table: PackedTable, mask: int, start: int = 0
    ) -> PackedTable:
        joint = table.rows[start:] & _pack_mask(mask, table.n_words)
        return PackedTable.from_rows(joint, table.n_bits)

    def intersect_count_table(
        self, table: PackedTable, mask: int, start: int = 0
    ) -> Tuple[PackedTable, List[int]]:
        joint = table.rows[start:] & _pack_mask(mask, table.n_words)
        supports = _popcount_matrix(joint)
        return PackedTable.from_rows(joint, table.n_bits), supports.tolist()

    def intersect_count_table_bounded(
        self, table: PackedTable, mask: int, smin: int, start: int = 0
    ) -> Tuple[PackedTable, List[int]]:
        joint = table.rows[start:] & _pack_mask(mask, table.n_words)
        supports = _bounded_supports(joint, smin)
        below = supports < smin
        if below.any():
            if below.all():
                joint.fill(0)
                supports = np.full(joint.shape[0], BELOW_BOUND, dtype=np.int64)
            else:
                joint[below] = 0
                supports = np.where(below, BELOW_BOUND, supports)
        return PackedTable.from_rows(joint, table.n_bits), supports.tolist()

    def intersect_count_many_bounded(
        self, masks: Sequence[int], mask: int, n_bits: int, smin: int
    ) -> Tuple[List[int], List[int]]:
        # Mask-list form: conversion-bound like intersect_count_many,
        # so the plain-int execution with the sentinel applied wins.
        joints: List[int] = []
        supports: List[int] = []
        for m in masks:
            joint = m & mask
            support = _popcount(joint)
            if support < smin:
                joints.append(0)
                supports.append(BELOW_BOUND)
            else:
                joints.append(joint)
                supports.append(support)
        return joints, supports

    def intersect_count_rows_bounded(
        self, table: PackedTable, indices: Sequence[int], mask: int, smin: int
    ) -> Tuple[List[int], List[int]]:
        indices = list(indices)
        ints = table._ints
        if ints is not None and len(indices) * table.n_words < _VECTOR_MIN_WORDS:
            joints: List[int] = []
            supports: List[int] = []
            for index in indices:
                joint = ints[index] & mask
                support = _popcount(joint)
                if support < smin:
                    joints.append(0)
                    supports.append(BELOW_BOUND)
                else:
                    joints.append(joint)
                    supports.append(support)
            return joints, supports
        if not indices:
            return [], []
        gathered = table.rows[np.asarray(indices, dtype=np.intp)]
        joint = gathered & _pack_mask(mask, table.n_words)
        support_arr = _bounded_supports(joint, smin)
        below = support_arr < smin
        if below.any():
            if below.all():
                joint.fill(0)
                support_arr = np.full(
                    joint.shape[0], BELOW_BOUND, dtype=np.int64
                )
            else:
                joint[below] = 0
                support_arr = np.where(below, BELOW_BOUND, support_arr)
        return _unpack_rows(joint), support_arr.tolist()

    def superset_max_support_bounded(
        self, table: PackedTable, supports: Sequence[int], mask: int, smin: int
    ) -> int:
        if not table._n_rows:
            return 0
        if mask >> (table.n_words * 64):
            return 0
        support_arr = np.asarray(supports, dtype=np.int64)
        eligible = support_arr >= smin
        if not eligible.any():
            return 0
        rows = table.rows
        candidate = _pack_mask(mask, table.n_words)
        if eligible.all():
            selected = ((rows & candidate) == candidate).all(axis=1)
            if not selected.any():
                return 0
            return int(support_arr[selected].max())
        # The support prefilter is the early abort: rows that could not
        # answer (support below smin) never reach the containment test.
        sub = rows[eligible]
        selected = ((sub & candidate) == candidate).all(axis=1)
        if not selected.any():
            return 0
        return int(support_arr[eligible][selected].max())

    # -- scalar helpers --------------------------------------------------

    def popcount(self, mask: int) -> int:
        return _popcount(mask)

    # -- conversion-bound primitives: plain-int execution ----------------
    # (see the module docstring — the int↔ndarray round trip costs more
    # than the C big-int operation it would replace)

    def popcount_many(self, masks: Sequence[int]) -> List[int]:
        return [_popcount(mask) for mask in masks]

    def intersect_many(self, masks: Sequence[int], mask: int, n_bits: int) -> List[int]:
        return [m & mask for m in masks]

    def intersect_count_many(
        self, masks: Sequence[int], mask: int, n_bits: int
    ) -> Tuple[List[int], List[int]]:
        joints = [m & mask for m in masks]
        return joints, [_popcount(joint) for joint in joints]

    def intersect_count_rows(
        self, table: PackedTable, indices: Sequence[int], mask: int
    ) -> Tuple[List[int], List[int]]:
        ints = table._ints
        if ints is None:
            # Rows-backed table: gather + AND in the packed domain.
            indices = list(indices)
            if not indices:
                return [], []
            gathered = table.rows[np.asarray(indices, dtype=np.intp)]
            joint = gathered & _pack_mask(mask, table.n_words)
            return _unpack_rows(joint), _popcount_matrix(joint).tolist()
        joints = [ints[index] & mask for index in indices]
        return joints, [_popcount(joint) for joint in joints]

    def intersect_selected(self, table: PackedTable, selector: int) -> int:
        result = (1 << table.n_bits) - 1 if table.n_bits else 0
        ints = table._ints
        if ints is None:
            # Rows-backed table: AND-reduce the selected rows without
            # rebuilding the int list.  The selector decodes through
            # unpackbits (no per-bit Python loop), and the reduction
            # runs in chunks with a zero check between them — the
            # vectorised analogue of the int loop's early break once
            # the running intersection empties.
            if not selector:
                return result
            n_rows = table._n_rows
            bits = np.unpackbits(
                np.frombuffer(
                    selector.to_bytes((n_rows + 7) // 8, "little"), dtype=np.uint8
                ),
                bitorder="little",
            )[:n_rows]
            indices = np.nonzero(bits)[0]
            if not indices.shape[0]:
                return result
            selected = table.rows[indices]
            acc: Optional[np.ndarray] = None
            for start in range(0, selected.shape[0], 16):
                chunk = np.bitwise_and.reduce(
                    selected[start : start + 16], axis=0
                )
                acc = chunk if acc is None else acc & chunk
                if not acc.any():
                    return 0
            return int.from_bytes(acc.tobytes(), "little")
        remaining = selector
        while remaining:
            low = remaining & -remaining
            result &= ints[low.bit_length() - 1]
            if not result:
                break
            remaining ^= low
        return result

    # -- vectorised primitives -------------------------------------------

    def popcount_rows(self, table: PackedTable) -> List[int]:
        return _popcount_matrix(table.rows).tolist()

    def subset_any(self, table: PackedTable, mask: int, start: int = 0) -> bool:
        rows = table.rows[start:]
        if not rows.shape[0]:
            return False
        candidate = _pack_mask(mask, table.rows.shape[1])
        return bool(((rows & candidate) == candidate).all(axis=1).any())

    def superset_max_support(
        self, table: PackedTable, supports: Sequence[int], mask: int
    ) -> int:
        rows = table.rows
        if not rows.shape[0]:
            return 0
        if mask >> (rows.shape[1] * 64):
            # Query bits beyond the packed width: no row can cover them.
            return 0
        candidate = _pack_mask(mask, rows.shape[1])
        selected = ((rows & candidate) == candidate).all(axis=1)
        if not selected.any():
            return 0
        return int(np.asarray(supports, dtype=np.int64)[selected].max())

    def column_counts(self, masks: Sequence[int], n_bits: int) -> List[int]:
        masks = list(masks)
        if not masks:
            return [0] * n_bits
        rows = _pack_masks(masks, n_bits)
        bits = np.unpackbits(
            rows.view(np.uint8).reshape(rows.shape[0], -1), axis=1, bitorder="little"
        )
        return bits[:, :n_bits].sum(axis=0, dtype=np.int64).tolist()

    def bound_filter(self, counts, mask: int, threshold: int) -> int:
        counts = np.asarray(counts)
        allowed = np.packbits(counts >= threshold, bitorder="little")
        return int.from_bytes(allowed.tobytes(), "little") & mask

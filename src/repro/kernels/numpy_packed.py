"""NumPy packed-``uint64`` kernel backend.

Masks are packed into little-endian ``uint64`` word rows — a family of
``n`` sets over ``b`` bits becomes an ``(n, ceil(b/64))`` matrix — and
batched primitives run as vectorised word-parallel operations.  This is
the bit-parallel layout the paper's C implementations get from machine
words, recovered inside numpy.

A profiling note that shapes this file: CPython's arbitrary-precision
integers *already* execute ``&``, ``|`` and ``bit_count`` as C-level
word loops, so a numpy rewrite of a primitive only wins when the
pure-int form needs per-bit or per-row work in the interpreter.
Concretely (see ``benchmarks/BENCH_kernels.json``):

* ``column_counts`` (per-bit Python loop in the int backend),
  ``bound_filter`` (per-bit loop), ``subset_any`` (per-row loop) and
  ``popcount_rows`` (per-row method call) are vectorised here and win
  by large factors on wide dense data;
* ``intersect_many`` / ``intersect_count_many`` / ``intersect_selected``
  and friends are *conversion-bound*: the ``int ↔ bytes ↔ ndarray``
  round trip at the boundary costs more than the C big-int operation it
  replaces.  For those this backend deliberately executes the same
  plain-int code as the ``bitint`` backend — per-primitive best
  implementation, never slower than the reference.

Conversion between Python ints and packed rows goes through
``int.to_bytes`` / ``int.from_bytes`` (C-level, linear in the word
count).  Popcounts use ``numpy.bitwise_count`` (numpy >= 2.0) with a
byte-table fallback.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.itemset import _popcount
from .base import KernelBackend

__all__ = ["NumpyBackend", "PackedTable"]

_WORD_DTYPE = np.dtype("<u8")
_WORD_BYTES = 8

if hasattr(np, "bitwise_count"):
    def _popcount_matrix(rows: np.ndarray) -> np.ndarray:
        return np.bitwise_count(rows).sum(axis=1, dtype=np.int64)
else:  # pragma: no cover - numpy < 2.0 only
    _BYTE_POPCOUNT = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def _popcount_matrix(rows: np.ndarray) -> np.ndarray:
        as_bytes = rows.view(np.uint8).reshape(rows.shape[0], -1)
        return _BYTE_POPCOUNT[as_bytes].sum(axis=1, dtype=np.int64)


def _n_words(n_bits: int) -> int:
    return max(1, (n_bits + 63) // 64)


def _pack_mask(mask: int, n_words: int) -> np.ndarray:
    """One mask as a little-endian word row."""
    return np.frombuffer(mask.to_bytes(n_words * _WORD_BYTES, "little"), dtype=_WORD_DTYPE)


def _pack_masks(masks: Sequence[int], n_bits: int) -> np.ndarray:
    n_words = _n_words(n_bits)
    row_bytes = n_words * _WORD_BYTES
    buffer = b"".join(mask.to_bytes(row_bytes, "little") for mask in masks)
    rows = np.frombuffer(buffer, dtype=_WORD_DTYPE)
    return rows.reshape(len(masks), n_words) if masks else rows.reshape(0, n_words)


class PackedTable:
    """A fixed mask family: plain ints plus a lazily-built word matrix.

    The ints serve the conversion-bound primitives at zero cost; the
    ``(n, words)`` little-endian ``uint64`` matrix is built on first
    use by a vectorised primitive (``subset_any``, ``popcount_rows``)
    and cached for the table's lifetime.
    """

    __slots__ = ("ints", "n_bits", "_rows")

    def __init__(self, ints: List[int], n_bits: int) -> None:
        self.ints = ints
        self.n_bits = n_bits
        self._rows: Optional[np.ndarray] = None

    @property
    def rows(self) -> np.ndarray:
        if self._rows is None:
            self._rows = _pack_masks(self.ints, self.n_bits)
        return self._rows

    def __len__(self) -> int:
        return len(self.ints)


class NumpyBackend(KernelBackend):
    """Word-parallel batched set algebra over packed uint64 rows."""

    __slots__ = ()

    name = "numpy"
    vectorized = True

    # -- packed tables --------------------------------------------------

    def pack(self, masks: Sequence[int], n_bits: int) -> PackedTable:
        return PackedTable(list(masks), n_bits)

    def unpack(self, table: PackedTable) -> List[int]:
        return list(table.ints)

    def table_len(self, table: PackedTable) -> int:
        return len(table.ints)

    # -- scalar helpers --------------------------------------------------

    def popcount(self, mask: int) -> int:
        return _popcount(mask)

    # -- conversion-bound primitives: plain-int execution ----------------
    # (see the module docstring — the int↔ndarray round trip costs more
    # than the C big-int operation it would replace)

    def popcount_many(self, masks: Sequence[int]) -> List[int]:
        return [_popcount(mask) for mask in masks]

    def intersect_many(self, masks: Sequence[int], mask: int, n_bits: int) -> List[int]:
        return [m & mask for m in masks]

    def intersect_count_many(
        self, masks: Sequence[int], mask: int, n_bits: int
    ) -> Tuple[List[int], List[int]]:
        joints = [m & mask for m in masks]
        return joints, [_popcount(joint) for joint in joints]

    def intersect_count_rows(
        self, table: PackedTable, indices: Sequence[int], mask: int
    ) -> Tuple[List[int], List[int]]:
        ints = table.ints
        joints = [ints[index] & mask for index in indices]
        return joints, [_popcount(joint) for joint in joints]

    def intersect_selected(self, table: PackedTable, selector: int) -> int:
        result = (1 << table.n_bits) - 1 if table.n_bits else 0
        ints = table.ints
        remaining = selector
        while remaining:
            low = remaining & -remaining
            result &= ints[low.bit_length() - 1]
            if not result:
                break
            remaining ^= low
        return result

    # -- vectorised primitives -------------------------------------------

    def popcount_rows(self, table: PackedTable) -> List[int]:
        return _popcount_matrix(table.rows).tolist()

    def subset_any(self, table: PackedTable, mask: int, start: int = 0) -> bool:
        rows = table.rows[start:]
        if not rows.shape[0]:
            return False
        candidate = _pack_mask(mask, table.rows.shape[1])
        return bool(((rows & candidate) == candidate).all(axis=1).any())

    def superset_max_support(
        self, table: PackedTable, supports: Sequence[int], mask: int
    ) -> int:
        rows = table.rows
        if not rows.shape[0]:
            return 0
        if mask >> (rows.shape[1] * 64):
            # Query bits beyond the packed width: no row can cover them.
            return 0
        candidate = _pack_mask(mask, rows.shape[1])
        selected = ((rows & candidate) == candidate).all(axis=1)
        if not selected.any():
            return 0
        return int(np.asarray(supports, dtype=np.int64)[selected].max())

    def column_counts(self, masks: Sequence[int], n_bits: int) -> List[int]:
        masks = list(masks)
        if not masks:
            return [0] * n_bits
        rows = _pack_masks(masks, n_bits)
        bits = np.unpackbits(
            rows.view(np.uint8).reshape(rows.shape[0], -1), axis=1, bitorder="little"
        )
        return bits[:, :n_bits].sum(axis=0, dtype=np.int64).tolist()

    def bound_filter(self, counts, mask: int, threshold: int) -> int:
        counts = np.asarray(counts)
        allowed = np.packbits(counts >= threshold, bitorder="little")
        return int.from_bytes(allowed.tobytes(), "little") & mask

"""Pluggable set-algebra kernel backends.

The miners' innermost loops — intersecting one item set (or tid set)
against a whole family, counting members, testing containment — are
routed through a :class:`~repro.kernels.base.KernelBackend`.  Two
interchangeable backends ship:

``"bitint"``
    The seed implementation: arbitrary-precision Python ints, one
    big-int C operation per primitive, batches as Python loops.
    Always available, and the default.

``"numpy"``
    Masks packed into little-endian ``uint64`` word rows; every batch
    is a handful of vectorised word-parallel numpy operations.  Wins
    on wide masks and large batches (the paper's gene-expression
    regime); see ``docs/performance.md`` and
    ``benchmarks/bench_kernels.py`` for the measured crossover.

Selection, in precedence order:

1. the ``backend=`` argument of :func:`repro.mining.mine` (a name or a
   :class:`KernelBackend` instance), also exposed as the CLI flag
   ``repro-mine mine --backend``;
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. the default, ``"bitint"``.
"""

from __future__ import annotations

import difflib
import os
from typing import Dict, List, Optional, Union

from .base import BELOW_BOUND, KernelBackend
from .bitint import BitIntBackend, BitTable
from .numpy_packed import NumpyBackend, PackedTable

__all__ = [
    "BELOW_BOUND",
    "KernelBackend",
    "BitIntBackend",
    "NumpyBackend",
    "BitTable",
    "PackedTable",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_backend",
    "resolve_backend",
]

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Name used when neither an argument nor the environment selects one.
DEFAULT_BACKEND = "bitint"

# Backends are stateless, so one shared instance per name suffices.
_BACKENDS: Dict[str, KernelBackend] = {
    BitIntBackend.name: BitIntBackend(),
    NumpyBackend.name: NumpyBackend(),
}


def available_backends() -> List[str]:
    """Sorted names of the registered kernel backends."""
    return sorted(_BACKENDS)


def get_backend(name: str) -> KernelBackend:
    """The backend registered under ``name`` (with a did-you-mean hint)."""
    if not isinstance(name, str):
        raise TypeError(f"backend name must be a string, got {type(name).__name__}")
    backend = _BACKENDS.get(name)
    if backend is None:
        close = difflib.get_close_matches(name, _BACKENDS, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ValueError(
            f"unknown kernel backend {name!r}{hint}; available: "
            f"{available_backends()}"
        )
    return backend


def resolve_backend(
    backend: Union[str, KernelBackend, None] = None,
) -> KernelBackend:
    """Resolve a backend spec: instance, name, environment, or default."""
    if isinstance(backend, KernelBackend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    return get_backend(backend)

"""Pluggable set-algebra kernel backends.

The miners' innermost loops — intersecting one item set (or tid set)
against a whole family, counting members, testing containment — are
routed through a :class:`~repro.kernels.base.KernelBackend`.  Three
interchangeable backends ship:

``"bitint"``
    The seed implementation: arbitrary-precision Python ints, one
    big-int C operation per primitive, batches as Python loops.
    Always available, and the default.

``"numpy"``
    Masks packed into little-endian ``uint64`` word rows; every batch
    is a handful of vectorised word-parallel numpy operations.  Wins
    on wide masks and large batches (the paper's gene-expression
    regime); see ``docs/performance.md`` and
    ``benchmarks/bench_kernels.py`` for the measured crossover.

``"native"``
    The numpy backend with the profiled-worst primitives (the resident
    intersection family, the bounded superset query, row popcounts)
    re-routed through an optional C extension
    (``repro.kernels._native``).  Only registered when the extension
    was built; selecting it on a build without the extension **falls
    back to numpy silently** — a pure-Python install keeps working
    unchanged with identical results (the sentinel contract is
    data-dependent, never backend-dependent).

Selection, in precedence order:

1. the ``backend=`` argument of :func:`repro.mining.mine` (a name or a
   :class:`KernelBackend` instance), also exposed as the CLI flag
   ``repro-mine mine --backend``;
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. the default, ``"bitint"``.

``repro-mine backends`` prints the registry, the native build status
and the resolution (with the reason) for the current environment.
"""

from __future__ import annotations

import difflib
import os
from typing import Dict, List, Optional, Union

from .base import BELOW_BOUND, KernelBackend
from .bitint import BitIntBackend, BitTable
from .native import HAVE_NATIVE, NativeBackend
from .numpy_packed import NumpyBackend, PackedTable

__all__ = [
    "BELOW_BOUND",
    "KernelBackend",
    "BitIntBackend",
    "NumpyBackend",
    "NativeBackend",
    "HAVE_NATIVE",
    "BitTable",
    "PackedTable",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "available_backends",
    "selectable_backends",
    "get_backend",
    "resolve_backend",
    "selection_report",
]

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Name used when neither an argument nor the environment selects one.
DEFAULT_BACKEND = "bitint"

# Backends are stateless, so one shared instance per name suffices.
_BACKENDS: Dict[str, KernelBackend] = {
    BitIntBackend.name: BitIntBackend(),
    NumpyBackend.name: NumpyBackend(),
}
if HAVE_NATIVE:
    _BACKENDS[NativeBackend.name] = NativeBackend()

#: Graceful degradation for optional backends: a *selectable* name that
#: is not registered (its extension is absent) resolves to the fallback
#: on the right instead of failing — installs without a compiler keep
#: working with the same flags, env vars and scripts.
_FALLBACKS: Dict[str, str] = {NativeBackend.name: NumpyBackend.name}


def available_backends() -> List[str]:
    """Sorted names of the registered (importable) kernel backends."""
    return sorted(_BACKENDS)


def selectable_backends() -> List[str]:
    """Sorted names accepted for selection (CLI flags, environment).

    A superset of :func:`available_backends`: optional backends stay
    selectable even when their extension is not built, resolving down
    the fallback chain — so ``--backend native`` is always a valid
    flag and never a hard error.
    """
    return sorted(set(_BACKENDS) | set(_FALLBACKS))


def get_backend(name: str) -> KernelBackend:
    """The backend registered under ``name`` (with a did-you-mean hint).

    Selectable-but-unregistered names (``"native"`` without the built
    extension) fall back silently — see :func:`selection_report` for
    the introspectable version of the same resolution.
    """
    if not isinstance(name, str):
        raise TypeError(f"backend name must be a string, got {type(name).__name__}")
    backend = _BACKENDS.get(name)
    while backend is None and name in _FALLBACKS:
        name = _FALLBACKS[name]
        backend = _BACKENDS.get(name)
    if backend is None:
        close = difflib.get_close_matches(name, selectable_backends(), n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ValueError(
            f"unknown kernel backend {name!r}{hint}; available: "
            f"{available_backends()}"
        )
    return backend


def resolve_backend(
    backend: Union[str, KernelBackend, None] = None,
) -> KernelBackend:
    """Resolve a backend spec: instance, name, environment, or default."""
    if isinstance(backend, KernelBackend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    return get_backend(backend)


def selection_report(
    backend: Union[str, KernelBackend, None] = None,
) -> Dict[str, Optional[str]]:
    """How :func:`resolve_backend` decides, as inspectable data.

    Returns a dict with the ``requested`` name, where it came from
    (``source``: ``"argument"`` / ``"environment"`` / ``"default"``),
    the ``resolved`` backend name actually returned, and a one-line
    human ``reason`` — the payload of ``repro-mine backends``.  Never
    raises for selectable names; an unknown requested name reports
    ``resolved=None`` with the error text as the reason.
    """
    if isinstance(backend, KernelBackend):
        return {
            "requested": backend.name,
            "source": "argument",
            "resolved": backend.name,
            "reason": "explicit KernelBackend instance, used as-is",
        }
    if backend is not None:
        requested, source = backend, "argument"
    else:
        env_value = os.environ.get(BACKEND_ENV_VAR)
        if env_value:
            requested, source = env_value, f"environment ({BACKEND_ENV_VAR})"
        else:
            requested, source = DEFAULT_BACKEND, "default"
    try:
        resolved = get_backend(requested)
    except (TypeError, ValueError) as exc:
        return {
            "requested": str(requested),
            "source": source,
            "resolved": None,
            "reason": str(exc),
        }
    if resolved.name == requested:
        reason = f"{requested!r} is registered, selected via {source}"
    else:
        reason = (
            f"{requested!r} (via {source}) is not built on this install; "
            f"fell back to {resolved.name!r}"
        )
    return {
        "requested": str(requested),
        "source": source,
        "resolved": resolved.name,
        "reason": reason,
    }

"""Unified mining front door.

:func:`mine` dispatches to any of the implemented algorithms by name,
so examples, tests and the benchmark harness can sweep over algorithms
uniformly:

>>> from repro.data import TransactionDatabase
>>> from repro.mining import mine
>>> db = TransactionDatabase.from_iterable([["a", "b"], ["a", "b"], ["b"]])
>>> mine(db, smin=2, algorithm="ista").labeled()
[(('b',), 3), (('a', 'b'), 2)]
"""

from __future__ import annotations

import difflib
import math
from typing import Callable, Dict, Optional

from .carpenter import mine_carpenter_lists, mine_carpenter_table, mine_cobbler
from .core import mine_cumulative, mine_ista
from .data.database import TransactionDatabase
from .enumeration import mine_apriori, mine_eclat, mine_fpgrowth, mine_lcm, mine_sam
from .kernels import resolve_backend
from .obs import resolve_probe
from .result import MiningResult
from .runtime import (
    FallbackPolicy,
    MiningCancelled,
    MiningInterrupted,
    RunGuard,
)
from .stats import OperationCounters

__all__ = [
    "mine",
    "choose_algorithm",
    "ALGORITHMS",
    "INTERSECTION_ALGORITHMS",
    "ENUMERATION_ALGORITHMS",
]

#: Algorithms of the intersection family (the paper's Section 3), plus
#: Cobbler, which starts in that family and may switch mid-search.
INTERSECTION_ALGORITHMS = (
    "ista",
    "cumulative-flat",
    "carpenter-lists",
    "carpenter-table",
    "cobbler",
)

#: Algorithms of the item set enumeration family (the paper's Section 2.2).
ENUMERATION_ALGORITHMS = ("apriori", "eclat", "fpgrowth", "lcm", "sam")

#: All mining entry points, keyed by their public name.
ALGORITHMS: Dict[str, Callable[..., MiningResult]] = {
    "ista": mine_ista,
    "cumulative-flat": mine_cumulative,
    "carpenter-lists": mine_carpenter_lists,
    "carpenter-table": mine_carpenter_table,
    "cobbler": mine_cobbler,
    "apriori": mine_apriori,
    "eclat": mine_eclat,
    "fpgrowth": mine_fpgrowth,
    "lcm": mine_lcm,
    "sam": mine_sam,
}

#: Algorithms whose native output is the closed family only.
_CLOSED_ONLY = set(INTERSECTION_ALGORITHMS) | {"lcm"}


def choose_algorithm(db: TransactionDatabase, target: str = "closed") -> str:
    """Pick an algorithm from the database shape (the paper's conclusion).

    The intersection approach "is the method of choice for data sets
    with few transactions and (very) many items"; candidate enumeration
    wins in the classic many-transactions regime.  The boundary used
    here — item base at least twice the transaction count — is where
    the crossovers of the reproduction's own sweeps fall.  ``target``
    matters because the intersection miners cannot produce target
    ``"all"``.
    """
    if target == "all":
        return "fpgrowth"
    if db.n_items >= 2 * db.n_transactions:
        return "ista"
    return "lcm"


def _validate_smin(smin, n_transactions: int) -> int:
    """Normalise ``smin`` to an absolute count, rejecting nonsense early."""
    if isinstance(smin, bool) or not isinstance(smin, (int, float)):
        raise TypeError(
            f"smin must be an int (absolute) or a float in (0, 1) "
            f"(relative), got {type(smin).__name__}"
        )
    if isinstance(smin, float):
        if not 0.0 < smin < 1.0:
            raise ValueError(
                f"relative minimum support must be in (0, 1), got {smin}; "
                f"pass an int for absolute support"
            )
        return max(1, math.ceil(smin * n_transactions))
    if smin < 1:
        raise ValueError(f"smin must be at least 1, got {smin}")
    return smin


def _resolve_algorithm(algorithm: str, db: TransactionDatabase, target: str) -> str:
    """Resolve ``"auto"`` and reject unknown names with a suggestion."""
    if not isinstance(algorithm, str):
        raise TypeError(
            f"algorithm must be a string, got {type(algorithm).__name__}"
        )
    if algorithm == "auto":
        return choose_algorithm(db, target)
    if algorithm not in ALGORITHMS:
        hint = ""
        close = difflib.get_close_matches(algorithm, ALGORITHMS, n=1)
        if close:
            hint = f" (did you mean {close[0]!r}?)"
        raise ValueError(
            f"unknown algorithm {algorithm!r}{hint}; available: "
            f"{sorted(ALGORITHMS)} or 'auto'"
        )
    return algorithm


def _run_one(
    algorithm: str,
    db: TransactionDatabase,
    smin: int,
    target: str,
    counters: Optional[OperationCounters],
    guard: Optional[RunGuard],
    backend,
    probe,
    options: Dict,
) -> MiningResult:
    """Run a single named algorithm (no fallback)."""
    miner = ALGORITHMS[algorithm]
    if algorithm in _CLOSED_ONLY:
        if target == "all":
            raise ValueError(
                f"{algorithm!r} mines closed sets only; use an enumeration "
                f"algorithm ({', '.join(ENUMERATION_ALGORITHMS)}) for target='all'"
            )
        result = miner(
            db, smin, counters=counters, guard=guard, backend=backend,
            probe=probe, **options
        )
        if target == "maximal":
            result = result.maximal()
            result.algorithm = f"{algorithm}-maximal"
        return result
    return miner(
        db, smin, target=target, counters=counters, guard=guard,
        backend=backend, probe=probe, **options
    )


def mine(
    db: TransactionDatabase,
    smin: float,
    algorithm: str = "ista",
    target: str = "closed",
    backend=None,
    counters: Optional[OperationCounters] = None,
    probe=None,
    guard: Optional[RunGuard] = None,
    timeout: Optional[float] = None,
    memory_limit_mb: Optional[float] = None,
    cancel=None,
    progress=None,
    fault_plan=None,
    fallback=None,
    on_partial: str = "raise",
    **options,
) -> MiningResult:
    """Mine frequent item sets.

    Parameters
    ----------
    db:
        The transaction database.
    smin:
        Minimum support.  An ``int >= 1`` is an absolute transaction
        count; a ``float`` in ``(0, 1)`` is the relative form the paper
        notes is equivalent (fraction of the transactions, rounded up).
    algorithm:
        One of :data:`ALGORITHMS`.
    target:
        ``"closed"`` (default), ``"maximal"``, or ``"all"``.  The
        intersection algorithms and LCM produce closed sets natively;
        for them ``"maximal"`` filters the closed family and ``"all"``
        is rejected (use an enumeration algorithm).
    backend:
        Set-algebra kernel backend: a name from
        :func:`repro.kernels.available_backends` (``"bitint"``,
        ``"numpy"``), a :class:`~repro.kernels.base.KernelBackend`
        instance, or ``None`` to consult the ``REPRO_KERNEL_BACKEND``
        environment variable (default ``"bitint"``).  The backend
        survives fallback chains: every attempted algorithm runs with
        the same kernel.
    counters:
        Optional :class:`~repro.stats.OperationCounters` to fill in.
    probe:
        Optional :class:`repro.obs.Probe`.  When given, the run fills
        the probe's metrics registry (operation counters, kernel
        primitive calls and bytes, guard samples) and its tracer
        (``recode`` / ``mine`` / ``report`` phase spans).  ``None``
        (default) keeps every hot path identical to the uninstrumented
        code; see ``docs/observability.md``.
    guard:
        A preconfigured :class:`~repro.runtime.RunGuard`.  Mutually
        exclusive with the ``timeout`` / ``memory_limit_mb`` / ``cancel``
        / ``progress`` / ``fault_plan`` shorthands, which build one.
    timeout:
        Wall-clock budget in seconds for the run (per attempt when a
        fallback chain is active).
    memory_limit_mb:
        Memory budget in mebibytes (tracemalloc delta).
    cancel:
        A :class:`~repro.runtime.CancellationToken` for cooperative
        cancellation from another thread.
    progress:
        Callback ``(ProgressInfo) -> None`` invoked periodically.
    fault_plan:
        A :class:`~repro.runtime.FaultPlan` for deterministic fault
        injection (testing).
    fallback:
        Fallback policy: ``True`` / ``"default"`` for the default chain,
        a comma-separated string or sequence of algorithm names, or a
        :class:`~repro.runtime.FallbackPolicy`.  When the requested
        algorithm is interrupted by the guard, the next chain member is
        tried with a fresh deadline.  Cancellation is never retried.
    on_partial:
        ``"raise"`` (default) re-raises the interruption when the whole
        chain fails; ``"return"`` instead returns the best partial
        (anytime) result, marked ``interrupted=True``.
    options:
        Algorithm-specific keyword options (e.g. ``prune=False`` for
        IsTa, ``repository_kind="hash"`` for Carpenter).

    Returns
    -------
    MiningResult
    """
    if target not in ("all", "closed", "maximal"):
        raise ValueError(f"unknown target {target!r}")
    algorithm = _resolve_algorithm(algorithm, db, target)
    smin = _validate_smin(smin, db.n_transactions)
    backend = resolve_backend(backend)
    obs = resolve_probe(probe)

    if guard is not None and any(
        value is not None
        for value in (timeout, memory_limit_mb, cancel, progress, fault_plan)
    ):
        raise ValueError(
            "pass either a preconfigured guard= or the timeout= / "
            "memory_limit_mb= / cancel= / progress= / fault_plan= "
            "shorthands, not both"
        )
    policy = FallbackPolicy.coerce(fallback, on_partial=on_partial)
    if policy is not None:
        on_partial = policy.on_partial
    elif on_partial not in ("raise", "return"):
        raise ValueError(f"on_partial must be 'raise' or 'return', got {on_partial!r}")

    if db.n_transactions == 0:
        # Well-defined empty answer (after validation, so bad arguments
        # still fail loudly on empty input).
        return MiningResult({}, db.item_labels, algorithm, smin)

    # Attempt order: the requested algorithm, then the chain members
    # (skipping duplicates and, for target="all", closed-only miners).
    # Validated *before* any guard is constructed so a bad chain cannot
    # leak guard resources (the memory meter keeps tracemalloc enabled
    # until finish()).
    attempts = [algorithm]
    if policy is not None:
        for name in policy.chain:
            if name not in ALGORITHMS:
                close = difflib.get_close_matches(name, ALGORITHMS, n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                raise ValueError(
                    f"unknown algorithm {name!r} in fallback chain{hint}"
                )
            if name in attempts:
                continue
            if target == "all" and name in _CLOSED_ONLY:
                continue
            attempts.append(name)

    if guard is None and any(
        value is not None
        for value in (timeout, memory_limit_mb, cancel, progress, fault_plan)
    ):
        guard = RunGuard(
            timeout=timeout,
            memory_limit_mb=memory_limit_mb,
            cancel=cancel,
            fault_plan=fault_plan,
            progress=progress,
            probe=obs,
        )
    elif guard is not None and obs.active and guard.probe is None:
        guard.probe = obs

    path = []
    best_partial: Optional[MiningResult] = None
    last_exc: Optional[MiningInterrupted] = None
    try:
        for attempt_index, name in enumerate(attempts):
            # Algorithm-specific options only make sense for the
            # algorithm they were written for.
            attempt_options = options if name == algorithm else {}
            attempt_guard = guard
            if guard is not None and attempt_index > 0:
                attempt_guard = guard.respawn()
                guard = attempt_guard
            obs.count("mine.attempts")
            try:
                result = _run_one(
                    name, db, smin, target, counters, attempt_guard,
                    backend, probe, attempt_options,
                )
            except MiningCancelled as exc:
                # Cancellation is a user decision, never retried.
                exc.fallback_path = tuple(path)
                raise
            except MiningInterrupted as exc:
                path.append(name)
                exc.fallback_path = tuple(path)
                obs.count("mine.interruptions")
                obs.event("fallback", failed=name, error=type(exc).__name__)
                last_exc = exc
                if exc.partial is not None and (
                    best_partial is None or len(exc.partial) > len(best_partial)
                ):
                    best_partial = exc.partial
                continue
            result.fallback_path = tuple(path)
            return result
    finally:
        if guard is not None:
            guard.finish()

    if on_partial == "return" and best_partial is not None:
        best_partial.interrupted = True
        best_partial.fallback_path = tuple(path)
        return best_partial
    assert last_exc is not None
    raise last_exc

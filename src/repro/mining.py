"""Unified mining front door.

:func:`mine` dispatches to any of the implemented algorithms by name,
so examples, tests and the benchmark harness can sweep over algorithms
uniformly:

>>> from repro.data import TransactionDatabase
>>> from repro.mining import mine
>>> db = TransactionDatabase.from_iterable([["a", "b"], ["a", "b"], ["b"]])
>>> mine(db, smin=2, algorithm="ista").labeled()
[(('b',), 3), (('a', 'b'), 2)]
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from .carpenter import mine_carpenter_lists, mine_carpenter_table, mine_cobbler
from .core import mine_cumulative, mine_ista
from .data.database import TransactionDatabase
from .enumeration import mine_apriori, mine_eclat, mine_fpgrowth, mine_lcm, mine_sam
from .result import MiningResult
from .stats import OperationCounters

__all__ = [
    "mine",
    "choose_algorithm",
    "ALGORITHMS",
    "INTERSECTION_ALGORITHMS",
    "ENUMERATION_ALGORITHMS",
]

#: Algorithms of the intersection family (the paper's Section 3), plus
#: Cobbler, which starts in that family and may switch mid-search.
INTERSECTION_ALGORITHMS = (
    "ista",
    "cumulative-flat",
    "carpenter-lists",
    "carpenter-table",
    "cobbler",
)

#: Algorithms of the item set enumeration family (the paper's Section 2.2).
ENUMERATION_ALGORITHMS = ("apriori", "eclat", "fpgrowth", "lcm", "sam")

#: All mining entry points, keyed by their public name.
ALGORITHMS: Dict[str, Callable[..., MiningResult]] = {
    "ista": mine_ista,
    "cumulative-flat": mine_cumulative,
    "carpenter-lists": mine_carpenter_lists,
    "carpenter-table": mine_carpenter_table,
    "cobbler": mine_cobbler,
    "apriori": mine_apriori,
    "eclat": mine_eclat,
    "fpgrowth": mine_fpgrowth,
    "lcm": mine_lcm,
    "sam": mine_sam,
}

#: Algorithms whose native output is the closed family only.
_CLOSED_ONLY = set(INTERSECTION_ALGORITHMS) | {"lcm"}


def choose_algorithm(db: TransactionDatabase, target: str = "closed") -> str:
    """Pick an algorithm from the database shape (the paper's conclusion).

    The intersection approach "is the method of choice for data sets
    with few transactions and (very) many items"; candidate enumeration
    wins in the classic many-transactions regime.  The boundary used
    here — item base at least twice the transaction count — is where
    the crossovers of the reproduction's own sweeps fall.  ``target``
    matters because the intersection miners cannot produce target
    ``"all"``.
    """
    if target == "all":
        return "fpgrowth"
    if db.n_items >= 2 * db.n_transactions:
        return "ista"
    return "lcm"


def mine(
    db: TransactionDatabase,
    smin: float,
    algorithm: str = "ista",
    target: str = "closed",
    counters: Optional[OperationCounters] = None,
    **options,
) -> MiningResult:
    """Mine frequent item sets.

    Parameters
    ----------
    db:
        The transaction database.
    smin:
        Minimum support.  An ``int >= 1`` is an absolute transaction
        count; a ``float`` in ``(0, 1)`` is the relative form the paper
        notes is equivalent (fraction of the transactions, rounded up).
    algorithm:
        One of :data:`ALGORITHMS`.
    target:
        ``"closed"`` (default), ``"maximal"``, or ``"all"``.  The
        intersection algorithms and LCM produce closed sets natively;
        for them ``"maximal"`` filters the closed family and ``"all"``
        is rejected (use an enumeration algorithm).
    counters:
        Optional :class:`~repro.stats.OperationCounters` to fill in.
    options:
        Algorithm-specific keyword options (e.g. ``prune=False`` for
        IsTa, ``repository_kind="hash"`` for Carpenter).

    Returns
    -------
    MiningResult
    """
    if algorithm == "auto":
        algorithm = choose_algorithm(db, target)
    miner = ALGORITHMS.get(algorithm)
    if miner is None:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; available: "
            f"{sorted(ALGORITHMS)} or 'auto'"
        )
    if target not in ("all", "closed", "maximal"):
        raise ValueError(f"unknown target {target!r}")
    if isinstance(smin, float):
        if not 0.0 < smin < 1.0:
            raise ValueError(
                f"relative minimum support must be in (0, 1), got {smin}; "
                f"pass an int for absolute support"
            )
        smin = max(1, math.ceil(smin * db.n_transactions))

    if algorithm in _CLOSED_ONLY:
        if target == "all":
            raise ValueError(
                f"{algorithm!r} mines closed sets only; use an enumeration "
                f"algorithm ({', '.join(ENUMERATION_ALGORITHMS)}) for target='all'"
            )
        result = miner(db, smin, counters=counters, **options)
        if target == "maximal":
            result = result.maximal()
            result.algorithm = f"{algorithm}-maximal"
        return result
    return miner(db, smin, target=target, counters=counters, **options)

"""Tests for the MiningResult container."""

import pytest

from repro.data import itemset
from repro.result import MiningResult


def mk(supports, labels=None, **kw):
    return MiningResult(supports, labels, **kw)


class TestValidation:
    def test_negative_mask_rejected(self):
        with pytest.raises(ValueError):
            mk({-1: 2})

    def test_non_positive_support_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            mk({0b1: 0})

    def test_from_pairs_conflicting_supports_rejected(self):
        with pytest.raises(ValueError, match="conflicting"):
            MiningResult.from_pairs([(0b1, 2), (0b1, 3)])

    def test_from_pairs_duplicate_agreeing_ok(self):
        result = MiningResult.from_pairs([(0b1, 2), (0b1, 2)])
        assert len(result) == 1


class TestMappingBehaviour:
    def test_canonical_iteration_order(self):
        result = mk({0b11: 1, 0b1: 2, 0b10: 3})
        assert list(result) == [0b1, 0b10, 0b11]

    def test_getitem_and_support_of(self):
        result = mk({0b1: 2})
        assert result[0b1] == 2
        assert result.support_of(0b1) == 2
        assert result.support_of(0b10) is None
        assert result.support_of(0b10, 0) == 0

    def test_equality_ignores_metadata(self):
        a = mk({0b1: 2}, algorithm="x")
        b = mk({0b1: 2}, algorithm="y")
        assert a == b
        assert a == {0b1: 2}
        assert a != mk({0b1: 3})

    def test_contains(self):
        result = mk({0b1: 2})
        assert 0b1 in result
        assert 0b10 not in result


class TestViews:
    def test_labeled(self):
        result = mk({0b101: 4}, labels := ["a", "b", "c"])
        assert result.labeled() == [(("a", "c"), 4)]

    def test_as_frozensets(self):
        result = mk({0b11: 2}, ["x", "y"])
        assert result.as_frozensets() == {frozenset(["x", "y"]): 2}

    def test_to_lines(self):
        result = mk({0b11: 2}, ["a", "b"])
        assert result.to_lines() == ["a b (2)"]
        assert result.to_lines(with_support=False) == ["a b"]

    def test_total_size(self):
        result = mk({0b111: 1, 0b1: 1})
        assert result.total_size() == 4


class TestDerivedFamilies:
    def test_restrict_support(self):
        result = mk({0b1: 5, 0b10: 2})
        assert dict(result.restrict_support(3)) == {0b1: 5}

    def test_maximal(self):
        result = mk({0b1: 3, 0b11: 2, 0b100: 1})
        assert dict(result.maximal()) == {0b11: 2, 0b100: 1}

    def test_maximal_of_chain(self):
        result = mk({0b1: 3, 0b11: 2, 0b111: 1})
        assert dict(result.maximal()) == {0b111: 1}

    def test_repr(self):
        assert "2 item sets" in repr(mk({0b1: 1, 0b10: 1}))

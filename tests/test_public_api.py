"""Package-surface checks: exports, docstrings, doctests."""

import doctest
import inspect

import pytest

import repro
import repro.closure.galois
import repro.data.io
import repro.data.itemset
import repro.data.matrix
import repro.mining
import repro.rules
import repro.serving
from repro.core import incremental


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_algorithm_registry_entries_callable(self):
        for name, miner in repro.ALGORITHMS.items():
            assert callable(miner), name

    def test_serving_surface(self):
        """The warm-path serving API is reachable from the top level."""
        for name in (
            "IncrementalMiner",
            "SnapshotError",
            "dumps_snapshot",
            "loads_snapshot",
            "save_snapshot",
            "load_snapshot",
            "merge_miners",
            "build_miner_parallel",
        ):
            assert name in repro.__all__, name
            assert getattr(repro, name) is getattr(repro.serving, name), name

    def test_snapshot_round_trip_through_top_level(self):
        miner = repro.IncrementalMiner()
        miner.extend([["a", "b"], ["b", "c"]])
        restored = repro.loads_snapshot(repro.dumps_snapshot(miner))
        assert dict(restored.closed_sets(1)) == dict(miner.closed_sets(1))


class TestDocumentation:
    MODULES = [
        repro,
        repro.mining,
        repro.rules,
        repro.serving,
        repro.data.itemset,
        repro.data.io,
        repro.closure.galois,
    ]

    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_module_docstrings(self, module):
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_public_functions_have_docstrings(self):
        import repro.carpenter.list_based
        import repro.core.ista
        import repro.enumeration.lcm

        for module in [
            repro.mining,
            repro.rules,
            repro.core.ista,
            repro.carpenter.list_based,
            repro.enumeration.lcm,
        ]:
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    assert obj.__doc__, f"{module.__name__}.{name} lacks a docstring"


class TestDoctests:
    MODULES = [
        repro.data.itemset,
        repro.data.matrix,
        repro.mining,
        incremental,
    ]

    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_doctests_pass(self, module):
        failures, tried = doctest.testmod(module, verbose=False).failed, None
        assert failures == 0

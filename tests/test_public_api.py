"""Package-surface checks: exports, docstrings, doctests."""

import doctest
import inspect

import pytest

import repro
import repro.closure.galois
import repro.data.io
import repro.data.itemset
import repro.data.matrix
import repro.mining
import repro.rules
from repro.core import incremental


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_algorithm_registry_entries_callable(self):
        for name, miner in repro.ALGORITHMS.items():
            assert callable(miner), name


class TestDocumentation:
    MODULES = [
        repro,
        repro.mining,
        repro.rules,
        repro.data.itemset,
        repro.data.io,
        repro.closure.galois,
    ]

    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_module_docstrings(self, module):
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_public_functions_have_docstrings(self):
        import repro.carpenter.list_based
        import repro.core.ista
        import repro.enumeration.lcm

        for module in [
            repro.mining,
            repro.rules,
            repro.core.ista,
            repro.carpenter.list_based,
            repro.enumeration.lcm,
        ]:
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    assert obj.__doc__, f"{module.__name__}.{name} lacks a docstring"


class TestDoctests:
    MODULES = [
        repro.data.itemset,
        repro.data.matrix,
        repro.mining,
        incremental,
    ]

    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_doctests_pass(self, module):
        failures, tried = doctest.testmod(module, verbose=False).failed, None
        assert failures == 0

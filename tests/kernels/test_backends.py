"""Kernel backend registry, selection, and primitive parity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    HAVE_NATIVE,
    available_backends,
    get_backend,
    resolve_backend,
    selectable_backends,
    selection_report,
)
from repro.kernels.base import KernelBackend
from repro.kernels.bitint import BitIntBackend, BitTable
from repro.kernels.numpy_packed import NumpyBackend, PackedTable

BACKENDS = [get_backend(name) for name in available_backends()]


class TestRegistry:
    def test_bitint_always_available(self):
        assert "bitint" in available_backends()

    def test_numpy_registered(self):
        assert "numpy" in available_backends()

    def test_get_backend_returns_kernel(self):
        for name in available_backends():
            kernel = get_backend(name)
            assert isinstance(kernel, KernelBackend)
            assert kernel.name == name

    def test_unknown_backend_suggests(self):
        with pytest.raises(ValueError, match="bitint"):
            get_backend("bitnit")

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ValueError, match="numpy"):
            get_backend("no-such-backend")


class TestResolve:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None).name == DEFAULT_BACKEND

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_argument_overrides_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend("bitint").name == "bitint"

    def test_instance_passes_through(self):
        kernel = get_backend("numpy")
        assert resolve_backend(kernel) is kernel

    def test_bad_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
        with pytest.raises(ValueError):
            resolve_backend(None)


class TestNativeRegistry:
    """The optional native backend: registration, fallback, reporting."""

    def test_selectable_is_superset_of_available(self):
        assert set(available_backends()) <= set(selectable_backends())

    def test_native_always_selectable(self):
        # The flag/env value 'native' must stay valid on every install,
        # built extension or not — that is the graceful-degradation
        # contract of the fallback chain.
        assert "native" in selectable_backends()

    def test_native_registered_iff_extension_built(self):
        assert ("native" in available_backends()) == HAVE_NATIVE

    def test_unbuilt_native_falls_back_to_numpy(self, monkeypatch):
        """Simulate an install without the extension: silent fallback."""
        from repro import kernels

        monkeypatch.delitem(kernels._BACKENDS, "native", raising=False)
        assert kernels.get_backend("native").name == "numpy"
        assert kernels.resolve_backend("native").name == "numpy"
        report = kernels.selection_report("native")
        assert report["resolved"] == "numpy"
        assert "fell back" in report["reason"]

    def test_env_var_native_falls_back_when_unbuilt(self, monkeypatch):
        from repro import kernels

        monkeypatch.delitem(kernels._BACKENDS, "native", raising=False)
        monkeypatch.setenv(BACKEND_ENV_VAR, "native")
        assert kernels.resolve_backend(None).name == "numpy"

    def test_selection_report_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        report = selection_report()
        assert report["requested"] == DEFAULT_BACKEND
        assert report["source"] == "default"
        assert report["resolved"] == DEFAULT_BACKEND

    def test_selection_report_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        report = selection_report()
        assert report["source"].startswith("environment")
        assert report["resolved"] == "numpy"

    def test_selection_report_unknown_name_never_raises(self):
        report = selection_report("fortran")
        assert report["resolved"] is None
        assert "fortran" in report["reason"]

    @pytest.mark.skipif(not HAVE_NATIVE, reason="native extension not built")
    def test_native_backend_registered_and_slotted(self):
        kernel = get_backend("native")
        assert kernel.name == "native"
        assert not hasattr(kernel, "__dict__")


masks_strategy = st.lists(st.integers(min_value=0), min_size=0, max_size=12)


def _clip(masks, n_bits):
    limit = (1 << n_bits) - 1
    return [m & limit for m in masks]


class TestPrimitiveParity:
    """Every backend must compute exactly what the bitint reference does."""

    @given(masks=masks_strategy, probe=st.integers(min_value=0), n_bits=st.integers(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_intersect_family(self, masks, probe, n_bits):
        masks, probe = _clip(masks, n_bits), probe & ((1 << n_bits) - 1)
        ref = get_backend("bitint")
        for kernel in BACKENDS:
            assert kernel.intersect_many(masks, probe, n_bits) == ref.intersect_many(
                masks, probe, n_bits
            )
            assert kernel.intersect_count_many(
                masks, probe, n_bits
            ) == ref.intersect_count_many(masks, probe, n_bits)
            assert kernel.popcount_many(masks) == ref.popcount_many(masks)

    @given(masks=masks_strategy, n_bits=st.integers(1, 200), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_table_primitives(self, masks, n_bits, data):
        masks = _clip(masks, n_bits)
        ref = get_backend("bitint")
        ref_table = ref.pack(masks, n_bits)
        selector = data.draw(st.integers(0, (1 << len(masks)) - 1)) if masks else 0
        needle = data.draw(st.integers(0, (1 << n_bits) - 1))
        start = data.draw(st.integers(0, len(masks)))
        indices = (
            data.draw(st.lists(st.integers(0, len(masks) - 1), max_size=6))
            if masks
            else []
        )
        for kernel in BACKENDS:
            table = kernel.pack(masks, n_bits)
            assert kernel.unpack(table) == masks
            assert kernel.table_len(table) == len(masks)
            assert kernel.popcount_rows(table) == ref.popcount_rows(ref_table)
            assert kernel.subset_any(table, needle, start) == ref.subset_any(
                ref_table, needle, start
            )
            assert kernel.intersect_selected(table, selector) == ref.intersect_selected(
                ref_table, selector
            )
            assert kernel.intersect_count_rows(
                table, indices, needle
            ) == ref.intersect_count_rows(ref_table, indices, needle)

    @given(masks=masks_strategy, n_bits=st.integers(1, 200), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_superset_max_support(self, masks, n_bits, data):
        masks = _clip(masks, n_bits)
        supports = data.draw(
            st.lists(
                st.integers(1, 50), min_size=len(masks), max_size=len(masks)
            )
        )
        # Query beyond n_bits too: rows can never contain those bits.
        needle = data.draw(st.integers(0, (1 << (n_bits + 3)) - 1))
        expected = max(
            (s for m, s in zip(masks, supports) if needle & ~m == 0), default=0
        )
        for kernel in BACKENDS:
            table = kernel.pack(masks, n_bits)
            assert kernel.superset_max_support(table, supports, needle) == expected

    @given(masks=masks_strategy, n_bits=st.integers(1, 200), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_column_primitives(self, masks, n_bits, data):
        masks = _clip(masks, n_bits)
        ref = get_backend("bitint")
        counts = ref.column_counts(masks, n_bits)
        threshold = data.draw(st.integers(0, len(masks) + 1))
        mask = data.draw(st.integers(0, (1 << n_bits) - 1))
        for kernel in BACKENDS:
            assert kernel.column_counts(masks, n_bits) == counts
            assert kernel.bound_filter(counts, mask, threshold) == ref.bound_filter(
                counts, mask, threshold
            )

    def test_empty_table(self):
        for kernel in BACKENDS:
            table = kernel.pack([], 65)
            assert kernel.table_len(table) == 0
            assert kernel.popcount_rows(table) == []
            assert not kernel.subset_any(table, 1)
            assert kernel.column_counts([], 65) == [0] * 65


class TestSlots:
    """Hot-path classes must stay dict-free (the ``__slots__`` audit)."""

    @pytest.mark.parametrize(
        "instance",
        [
            BitIntBackend(),
            NumpyBackend(),
            BitTable([3, 5], 4),
            PackedTable([3, 5], 4),
        ],
        ids=lambda obj: type(obj).__name__,
    )
    def test_no_instance_dict(self, instance):
        assert not hasattr(instance, "__dict__")
        with pytest.raises(AttributeError):
            instance.no_such_attribute = 1

    def test_prefix_tree_classes_slotted(self):
        from repro.core.prefix_tree import PrefixTree, PrefixTreeNode

        node = PrefixTreeNode(0, 0, 0)
        assert not hasattr(node, "__dict__")
        assert not hasattr(PrefixTree(), "__dict__")

    def test_shard_outcome_slotted(self):
        from repro.parallel import ShardOutcome

        assert not hasattr(ShardOutcome(0, "items", "ok", []), "__dict__")

    def test_node_memory_bound(self):
        """A prefix-tree node must stay a small fixed-size object."""
        import sys

        from repro.core.prefix_tree import PrefixTreeNode

        node = PrefixTreeNode(1, 2, 3)
        # 6 slots + object header: generously under 128 bytes, and far
        # under the ~296 bytes a __dict__-backed instance would cost.
        assert sys.getsizeof(node) < 128

    def test_tracemalloc_tree_growth(self):
        """Building many nodes must cost slot-sized, not dict-sized, memory."""
        import tracemalloc

        from repro.core.prefix_tree import PrefixTreeNode

        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        nodes = [PrefixTreeNode(i & 63, i, 0) for i in range(2000)]
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        per_node = (after - before) / len(nodes)
        # 6 slots (item/supp/step/children/parent/below) plus each
        # node's empty children dict; a __dict__-backed node would sit
        # well past 300 bytes here.
        assert per_node < 240, f"{per_node:.0f} bytes/node — slots audit regressed"

"""Bounded-primitive contracts and the resident packed table.

The ``*_bounded`` kernels promise an *exact*, data-dependent contract
(see :data:`repro.kernels.base.BELOW_BOUND`): an entry whose true
support clears ``smin`` comes back identical to the unbounded call,
and an entry below the bound settles as the ``(0, BELOW_BOUND)``
sentinel — regardless of backend, early-abort strategy, or word-split
heuristics.  Hypothesis drives both backends through every bounded
form against that contract and against each other.

The second half pins the resident-table behaviour the miners rely on:
append/generation semantics, row selection, and the single-residency
memory invariant of the numpy table (packed rows and the big-int list
are never both held after materialisation — in particular not on the
append path).
"""

import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import available_backends, get_backend

from ..conftest import backend_kernel_params
from repro.kernels.base import BELOW_BOUND
from repro.kernels.numpy_packed import PackedTable

BACKENDS = [get_backend(name) for name in available_backends()]

N_BITS = st.integers(min_value=1, max_value=200)


@st.composite
def mask_workloads(draw):
    """A mask list, a probe mask, and a bound, over a shared bit width."""
    n_bits = draw(N_BITS)
    mask = st.integers(min_value=0, max_value=(1 << n_bits) - 1)
    masks = draw(st.lists(mask, min_size=0, max_size=24))
    probe = draw(mask)
    smin = draw(st.integers(min_value=0, max_value=n_bits + 2))
    return masks, probe, n_bits, smin


def reference_bounded(masks, probe, smin):
    """The contract, computed the obvious way: exact supports, then
    sentinel any entry strictly below a positive ``smin``."""
    joints = [m & probe for m in masks]
    supports = [bin(j).count("1") for j in joints]
    if smin > 0:
        for i, support in enumerate(supports):
            if support < smin:
                joints[i], supports[i] = 0, BELOW_BOUND
    return joints, supports


class TestBoundedContract:
    @pytest.mark.parametrize("kernel", backend_kernel_params())
    @given(workload=mask_workloads())
    @settings(max_examples=60, deadline=None)
    def test_many_matches_reference(self, kernel, workload):
        masks, probe, n_bits, smin = workload
        got = kernel.intersect_count_many_bounded(masks, probe, n_bits, smin)
        assert (list(got[0]), list(got[1])) == reference_bounded(masks, probe, smin)

    @pytest.mark.parametrize("kernel", backend_kernel_params())
    @given(workload=mask_workloads())
    @settings(max_examples=60, deadline=None)
    def test_untriggered_bound_equals_unbounded(self, kernel, workload):
        masks, probe, n_bits, _ = workload
        joints, supports = kernel.intersect_count_many(masks, probe, n_bits)
        # smin=0 disables the bound entirely; smin at the floor of the
        # true supports never fires the sentinel.  Both must be
        # byte-identical to the unbounded call.
        for smin in (0, min(supports, default=0)):
            got = kernel.intersect_count_many_bounded(masks, probe, n_bits, smin)
            assert list(got[0]) == list(joints)
            assert list(got[1]) == list(supports)

    @pytest.mark.parametrize("kernel", backend_kernel_params())
    @given(workload=mask_workloads())
    @settings(max_examples=60, deadline=None)
    def test_table_form_matches_many_form(self, kernel, workload):
        masks, probe, n_bits, smin = workload
        table = kernel.pack(masks, n_bits)
        joints, supports = kernel.intersect_count_table_bounded(table, probe, smin)
        # The table form hands back a packed joint table, not a list.
        assert (kernel.unpack(joints), list(supports)) == reference_bounded(
            masks, probe, smin
        )

    @pytest.mark.parametrize("kernel", backend_kernel_params())
    @given(workload=mask_workloads(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_rows_form_matches_reference_on_subset(self, kernel, workload, data):
        masks, probe, n_bits, smin = workload
        table = kernel.pack(masks, n_bits)
        indices = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=max(0, len(masks) - 1)),
                max_size=len(masks),
            )
            if masks
            else st.just([])
        )
        joints, supports = kernel.intersect_count_rows_bounded(
            table, indices, probe, smin
        )
        expected = reference_bounded([masks[i] for i in indices], probe, smin)
        assert (list(joints), list(supports)) == expected

    @given(workload=mask_workloads())
    @settings(max_examples=60, deadline=None)
    def test_cross_backend_parity_all_forms(self, workload):
        masks, probe, n_bits, smin = workload
        results = []
        for kernel in BACKENDS:
            table = kernel.pack(masks, n_bits)
            results.append(
                (
                    tuple(
                        map(
                            tuple,
                            kernel.intersect_count_many_bounded(
                                masks, probe, n_bits, smin
                            ),
                        )
                    ),
                    (
                        lambda pair: (
                            tuple(kernel.unpack(pair[0])),
                            tuple(pair[1]),
                        )
                    )(kernel.intersect_count_table_bounded(table, probe, smin)),
                    tuple(
                        map(
                            tuple,
                            kernel.intersect_count_rows_bounded(
                                table, range(len(masks)), probe, smin
                            ),
                        )
                    ),
                )
            )
        assert all(r == results[0] for r in results[1:])


@st.composite
def superset_workloads(draw):
    n_bits = draw(st.integers(min_value=1, max_value=120))
    mask = st.integers(min_value=0, max_value=(1 << n_bits) - 1)
    rows = draw(st.lists(mask, min_size=0, max_size=24))
    supports = draw(
        st.lists(
            st.integers(min_value=0, max_value=500),
            min_size=len(rows),
            max_size=len(rows),
        )
    )
    # Bias the needle toward having supersets: intersecting two rows
    # (when available) yields a mask many rows contain.
    if rows and draw(st.booleans()):
        needle = rows[draw(st.integers(0, len(rows) - 1))] & rows[
            draw(st.integers(0, len(rows) - 1))
        ]
    else:
        needle = draw(mask)
    smin = draw(st.integers(min_value=0, max_value=500))
    return rows, supports, needle, n_bits, smin


class TestSupersetMaxSupportBounded:
    @pytest.mark.parametrize("kernel", backend_kernel_params())
    @given(workload=superset_workloads())
    @settings(max_examples=80, deadline=None)
    def test_matches_reference(self, kernel, workload):
        rows, supports, needle, n_bits, smin = workload
        expected = max(
            (
                supp
                for row, supp in zip(rows, supports)
                if supp >= smin and needle & ~row == 0
            ),
            default=0,
        )
        table = kernel.pack(rows, n_bits)
        assert (
            kernel.superset_max_support_bounded(table, supports, needle, smin)
            == expected
        )

    @pytest.mark.parametrize("kernel", backend_kernel_params())
    @given(workload=superset_workloads())
    @settings(max_examples=40, deadline=None)
    def test_smin_one_matches_unbounded_on_positive_supports(self, kernel, workload):
        rows, supports, needle, n_bits, _ = workload
        positive = [max(1, s) for s in supports]
        table = kernel.pack(rows, n_bits)
        assert kernel.superset_max_support_bounded(
            table, positive, needle, 1
        ) == kernel.superset_max_support(table, positive, needle)


class TestResidentTables:
    @given(workload=mask_workloads())
    @settings(max_examples=40, deadline=None)
    def test_append_and_row_access_parity(self, workload):
        masks, probe, n_bits, _ = workload
        views = []
        for kernel in BACKENDS:
            table = kernel.pack(masks[: len(masks) // 2], n_bits)
            before = kernel.table_generation(table)
            kernel.append_rows(table, masks[len(masks) // 2 :])
            if masks[len(masks) // 2 :]:
                assert kernel.table_generation(table) > before
            assert kernel.table_len(table) == len(masks)
            views.append(
                (
                    kernel.unpack(table),
                    [kernel.table_row(table, i) for i in range(len(masks))],
                    kernel.intersect_rows(table, probe),
                    kernel.superset_rows(table, probe),
                )
            )
        assert all(v == views[0] for v in views[1:])
        if views:
            assert views[0][0] == masks

    @given(workload=mask_workloads())
    @settings(max_examples=40, deadline=None)
    def test_select_rows_parity_across_materialisation(self, workload):
        masks, probe, n_bits, _ = workload
        if not masks:
            return
        indices = list(range(0, len(masks), 2))
        views = []
        for kernel in BACKENDS:
            table = kernel.pack(masks, n_bits)
            # Force the vectorised backend through its rows-resident
            # form before selecting — selection must not depend on
            # which residency the table happens to be in.
            kernel.intersect_table(table, probe)
            selected = kernel.select_rows(table, indices)
            views.append(kernel.unpack(selected))
        assert all(v == views[0] for v in views[1:])
        assert views[0] == [masks[i] for i in indices]


class TestSingleResidency:
    """The numpy table's memory invariant (see PackedTable.rows)."""

    def setup_method(self):
        self.kernel = get_backend("numpy")

    def test_materialisation_drops_int_form(self):
        table = self.kernel.pack([3, 5, 7], 8)
        assert table._ints is not None
        self.kernel.intersect_table(table, 6)  # first vectorised use
        assert table._ints is None

    def test_append_keeps_exactly_one_form(self):
        table = self.kernel.pack([1, 2], 8)
        self.kernel.append_rows(table, [4])
        # Int-backed append stays int-backed: no packed array exists.
        assert table._ints is not None and table._rows is None
        self.kernel.intersect_table(table, 7)
        self.kernel.append_rows(table, [8, 16])
        # Rows-backed append stays rows-backed: no big-int list returns.
        assert table._ints is None and table._rows is not None
        assert self.kernel.unpack(table) == [1, 2, 4, 8, 16]

    def test_append_path_peak_memory_is_single_form(self):
        n_bits = 4096
        row_bytes = n_bits // 8
        base = [(1 << n_bits) - 1] * 64
        table = self.kernel.pack(base, n_bits)
        self.kernel.intersect_table(table, 1)  # rows-resident now
        batch = [(1 << n_bits) - 1] * 512
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            self.kernel.append_rows(table, batch)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert table._ints is None
        # The append may double the backing array (amortised growth),
        # so allow a few array-sized copies — but a path that rebuilt
        # the big-int list alongside the packed rows (double residency)
        # would hold both forms of all 576 rows and blow well past it.
        budget = 4 * (len(base) + len(batch)) * row_bytes
        assert peak - before < budget, (peak - before, budget)


def test_packedtable_from_rows_is_rows_resident():
    kernel = get_backend("numpy")
    table = kernel.pack([9, 12], 8)
    joint = kernel.intersect_table(table, 13)
    assert isinstance(joint, PackedTable)
    assert joint._ints is None

"""Cross-backend differential tests: every algorithm, every backend.

The kernel layer must be invisible in the output: for any database and
support, every algorithm must report the identical closed family under
every registered backend, serial or batched.
"""

import pytest

from repro.closure.verify import check_closed_family
from repro.kernels import available_backends
from repro.mining import ALGORITHMS, mine

from ..conftest import backend_params, make_random_db

SEEDS = range(6)


@pytest.mark.parametrize("backend", backend_params())
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_backend_parity_random_dbs(algorithm, backend):
    for seed in SEEDS:
        db = make_random_db(seed, max_transactions=12, max_items=9)
        smin = 1 + seed % 3
        reference = dict(mine(db, smin, algorithm="ista", backend="bitint"))
        got = dict(mine(db, smin, algorithm=algorithm, backend=backend))
        assert got == reference, f"seed={seed} smin={smin}"


@pytest.mark.parametrize("backend", backend_params())
def test_backend_parity_verified_against_oracle(backend, table1_db):
    for smin in (1, 2, 3):
        result = mine(table1_db, smin, algorithm="ista", backend=backend)
        check_closed_family(table1_db, result, smin)


@pytest.mark.parametrize("backend", backend_params())
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_backend_parity_wide_dense(algorithm, backend):
    """Dense wide rows — the regime where the batched paths activate."""
    db = make_random_db(97, max_transactions=8, max_items=12, density=0.8)
    reference = dict(mine(db, 2, algorithm="ista", backend="bitint"))
    assert dict(mine(db, 2, algorithm=algorithm, backend=backend)) == reference


def test_env_var_selects_backend_end_to_end(monkeypatch, table1_db):
    from repro.kernels import BACKEND_ENV_VAR

    monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
    via_env = dict(mine(table1_db, 2, algorithm="carpenter-table"))
    monkeypatch.delenv(BACKEND_ENV_VAR)
    assert via_env == dict(mine(table1_db, 2, algorithm="carpenter-table"))


def test_mine_rejects_unknown_backend(table1_db):
    with pytest.raises(ValueError):
        mine(table1_db, 2, backend="cuda")

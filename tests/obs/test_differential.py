"""S3: probing must never change results, and the off switch is free.

Two claims, tested separately:

* **Differential** — for every algorithm, ``mine(..., probe=Probe())``
  returns exactly the item sets and supports of ``mine(..., probe=None)``.
* **Zero overhead when off** — with ``probe=None`` the drivers make a
  small, *input-size-independent* number of null-probe hook calls per
  run (phases, ensure/record-counters — never per-operation hooks), and
  the measured cost of those calls is far below 5% of the cheapest
  mining run.  Counting hook calls instead of comparing wall clocks
  keeps the test deterministic on noisy CI runners while still pinning
  the property that matters: observability cost cannot scale with the
  database.
"""

from __future__ import annotations

import time

import pytest

from repro.mining import ALGORITHMS, mine
from repro.obs import NullProbe, Probe
from repro.obs.probe import _NULL_SPAN

from ..conftest import make_random_db

#: Ceiling on null-probe hook invocations for ONE mining run.  Phases,
#: one ensure_counters, record_counters per exit path — order tens, not
#: thousands.  A driver that starts calling the probe per operation
#: blows straight through this.
MAX_HOOKS_PER_RUN = 40


class CountingNullProbe(NullProbe):
    """Null probe that tallies how often the drivers touch it."""

    __slots__ = ("calls",)

    def __init__(self):
        self.calls = 0

    def phase(self, name, **attrs):
        self.calls += 1
        return _NULL_SPAN

    def event(self, name, **attrs):
        self.calls += 1

    def count(self, name, amount=1):
        self.calls += 1

    def observe(self, name, value):
        self.calls += 1

    def gauge_max(self, name, value):
        self.calls += 1

    def wrap_kernel(self, kernel):
        self.calls += 1
        return kernel

    def ensure_counters(self, counters):
        self.calls += 1
        return super().ensure_counters(counters)

    def record_counters(self, counters):
        self.calls += 1

    def sample_guard(self, elapsed, remaining, memory_used):
        self.calls += 1

    def merge_worker(self, snapshot, index=None):
        self.calls += 1


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
class TestProbedResultsIdentical:
    def test_probe_on_equals_probe_off(self, algorithm, table1_db):
        off = mine(table1_db, 3, algorithm=algorithm)
        on = mine(table1_db, 3, algorithm=algorithm, probe=Probe())
        assert sorted(on.items()) == sorted(off.items())

    def test_probe_on_equals_probe_off_random(self, algorithm):
        for seed in range(5):
            db = make_random_db(seed, max_transactions=14, max_items=9)
            off = mine(db, 2, algorithm=algorithm)
            on = mine(db, 2, algorithm=algorithm, probe=Probe())
            assert sorted(on.items()) == sorted(off.items()), f"seed={seed}"


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_null_probe_hook_calls_are_input_size_independent(algorithm):
    counts = {}
    for label, transactions in (("small", 8), ("large", 64)):
        db = make_random_db(7, max_transactions=transactions, max_items=10)
        probe = CountingNullProbe()
        mine(db, 2, algorithm=algorithm, probe=probe)
        counts[label] = probe.calls
        assert probe.calls <= MAX_HOOKS_PER_RUN, (
            f"{algorithm} made {probe.calls} probe hook calls on one run"
        )
    # Hooks mark run structure (phases, counter hand-off), so a database
    # eight times larger must not add hook traffic.
    assert counts["large"] <= counts["small"] + 2


def test_null_probe_overhead_is_below_five_percent(table1_db):
    # Price one hook call, then bound total hook cost per run against
    # the cheapest real mining run.  Even a microsecond-scale hook rate
    # times MAX_HOOKS_PER_RUN sits orders of magnitude below 5%.
    # Both sides are best-of-N: a GC pause or scheduler slice inside a
    # single pricing loop otherwise tips the (deliberately tight) bound
    # on fast machines where a whole mining run is ~0.1ms.
    probe = CountingNullProbe()
    rounds = 4_000
    hook_seconds = None
    for _ in range(5):
        started = time.perf_counter()
        for _ in range(rounds):
            with probe.phase("mine"):
                pass
            probe.count("x")
            probe.record_counters(None)
        elapsed = (time.perf_counter() - started) / (rounds * 3)
        hook_seconds = min(elapsed, hook_seconds or elapsed)

    best_run = min(
        _timed(lambda: mine(table1_db, 3, algorithm="ista")) for _ in range(5)
    )
    assert MAX_HOOKS_PER_RUN * hook_seconds < 0.05 * best_run, (
        f"hook cost {hook_seconds * 1e9:.0f}ns x {MAX_HOOKS_PER_RUN} exceeds "
        f"5% of a {best_run * 1e3:.2f}ms run"
    )


def _timed(thunk):
    started = time.perf_counter()
    thunk()
    return time.perf_counter() - started

"""CLI observability surface: --metrics / --trace / stats PARTIAL marking."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_INTERRUPTED, main
from repro.mining import ALGORITHMS


@pytest.fixture
def fimi_file(tmp_path):
    path = tmp_path / "data.fimi"
    path.write_text("1 2 3\n1 2\n1 2 4\n2 3\n1 2 3 4\n2 4\n")
    return str(path)


def _read_jsonl(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


class TestMetricsFlag:
    def test_metrics_json_to_file(self, fimi_file, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        assert main(["mine", fimi_file, "-s", "2", "--metrics", str(metrics_path)]) == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["counters"]["ops.intersections"] >= 0
        assert payload["counters"]["ops.reports"] > 0
        assert any(name.startswith("phase.") for name in payload["histograms"])

    def test_metrics_json_to_stderr(self, fimi_file, capsys):
        assert main(["mine", fimi_file, "-s", "2", "--metrics", "-"]) == 0
        captured = capsys.readouterr()
        # Telemetry goes to stderr so result lines on stdout stay
        # machine-parseable; the JSON document must parse cleanly from
        # its opening brace.
        err = captured.err
        payload, _ = json.JSONDecoder().raw_decode(err, err.index("{"))
        assert "counters" in payload
        # stdout carries only result lines — never a telemetry document.
        assert "{" not in captured.out

    def test_trace_dash_to_stderr(self, fimi_file, capsys):
        assert main(["mine", fimi_file, "-s", "2", "--trace", "-"]) == 0
        captured = capsys.readouterr()
        records = [
            json.loads(line)
            for line in captured.err.splitlines()
            if line.startswith("{")
        ]
        assert records and records[0]["type"] == "trace"
        assert "\"type\"" not in captured.out

    def test_metrics_prom_format(self, fimi_file, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "mine", fimi_file, "-s", "2",
                    "--metrics", str(metrics_path),
                    "--metrics-format", "prom",
                ]
            )
            == 0
        )
        text = metrics_path.read_text()
        assert "# TYPE repro_ops_reports_total counter" in text
        for line in text.splitlines():
            assert line.startswith(("#", "repro_"))

    def test_no_flags_no_files(self, fimi_file, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["mine", fimi_file, "-s", "2"]) == 0
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "data.fimi"]
        assert leftovers == []


class TestTraceFlag:
    def test_trace_jsonl_structure(self, fimi_file, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert main(["mine", fimi_file, "-s", "2", "--trace", str(trace_path)]) == 0
        records = _read_jsonl(trace_path)
        assert records[0]["type"] == "trace"
        spans = {r["name"] for r in records[1:] if r["type"] == "span"}
        assert {"load", "mine"} <= spans

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_every_algorithm_traces_core_phases(self, fimi_file, tmp_path, algorithm):
        trace_path = tmp_path / f"{algorithm}.jsonl"
        metrics_path = tmp_path / f"{algorithm}.json"
        code = main(
            [
                "mine", fimi_file, "-s", "2", "-a", algorithm,
                "--trace", str(trace_path), "--metrics", str(metrics_path),
            ]
        )
        assert code == 0
        spans = {
            r["name"] for r in _read_jsonl(trace_path)[1:] if r["type"] == "span"
        }
        assert {"load", "recode", "mine", "report"} <= spans, algorithm
        payload = json.loads(metrics_path.read_text())
        assert payload["counters"]["ops.reports"] > 0, algorithm

    def test_parallel_run_traces_merge(self, fimi_file, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "mine", fimi_file, "-s", "2", "--workers", "2",
                "--trace", str(trace_path), "--metrics", str(metrics_path),
            ]
        )
        assert code == 0
        spans = {
            r["name"] for r in _read_jsonl(trace_path)[1:] if r["type"] == "span"
        }
        assert {"load", "plan", "mine", "merge"} <= spans
        payload = json.loads(metrics_path.read_text())
        assert (
            payload["counters"]["parallel.workers_merged"]
            == payload["counters"]["parallel.shards"]
        )

    def test_telemetry_written_even_on_budget_trip(self, tmp_path):
        # Telemetry matters most for the post-mortem of a tripped run.
        dense = tmp_path / "dense.fimi"
        dense.write_text(
            "\n".join(
                " ".join(str(j) for j in range(36) if (i * 7 + j) % 3)
                for i in range(36)
            )
            + "\n"
        )
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "mine", str(dense), "-s", "2", "-a", "carpenter-table",
                "--timeout", "0.0", "--on-partial", "return",
                "--metrics", str(metrics_path),
            ]
        )
        assert code == EXIT_INTERRUPTED
        payload = json.loads(metrics_path.read_text())
        assert "counters" in payload


class TestStatsPartial:
    def test_complete_family_is_unmarked(self, fimi_file, capsys):
        assert main(["stats", fimi_file, "-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "closed family at smin=2:" in out
        assert "PARTIAL" not in out

    def test_tripped_budget_is_marked_partial(self, fimi_file, capsys):
        code = main(["stats", fimi_file, "-s", "2", "--timeout", "0.0"])
        out = capsys.readouterr().out
        assert code == EXIT_INTERRUPTED
        assert "PARTIAL: budget tripped, counts are lower bounds" in out

"""Probe semantics: null twin, counter ingestion, resolution."""

from __future__ import annotations

import pytest

from repro.kernels import resolve_backend
from repro.obs import NULL_PROBE, NullProbe, Probe, resolve_probe
from repro.obs.kernel_proxy import InstrumentedBackend
from repro.stats import OperationCounters


class TestNullProbe:
    def test_shared_instance_is_inactive(self):
        assert NULL_PROBE.active is False

    def test_phase_returns_reusable_noop_context(self):
        span_a = NULL_PROBE.phase("mine", algorithm="ista")
        span_b = NULL_PROBE.phase("report")
        assert span_a is span_b  # one shared object, no allocation per phase
        with span_a:
            pass

    def test_wrap_kernel_is_identity(self):
        kernel = resolve_backend("bitint")
        assert NULL_PROBE.wrap_kernel(kernel) is kernel

    def test_ensure_counters_creates_when_missing(self):
        counters = NULL_PROBE.ensure_counters(None)
        assert isinstance(counters, OperationCounters)

    def test_ensure_counters_preserves_callers_object(self):
        counters = OperationCounters()
        assert NULL_PROBE.ensure_counters(counters) is counters

    def test_all_hooks_are_noops(self):
        NULL_PROBE.event("x")
        NULL_PROBE.count("x", 5)
        NULL_PROBE.observe("x", 1.0)
        NULL_PROBE.gauge_max("x", 1.0)
        NULL_PROBE.record_counters(OperationCounters())
        NULL_PROBE.sample_guard(0.1, None, None)
        NULL_PROBE.merge_worker({"counters": {"c": 1}})


class TestResolveProbe:
    def test_none_resolves_to_shared_null(self):
        assert resolve_probe(None) is NULL_PROBE

    def test_probe_passes_through(self):
        probe = Probe()
        assert resolve_probe(probe) is probe

    def test_wrong_type_raises(self):
        with pytest.raises(TypeError, match="probe"):
            resolve_probe(object())


class TestRecordCounters:
    def test_counters_land_as_ops_metrics(self):
        probe = Probe()
        counters = OperationCounters()
        counters.intersections = 7
        counters.repository_peak = 42
        probe.record_counters(counters)
        snapshot = probe.metrics.snapshot()
        assert snapshot["counters"]["ops.intersections"] == 7
        assert snapshot["gauges"]["ops.repository_peak"] == 42

    def test_zero_counters_still_registered(self):
        # The full cost-model catalogue must appear in every snapshot so
        # baseline comparisons never hit missing keys.
        probe = Probe()
        probe.record_counters(OperationCounters())
        snapshot = probe.metrics.snapshot()
        assert snapshot["counters"]["ops.intersections"] == 0
        assert snapshot["counters"]["ops.nodes_pruned"] == 0

    def test_delta_aware_reingestion_never_double_counts(self):
        # Fallback chains pass ONE counters object through several
        # attempts, each ending in record_counters; only deltas may add.
        probe = Probe()
        counters = OperationCounters()
        counters.intersections = 10
        probe.record_counters(counters)
        counters.intersections = 25  # attempt two did 15 more
        probe.record_counters(counters)
        assert probe.metrics.counter("ops.intersections").value == 25

    def test_distinct_counters_objects_add(self):
        probe = Probe()
        first = OperationCounters()
        first.intersections = 10
        second = OperationCounters()
        second.intersections = 5
        probe.record_counters(first)
        probe.record_counters(second)
        assert probe.metrics.counter("ops.intersections").value == 15

    def test_none_is_tolerated(self):
        Probe().record_counters(None)


class TestProbeSurface:
    def test_phase_feeds_tracer_and_histogram(self):
        probe = Probe()
        with probe.phase("mine", algorithm="ista"):
            pass
        assert probe.tracer.records[0]["name"] == "mine"
        assert probe.metrics.histogram("phase.mine.seconds").count == 1

    def test_phase_histogram_recorded_on_error_too(self):
        probe = Probe()
        with pytest.raises(RuntimeError):
            with probe.phase("mine"):
                raise RuntimeError("boom")
        assert probe.metrics.histogram("phase.mine.seconds").count == 1

    def test_wrap_kernel_interposes_once(self):
        probe = Probe()
        kernel = resolve_backend("bitint")
        wrapped = probe.wrap_kernel(kernel)
        assert isinstance(wrapped, InstrumentedBackend)
        assert probe.wrap_kernel(wrapped) is wrapped  # no double proxy

    def test_sample_guard_records_headroom_and_memory(self):
        probe = Probe()
        probe.sample_guard(elapsed=0.5, remaining=9.5, memory_used=2048)
        probe.sample_guard(elapsed=1.0, remaining=9.0, memory_used=1024)
        snapshot = probe.metrics.snapshot()
        assert snapshot["counters"]["guard.real_checks"] == 2
        assert snapshot["histograms"]["guard.headroom.seconds"]["count"] == 2
        assert snapshot["gauges"]["guard.memory_high_water.bytes"] == 2048

    def test_merge_worker_counts_and_traces(self):
        probe = Probe()
        worker = Probe()
        worker.count("ops.intersections", 9)
        probe.merge_worker(worker.metrics.snapshot(), index=2)
        assert probe.metrics.counter("ops.intersections").value == 9
        assert probe.metrics.counter("parallel.workers_merged").value == 1
        assert probe.tracer.records[-1]["attrs"] == {"shard": 2}

    def test_merge_worker_ignores_empty_snapshot(self):
        probe = Probe()
        probe.merge_worker(None)
        probe.merge_worker({})
        assert len(probe.metrics) == 0

    def test_probe_is_a_nullprobe(self):
        # Drivers type-check against NullProbe; the live probe must pass.
        assert isinstance(Probe(), NullProbe)

"""InstrumentedBackend: transparent forwarding plus call/byte counters."""

from __future__ import annotations

import pytest

from repro.kernels import available_backends, resolve_backend
from repro.obs.kernel_proxy import PRIMITIVES, InstrumentedBackend
from repro.obs.metrics import MetricsRegistry

MASKS = [0b1011, 0b0111, 0b1101, 0b0011, 0b1110]
N_BITS = 4


@pytest.fixture(params=sorted(available_backends()))
def proxied(request):
    registry = MetricsRegistry()
    backend = resolve_backend(request.param)
    return InstrumentedBackend(backend, registry), backend, registry


class TestTransparency:
    """Every primitive returns exactly what the raw backend returns."""

    def test_pack_unpack_roundtrip(self, proxied):
        proxy, raw, _ = proxied
        table = proxy.pack(MASKS, N_BITS)
        assert proxy.unpack(table) == MASKS
        assert proxy.table_len(table) == len(MASKS)

    def test_scalar_and_batched_popcounts(self, proxied):
        proxy, raw, _ = proxied
        assert proxy.popcount(0b1011) == 3
        assert proxy.popcount_many(MASKS) == raw.popcount_many(MASKS)
        table = proxy.pack(MASKS, N_BITS)
        assert proxy.popcount_rows(table) == raw.popcount_rows(
            raw.pack(MASKS, N_BITS)
        )

    def test_intersection_primitives(self, proxied):
        proxy, raw, _ = proxied
        mask = 0b0110
        assert proxy.intersect_many(MASKS, mask, N_BITS) == raw.intersect_many(
            MASKS, mask, N_BITS
        )
        assert proxy.intersect_count_many(
            MASKS, mask, N_BITS
        ) == raw.intersect_count_many(MASKS, mask, N_BITS)
        table = proxy.pack(MASKS, N_BITS)
        raw_table = raw.pack(MASKS, N_BITS)
        assert proxy.intersect_count_rows(
            table, [0, 2, 4], mask
        ) == raw.intersect_count_rows(raw_table, [0, 2, 4], mask)
        assert proxy.subset_any(table, 0b0011) == raw.subset_any(raw_table, 0b0011)
        assert proxy.intersect_selected(table, 0b10101) == raw.intersect_selected(
            raw_table, 0b10101
        )

    def test_column_and_bound_primitives(self, proxied):
        proxy, raw, _ = proxied
        assert proxy.column_counts(MASKS, N_BITS) == raw.column_counts(MASKS, N_BITS)
        counts = raw.column_counts(MASKS, N_BITS)
        assert proxy.bound_filter(counts, 0b1111, 3) == raw.bound_filter(
            counts, 0b1111, 3
        )

    def test_identity_properties_forward(self, proxied):
        proxy, raw, _ = proxied
        assert proxy.name == raw.name
        assert proxy.vectorized == raw.vectorized
        assert proxy.wrapped is raw


class TestCounting:
    def test_calls_counted_per_primitive(self, proxied):
        proxy, _, registry = proxied
        table = proxy.pack(MASKS, N_BITS)
        proxy.intersect_many(MASKS, 0b0110, N_BITS)
        proxy.intersect_many(MASKS, 0b1001, N_BITS)
        proxy.subset_any(table, 0b0011)
        assert registry.counter("kernel.pack.calls").value == 1
        assert registry.counter("kernel.intersect_many.calls").value == 2
        assert registry.counter("kernel.subset_any.calls").value == 1
        assert registry.counter("kernel.unpack.calls").value == 0

    def test_bytes_estimate_scales_with_rows(self, proxied):
        proxy, _, registry = proxied
        proxy.intersect_many(MASKS, 0b0110, N_BITS)
        touched = registry.counter("kernel.intersect_many.bytes").value
        assert touched == len(MASKS) * 8  # 4-bit masks round to one word

    def test_every_primitive_has_both_counters(self, proxied):
        _, _, registry = proxied
        snapshot = registry.snapshot()["counters"]
        for primitive in PRIMITIVES:
            assert f"kernel.{primitive}.calls" in snapshot
            assert f"kernel.{primitive}.bytes" in snapshot

    def test_foreign_table_width_probe(self, proxied):
        # A table packed OUTSIDE the proxy still gets a byte estimate
        # (via a one-off row probe) instead of crashing.
        proxy, raw, registry = proxied
        foreign = raw.pack(MASKS, N_BITS)
        proxy.popcount_rows(foreign)
        assert registry.counter("kernel.popcount_rows.calls").value == 1
        assert registry.counter("kernel.popcount_rows.bytes").value > 0

"""Flight recorder: framing, scan/repair, retention, resume, torn tails."""

from __future__ import annotations

import json
import os
import zlib

import pytest

from repro.obs import Probe
from repro.obs.recorder import (
    FLIGHT_VERSION,
    FlightRecorder,
    _frame_line,
    _parse_line,
    flight_tail,
    repair_flight,
    scan_flight,
)
from repro.runtime import FaultPlan, InjectedCrash


@pytest.fixture
def probe():
    return Probe()


def _recorder(tmp_path, probe, **kwargs):
    kwargs.setdefault("interval", 0.0)
    return FlightRecorder(tmp_path / "flight", probe, **kwargs)


class TestFraming:
    def test_frame_roundtrips(self):
        record = {"type": "snapshot", "seq": 3, "nested": {"a": [1, 2]}}
        line = _frame_line(record)
        assert line.endswith(b"\n")
        assert _parse_line(line) == record

    def test_crc_covers_payload(self):
        line = bytearray(_frame_line({"seq": 1}))
        line[-3] ^= 0xFF  # flip a payload byte; CRC must catch it
        assert _parse_line(bytes(line)) is None

    def test_torn_line_rejected(self):
        line = _frame_line({"seq": 1})
        assert _parse_line(line[:-1]) is None  # no trailing newline
        assert _parse_line(line[: len(line) // 2]) is None

    def test_garbage_rejected(self):
        assert _parse_line(b"") is None
        assert _parse_line(b"not a frame at all\n") is None
        payload = b"[1, 2]"  # valid JSON, but not an object
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        assert _parse_line(b"%08x " % crc + payload + b"\n") is None


class TestEmitAndScan:
    def test_emit_writes_snapshot_records(self, tmp_path, probe):
        probe.count("ops.reports", 7)
        with probe.tracer.span("fold"):
            pass
        recorder = _recorder(tmp_path, probe, status=lambda: {"pending": 2})
        assert recorder.emit()
        recorder.close(final_emit=False)

        scan = scan_flight(tmp_path / "flight")
        assert scan.clean
        (record,) = scan.records
        assert record["seq"] == 0
        assert record["type"] == "snapshot"
        assert record["trace_id"] == probe.tracer.trace_id
        assert record["metrics"]["counters"]["ops.reports"] == 7
        assert record["status"] == {"pending": 2}
        assert [span["name"] for span in record["spans"]] == ["fold"]

    def test_interval_rate_limits_and_force_overrides(self, tmp_path, probe):
        now = [0.0]
        recorder = FlightRecorder(
            tmp_path / "flight", probe, interval=5.0, clock=lambda: now[0]
        )
        assert recorder.emit()
        assert not recorder.emit()  # inside the window: free no-op
        assert recorder.emit(force=True)
        now[0] = 6.0
        assert recorder.emit()
        recorder.close(final_emit=False)
        assert len(scan_flight(tmp_path / "flight").records) == 3

    def test_span_cursor_ships_each_span_once(self, tmp_path, probe):
        recorder = _recorder(tmp_path, probe)
        with probe.tracer.span("first"):
            pass
        recorder.emit()
        with probe.tracer.span("second"):
            pass
        recorder.emit()
        recorder.close(final_emit=False)
        first, second = scan_flight(tmp_path / "flight").records
        assert [s["name"] for s in first["spans"]] == ["first"]
        assert [s["name"] for s in second["spans"]] == ["second"]

    def test_span_overflow_counted_not_lost_silently(self, tmp_path, probe):
        recorder = _recorder(tmp_path, probe, max_spans=3)
        for index in range(10):
            probe.tracer.event("tick", index=index)
        recorder.emit()
        recorder.close(final_emit=False)
        (record,) = scan_flight(tmp_path / "flight").records
        assert len(record["spans"]) == 3
        assert record["spans_dropped"] == 7
        # Most recent kept.
        assert [s["attrs"]["index"] for s in record["spans"]] == [7, 8, 9]

    def test_refuses_null_probe(self, tmp_path):
        from repro.obs import NullProbe

        with pytest.raises(ValueError, match="active"):
            FlightRecorder(tmp_path / "flight", NullProbe())

    def test_close_emits_final_record(self, tmp_path, probe):
        recorder = _recorder(tmp_path, probe, interval=100.0)
        recorder.emit(force=True)
        probe.count("late", 1)
        recorder.close()  # final emit ignores the interval
        records = scan_flight(tmp_path / "flight").records
        assert len(records) == 2
        assert records[-1]["metrics"]["counters"]["late"] == 1


class TestRetention:
    def test_segments_roll_and_prune(self, tmp_path, probe):
        recorder = _recorder(
            tmp_path, probe, segment_max_bytes=400, keep_segments=2
        )
        for _ in range(12):
            recorder.emit(force=True)
        recorder.close(final_emit=False)
        names = sorted(os.listdir(tmp_path / "flight"))
        assert len(names) == 2
        total = sum(
            os.path.getsize(tmp_path / "flight" / name) for name in names
        )
        # Footprint bounded near keep_segments * segment_max_bytes (one
        # record may overshoot a segment's cap before the roll).
        assert total < 2 * (400 + 2048)
        snapshot = probe.metrics.snapshot()["counters"]
        assert snapshot["flight.segments_rolled"] >= 2
        assert snapshot["flight.segments_pruned"] >= 1

    def test_pruned_history_keeps_newest_records(self, tmp_path, probe):
        recorder = _recorder(
            tmp_path, probe, segment_max_bytes=400, keep_segments=2
        )
        for _ in range(12):
            recorder.emit(force=True)
        last_seq = recorder.next_seq - 1
        recorder.close(final_emit=False)
        records = scan_flight(tmp_path / "flight").records
        assert records, "retention must never prune the live tail"
        assert records[-1]["seq"] == last_seq

    def test_every_segment_opens_with_header(self, tmp_path, probe):
        recorder = _recorder(
            tmp_path, probe, segment_max_bytes=300, keep_segments=10
        )
        for _ in range(6):
            recorder.emit(force=True)
        recorder.close(final_emit=False)
        for name in sorted(os.listdir(tmp_path / "flight")):
            with open(tmp_path / "flight" / name, "rb") as handle:
                first = _parse_line(handle.readline())
            assert first["type"] == "flight"
            assert first["version"] == FLIGHT_VERSION
            base = int(name[len("flight-") : -len(".jsonl")])
            assert first["base_seq"] == base


class TestResumeAndRepair:
    def test_reopen_resumes_sequence(self, tmp_path, probe):
        recorder = _recorder(tmp_path, probe)
        recorder.emit()
        recorder.emit(force=True)
        recorder.close(final_emit=False)

        again = _recorder(tmp_path, Probe())
        assert again.next_seq == 2
        again.emit()
        again.close(final_emit=False)
        assert [r["seq"] for r in scan_flight(tmp_path / "flight").records] == [
            0, 1, 2,
        ]

    def test_torn_tail_repaired_on_open(self, tmp_path, probe):
        recorder = _recorder(tmp_path, probe)
        recorder.emit()
        recorder.close(final_emit=False)
        (name,) = os.listdir(tmp_path / "flight")
        path = tmp_path / "flight" / name
        with open(path, "ab") as handle:
            handle.write(b"\x00half a reco")  # simulated mid-write kill

        scan = scan_flight(tmp_path / "flight")
        assert not scan.clean
        assert len(scan.records) == 1  # the tear hides nothing acked

        fresh = Probe()
        again = _recorder(tmp_path, fresh)
        assert again.truncated_bytes == 12
        assert fresh.metrics.snapshot()["counters"][
            "flight.truncated_bytes"
        ] == 12
        again.emit()
        again.close(final_emit=False)
        assert scan_flight(tmp_path / "flight").clean

    def test_damage_in_one_segment_keeps_later_segments(self, tmp_path, probe):
        # Unlike the WAL, telemetry records are independent: a corrupt
        # middle segment must not make newer segments unreachable.
        recorder = _recorder(
            tmp_path, probe, segment_max_bytes=300, keep_segments=10
        )
        for _ in range(6):
            recorder.emit(force=True)
        recorder.close(final_emit=False)
        names = sorted(os.listdir(tmp_path / "flight"))
        assert len(names) >= 3
        victim = tmp_path / "flight" / names[1]
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(data)

        scan = scan_flight(tmp_path / "flight")
        assert not scan.clean
        seqs = [record["seq"] for record in scan.records]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 5  # the newest record survived the middle tear

    def test_repair_removes_segment_with_damaged_header(self, tmp_path, probe):
        recorder = _recorder(tmp_path, probe)
        recorder.emit()
        recorder.close(final_emit=False)
        (name,) = os.listdir(tmp_path / "flight")
        path = tmp_path / "flight" / name
        data = bytearray(path.read_bytes())
        data[2] ^= 0xFF  # corrupt the header line itself
        path.write_bytes(data)

        scan = scan_flight(tmp_path / "flight")
        assert not scan.clean and not scan.records
        repair_flight(scan)
        assert os.listdir(tmp_path / "flight") == []

    def test_scan_of_missing_directory_is_empty_not_error(self, tmp_path):
        scan = scan_flight(tmp_path / "nowhere")
        assert scan.clean and not scan.records
        assert scan.next_seq == 0

    def test_flight_tail_returns_newest_first_n(self, tmp_path, probe):
        recorder = _recorder(tmp_path, probe)
        for _ in range(5):
            recorder.emit(force=True)
        recorder.close(final_emit=False)
        tail = flight_tail(tmp_path / "flight", n=2)
        assert [record["seq"] for record in tail] == [3, 4]


class TestCrashPoints:
    def test_emit_crash_leaves_prior_records_readable(self, tmp_path, probe):
        plan = FaultPlan(crash_at="flight.emit", crash_on_hit=2)
        recorder = _recorder(tmp_path, probe, fault_plan=plan)
        with pytest.raises(InjectedCrash):
            with recorder:
                recorder.emit(force=True)
                recorder.emit(force=True)
        scan = scan_flight(tmp_path / "flight")
        assert scan.clean
        assert [record["seq"] for record in scan.records] == [0]

    def test_torn_emit_crash_repaired_by_next_open(self, tmp_path, probe):
        plan = FaultPlan(crash_at="flight.emit.torn", crash_on_hit=2)
        recorder = _recorder(tmp_path, probe, fault_plan=plan)
        with pytest.raises(InjectedCrash):
            with recorder:
                recorder.emit(force=True)
                recorder.emit(force=True)
        scan = scan_flight(tmp_path / "flight")
        assert not scan.clean  # half a line is on disk
        assert [record["seq"] for record in scan.records] == [0]

        survivor = _recorder(tmp_path, Probe())
        assert survivor.truncated_bytes > 0
        assert survivor.next_seq == 1
        survivor.emit()
        survivor.close(final_emit=False)
        assert scan_flight(tmp_path / "flight").clean

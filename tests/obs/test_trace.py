"""Tracer: span nesting, events, error annotation, JSONL export."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.trace import TRACE_VERSION, Tracer


class TestSpans:
    def test_span_records_interval(self):
        tracer = Tracer()
        with tracer.span("mine", algorithm="ista"):
            pass
        (record,) = tracer.records
        assert record["type"] == "span"
        assert record["name"] == "mine"
        assert record["attrs"] == {"algorithm": "ista"}
        assert record["end"] >= record["start"]
        assert record["duration"] >= 0

    def test_nested_spans_carry_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # Completion order: inner closes first.
        inner, outer = tracer.records
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert outer["name"] == "outer" and outer["depth"] == 0

    def test_exception_annotates_span(self):
        tracer = Tracer()
        try:
            with tracer.span("mine"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        (record,) = tracer.records
        assert record["attrs"]["status"] == "error"
        assert record["attrs"]["error"] == "RuntimeError"

    def test_event_records_point(self):
        tracer = Tracer()
        with tracer.span("merge"):
            tracer.event("worker-merged", shard=3)
        event = tracer.records[0]
        assert event["type"] == "event"
        assert event["name"] == "worker-merged"
        assert event["depth"] == 1
        assert event["attrs"] == {"shard": 3}


class TestJsonlExport:
    def test_header_then_records(self):
        tracer = Tracer()
        with tracer.span("load"):
            pass
        tracer.event("done")
        buffer = io.StringIO()
        tracer.write_jsonl(buffer)
        lines = buffer.getvalue().strip().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "trace"
        assert header["version"] == TRACE_VERSION
        assert header["trace_id"] == tracer.trace_id
        assert header["records"] == 2
        assert isinstance(header["wall"], float)
        parsed = [json.loads(line) for line in lines[1:]]
        assert [record["type"] for record in parsed] == ["span", "event"]

    def test_every_line_is_valid_json(self):
        tracer = Tracer()
        for index in range(5):
            with tracer.span("phase", index=index):
                pass
        buffer = io.StringIO()
        tracer.write_jsonl(buffer)
        for line in buffer.getvalue().splitlines():
            json.loads(line)

    def test_len_counts_records(self):
        tracer = Tracer()
        assert len(tracer) == 0
        tracer.event("x")
        assert len(tracer) == 1


class TestTraceContext:
    def test_span_ids_link_child_to_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records
        assert outer["parent_id"] is None
        assert inner["parent_id"] == outer["span_id"]
        assert inner["span_id"] != outer["span_id"]

    def test_context_reports_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.context() == {
            "trace_id": tracer.trace_id,
            "parent_id": None,
        }
        with tracer.span("mine") as span:
            context = tracer.context()
            assert context["trace_id"] == tracer.trace_id
            assert context["parent_id"] == span.span_id

    def test_propagated_context_parents_remote_roots(self):
        parent = Tracer()
        with parent.span("mine") as mine:
            context = parent.context()
        child = Tracer(
            trace_id=context["trace_id"], parent_id=context["parent_id"]
        )
        with child.span("shard"):
            pass
        assert child.trace_id == parent.trace_id
        assert child.records[0]["parent_id"] == mine.span_id

    def test_event_carries_parent_id(self):
        tracer = Tracer()
        with tracer.span("merge") as span:
            tracer.event("worker-merged", shard=0)
        assert tracer.records[0]["parent_id"] == span.span_id


class TestMergeRemote:
    def test_merge_shifts_onto_parent_timeline(self):
        parent = Tracer()
        child = Tracer(trace_id=parent.trace_id)
        child.wall = parent.wall + 2.0  # child started two seconds later
        with child.span("shard"):
            pass
        start = child.records[0]["start"]
        parent.merge_remote(child.records, wall=child.wall)
        merged = parent.records[0]
        assert merged["start"] == pytest.approx(start + 2.0)
        assert merged["end"] >= merged["start"]

    def test_merge_stamps_extra_attrs_without_overwriting(self):
        parent = Tracer()
        child = Tracer()
        with child.span("shard", shard=7):
            pass
        child.event("done")
        parent.merge_remote(child.records, wall=child.wall, shard=3)
        span, event = parent.records
        assert span["attrs"]["shard"] == 7  # child's value wins
        assert event["attrs"]["shard"] == 3  # stamped where absent

    def test_merge_does_not_mutate_source_records(self):
        parent = Tracer()
        child = Tracer()
        with child.span("shard"):
            pass
        before = json.dumps(child.records, sort_keys=True)
        parent.merge_remote(child.records, wall=child.wall, shard=1)
        assert json.dumps(child.records, sort_keys=True) == before


class TestBoundedBuffer:
    def test_oldest_records_drop_at_bound(self):
        tracer = Tracer(max_records=3)
        for index in range(5):
            tracer.event("tick", index=index)
        assert len(tracer.records) == 3
        assert [r["attrs"]["index"] for r in tracer.records] == [2, 3, 4]
        assert tracer.dropped == 2
        assert tracer.total == 5

    def test_unbounded_by_default(self):
        tracer = Tracer()
        for _ in range(100):
            tracer.event("tick")
        assert len(tracer.records) == 100
        assert tracer.dropped == 0

    def test_header_reports_dropped(self):
        tracer = Tracer(max_records=1)
        tracer.event("a")
        tracer.event("b")
        buffer = io.StringIO()
        tracer.write_jsonl(buffer)
        header = json.loads(buffer.getvalue().splitlines()[0])
        assert header["records"] == 1
        assert header["dropped"] == 1

"""Tracer: span nesting, events, error annotation, JSONL export."""

from __future__ import annotations

import io
import json

from repro.obs.trace import Tracer


class TestSpans:
    def test_span_records_interval(self):
        tracer = Tracer()
        with tracer.span("mine", algorithm="ista"):
            pass
        (record,) = tracer.records
        assert record["type"] == "span"
        assert record["name"] == "mine"
        assert record["attrs"] == {"algorithm": "ista"}
        assert record["end"] >= record["start"]
        assert record["duration"] >= 0

    def test_nested_spans_carry_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # Completion order: inner closes first.
        inner, outer = tracer.records
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert outer["name"] == "outer" and outer["depth"] == 0

    def test_exception_annotates_span(self):
        tracer = Tracer()
        try:
            with tracer.span("mine"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        (record,) = tracer.records
        assert record["attrs"]["status"] == "error"
        assert record["attrs"]["error"] == "RuntimeError"

    def test_event_records_point(self):
        tracer = Tracer()
        with tracer.span("merge"):
            tracer.event("worker-merged", shard=3)
        event = tracer.records[0]
        assert event["type"] == "event"
        assert event["name"] == "worker-merged"
        assert event["depth"] == 1
        assert event["attrs"] == {"shard": 3}


class TestJsonlExport:
    def test_header_then_records(self):
        tracer = Tracer()
        with tracer.span("load"):
            pass
        tracer.event("done")
        buffer = io.StringIO()
        tracer.write_jsonl(buffer)
        lines = buffer.getvalue().strip().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "trace"
        assert header["version"] == 1
        assert header["records"] == 2
        assert isinstance(header["wall"], float)
        parsed = [json.loads(line) for line in lines[1:]]
        assert [record["type"] for record in parsed] == ["span", "event"]

    def test_every_line_is_valid_json(self):
        tracer = Tracer()
        for index in range(5):
            with tracer.span("phase", index=index):
                pass
        buffer = io.StringIO()
        tracer.write_jsonl(buffer)
        for line in buffer.getvalue().splitlines():
            json.loads(line)

    def test_len_counts_records(self):
        tracer = Tracer()
        assert len(tracer) == 0
        tracer.event("x")
        assert len(tracer) == 1

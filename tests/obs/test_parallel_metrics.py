"""Parallel observability: per-worker snapshots merge exactly at the join."""

from __future__ import annotations

import pytest

from repro import mine, mine_parallel
from repro.obs import Probe

from ..conftest import make_random_db


@pytest.fixture(scope="module")
def db():
    return make_random_db(11, max_transactions=24, max_items=12, density=0.45)


class TestParallelMerge:
    def test_every_shard_snapshot_is_merged(self, db):
        probe = Probe()
        mine_parallel(db, 2, algorithm="ista", n_workers=2, probe=probe)
        snapshot = probe.metrics.snapshot()["counters"]
        shards = snapshot["parallel.shards"]
        assert shards >= 2
        assert snapshot["parallel.workers_merged"] == shards

    def test_probed_parallel_results_match_serial(self, db):
        serial = mine(db, 2, algorithm="ista")
        probed = mine_parallel(db, 2, algorithm="ista", n_workers=2, probe=Probe())
        assert sorted(probed.items()) == sorted(serial.items())

    def test_probe_off_parallel_results_unchanged(self, db):
        plain = mine_parallel(db, 2, algorithm="ista", n_workers=2)
        probed = mine_parallel(db, 2, algorithm="ista", n_workers=2, probe=Probe())
        assert sorted(probed.items()) == sorted(plain.items())

    def test_worker_cost_counters_reach_the_driver_probe(self, db):
        # The shard miners run in worker processes; their ops.* counters
        # only exist in the driver's registry if the snapshot pipeline
        # (worker Probe -> ShardOutcome.metrics -> merge_worker) works.
        probe = Probe()
        mine_parallel(db, 2, algorithm="ista", n_workers=2, probe=probe)
        counters = probe.metrics.snapshot()["counters"]
        assert counters["ops.intersections"] > 0
        assert counters["ops.reports"] > 0

    def test_phases_traced_at_the_driver(self, db):
        probe = Probe()
        mine_parallel(db, 2, algorithm="ista", n_workers=2, probe=probe)
        spans = {
            record["name"]
            for record in probe.tracer.records
            if record["type"] == "span"
        }
        assert {"plan", "mine", "merge"} <= spans

    def test_serial_fallback_path_also_merges(self, db):
        # n_workers=1 short-circuits the process pool but must still
        # produce the same observability surface.
        probe = Probe()
        mine_parallel(db, 2, algorithm="ista", n_workers=1, probe=probe)
        counters = probe.metrics.snapshot()["counters"]
        assert counters["parallel.workers_merged"] == counters["parallel.shards"]
        assert counters["ops.intersections"] > 0

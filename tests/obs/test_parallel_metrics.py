"""Parallel observability: per-worker snapshots merge exactly at the join."""

from __future__ import annotations

import pytest

from repro import mine, mine_parallel
from repro.obs import Probe

from ..conftest import make_random_db


@pytest.fixture(scope="module")
def db():
    return make_random_db(11, max_transactions=24, max_items=12, density=0.45)


class TestParallelMerge:
    def test_every_shard_snapshot_is_merged(self, db):
        probe = Probe()
        mine_parallel(db, 2, algorithm="ista", n_workers=2, probe=probe)
        snapshot = probe.metrics.snapshot()["counters"]
        shards = snapshot["parallel.shards"]
        assert shards >= 2
        assert snapshot["parallel.workers_merged"] == shards

    def test_probed_parallel_results_match_serial(self, db):
        serial = mine(db, 2, algorithm="ista")
        probed = mine_parallel(db, 2, algorithm="ista", n_workers=2, probe=Probe())
        assert sorted(probed.items()) == sorted(serial.items())

    def test_probe_off_parallel_results_unchanged(self, db):
        plain = mine_parallel(db, 2, algorithm="ista", n_workers=2)
        probed = mine_parallel(db, 2, algorithm="ista", n_workers=2, probe=Probe())
        assert sorted(probed.items()) == sorted(plain.items())

    def test_worker_cost_counters_reach_the_driver_probe(self, db):
        # The shard miners run in worker processes; their ops.* counters
        # only exist in the driver's registry if the snapshot pipeline
        # (worker Probe -> ShardOutcome.metrics -> merge_worker) works.
        probe = Probe()
        mine_parallel(db, 2, algorithm="ista", n_workers=2, probe=probe)
        counters = probe.metrics.snapshot()["counters"]
        assert counters["ops.intersections"] > 0
        assert counters["ops.reports"] > 0

    def test_phases_traced_at_the_driver(self, db):
        probe = Probe()
        mine_parallel(db, 2, algorithm="ista", n_workers=2, probe=probe)
        spans = {
            record["name"]
            for record in probe.tracer.records
            if record["type"] == "span"
        }
        assert {"plan", "mine", "merge"} <= spans

    def test_merged_trace_forms_one_tree(self, db):
        # Worker spans ship back with the shard outcome and must
        # reassemble under the driver's "mine" span: one trace id, and
        # every parent_id resolves to a span in the merged stream.
        probe = Probe()
        mine_parallel(db, 2, algorithm="ista", n_workers=2, probe=probe)
        records = probe.tracer.records
        span_ids = {
            record["span_id"]
            for record in records
            if record["type"] == "span"
        }
        orphans = [
            record
            for record in records
            if record.get("parent_id") is not None
            and record["parent_id"] not in span_ids
        ]
        assert not orphans, f"unresolvable parent ids: {orphans[:3]}"
        # Worker shard spans carry the shard attr the join stamped and
        # attach below the driver's mine span.
        mine_span = next(
            record
            for record in records
            if record["type"] == "span" and record["name"] == "mine"
        )
        shard_roots = [
            record
            for record in records
            if record.get("parent_id") == mine_span["span_id"]
            and "shard" in (record.get("attrs") or {})
        ]
        assert shard_roots, "no worker span attached under the mine span"

    def test_worker_records_share_the_driver_trace_id(self, db):
        probe = Probe()
        mine_parallel(db, 2, algorithm="ista", n_workers=2, probe=probe)
        # Every record lives in the driver tracer's buffer: the workers
        # inherited its trace id rather than minting their own stream.
        events = {
            record["name"]
            for record in probe.tracer.records
            if record["type"] == "event"
        }
        assert "worker-merged" in events
        names = {
            record["name"]
            for record in probe.tracer.records
            if record["type"] == "span"
        }
        # Worker-side phase spans (recode/mine inside the shard) made
        # the trip back.
        assert "recode" in names

    def test_serial_fallback_path_also_merges(self, db):
        # n_workers=1 short-circuits the process pool but must still
        # produce the same observability surface.
        probe = Probe()
        mine_parallel(db, 2, algorithm="ista", n_workers=1, probe=probe)
        counters = probe.metrics.snapshot()["counters"]
        assert counters["parallel.workers_merged"] == counters["parallel.shards"]
        assert counters["ops.intersections"] > 0

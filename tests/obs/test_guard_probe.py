"""S2: guard resource hygiene + guard-to-probe sampling."""

from __future__ import annotations

import tracemalloc

import pytest

from repro.obs import Probe
from repro.runtime import MemoryBudgetExceeded, RunGuard


@pytest.fixture(autouse=True)
def _no_ambient_tracing():
    # These tests reason about tracemalloc ownership; they only make
    # sense when nothing else is tracing.
    if tracemalloc.is_tracing():
        pytest.skip("tracemalloc already active outside the test")
    yield
    if tracemalloc.is_tracing():  # pragma: no cover - safety net
        tracemalloc.stop()


class TestTracemallocLifecycle:
    def test_context_manager_releases_tracing_on_exception(self):
        # The regression: an exception escaping between guard start and
        # close used to leave tracemalloc running for the rest of the
        # process, slowing every later allocation.
        with pytest.raises(RuntimeError):
            with RunGuard(memory_limit_mb=512):
                assert tracemalloc.is_tracing()
                raise RuntimeError("driver blew up before finish()")
        assert not tracemalloc.is_tracing()

    def test_finish_is_idempotent_with_exit(self):
        with RunGuard(memory_limit_mb=512) as guard:
            guard.finish()  # a driver's finally block runs first...
            assert not tracemalloc.is_tracing()
        # ...and __exit__ calling finish() again must not blow up.
        assert not tracemalloc.is_tracing()

    def test_budget_trip_then_respawn_does_not_leak(self):
        # A fallback chain respawns the guard per attempt; every attempt
        # tripping must still end with tracing released.
        guard = RunGuard(memory_limit_mb=512)
        for _ in range(3):
            with pytest.raises(MemoryBudgetExceeded):
                with guard:
                    guard._memory_limit_bytes = 1  # force the trip
                    guard._countdown = 1
                    payload = [bytearray(4096) for _ in range(8)]
                    del payload
                    guard.check()
            guard = guard.respawn()
        guard.finish()
        assert not tracemalloc.is_tracing()

    def test_guard_respects_foreign_tracing(self):
        tracemalloc.start()
        try:
            with RunGuard(memory_limit_mb=512):
                pass
            # Not ours to stop: the guard must leave it running.
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


class TestGuardProbeSampling:
    def test_real_checks_feed_the_probe(self):
        probe = Probe()
        guard = RunGuard(timeout=60.0, stride=4, probe=probe)
        with guard:
            for _ in range(16):
                guard.check()
        snapshot = probe.metrics.snapshot()
        assert snapshot["counters"]["guard.real_checks"] == guard.real_checks
        headroom = snapshot["histograms"]["guard.headroom.seconds"]
        assert headroom["count"] == guard.real_checks
        assert headroom["max"] <= 60.0

    def test_memory_high_water_is_sampled(self):
        probe = Probe()
        with RunGuard(memory_limit_mb=512, stride=1, probe=probe) as guard:
            ballast = [bytearray(8192) for _ in range(4)]
            guard.check()
            del ballast
        gauges = probe.metrics.snapshot()["gauges"]
        assert gauges["guard.memory_high_water.bytes"] > 0

    def test_inactive_probe_is_dropped(self):
        from repro.obs import NULL_PROBE

        guard = RunGuard(timeout=60.0, probe=NULL_PROBE)
        assert guard.probe is None
        guard.finish()

    def test_unbounded_guard_samples_no_headroom(self):
        probe = Probe()
        with RunGuard(stride=1, probe=probe) as guard:
            guard.check()
        snapshot = probe.metrics.snapshot()
        assert snapshot["counters"]["guard.real_checks"] >= 1
        assert "guard.headroom.seconds" not in snapshot["histograms"]

"""The streaming fold path keeps the <5% probe-overhead bound.

Same strategy as the one-shot bound in ``test_differential``: count
null-probe hook calls (deterministic on noisy runners), price one hook
call, and hold priced hook cost under 5% of the cheapest real run.
Two new surfaces are covered here:

* the **streaming fold path** — ingest/fold/compact must make a small,
  per-record-bounded number of probe hook calls with the probe off
  (the WAL append histograms are guarded by ``probe.active`` so the
  off path never reads the clock);
* the **flight recorder cadence** — an :meth:`~FlightRecorder.emit`
  call inside the rate-limit window is a clock read and a compare, so
  hooking it at every fold boundary cannot scale with the database.
"""

from __future__ import annotations

import time

from repro.obs import FlightRecorder, NullProbe, Probe
from repro.obs.probe import _NULL_SPAN
from repro.serving import StreamingMiner

#: Hook-call ceiling for ONE ingested record on the probe-off path:
#: the WAL append counters plus its share of the per-batch fold hooks.
MAX_HOOKS_PER_RECORD = 10
#: Constant per-run hook budget (open/recover/compact/close phases).
MAX_HOOKS_PER_RUN = 60


class CountingNullProbe(NullProbe):
    """Null probe that tallies how often the serving layer touches it."""

    __slots__ = ("calls",)

    def __init__(self):
        self.calls = 0

    def phase(self, name, **attrs):
        self.calls += 1
        return _NULL_SPAN

    def event(self, name, **attrs):
        self.calls += 1

    def count(self, name, amount=1):
        self.calls += 1

    def observe(self, name, value, buckets=None):
        self.calls += 1

    def gauge_max(self, name, value):
        self.calls += 1

    def trace_context(self):
        self.calls += 1
        return None

    def wrap_kernel(self, kernel):
        self.calls += 1
        return kernel

    def ensure_counters(self, counters):
        self.calls += 1
        return super().ensure_counters(counters)

    def record_counters(self, counters):
        self.calls += 1

    def sample_guard(self, elapsed, remaining, memory_used):
        self.calls += 1

    def merge_worker(self, snapshot, index=None, trace=None):
        self.calls += 1


def _rows(n):
    return [
        [label for label in "abcdef" if (index * 5 + ord(label)) % 3]
        or ["a"]
        for index in range(n)
    ]


def _ingest_run(tmp_path, name, rows, probe):
    store = StreamingMiner.open(
        tmp_path / name, batch_records=8, probe=probe, fsync="os"
    )
    for row in rows:
        store.ingest(row)
    store.close()


class TestFoldPathHookBudget:
    def test_hook_calls_bounded_per_record(self, tmp_path):
        for label, n in (("small", 16), ("large", 128)):
            probe = CountingNullProbe()
            _ingest_run(tmp_path, label, _rows(n), probe)
            assert probe.calls <= MAX_HOOKS_PER_RECORD * n + MAX_HOOKS_PER_RUN, (
                f"{probe.calls} hook calls for {n} records: the fold "
                "path is calling the probe per operation, not per record"
            )

    def test_hook_rate_does_not_grow_with_input(self, tmp_path):
        rates = {}
        for label, n in (("small", 16), ("large", 128)):
            probe = CountingNullProbe()
            _ingest_run(tmp_path, label, _rows(n), probe)
            rates[label] = probe.calls / n
        # Eight times the records must not raise the per-record hook
        # rate: the constant per-run hooks amortise away instead.
        assert rates["large"] <= rates["small"] + 1


class TestFoldPathPricedBound:
    def test_null_hook_cost_below_five_percent_of_fold_path(self, tmp_path):
        probe = CountingNullProbe()
        rounds = 20_000
        started = time.perf_counter()
        for _ in range(rounds):
            probe.count("wal.appends")
            probe.observe("wal.append.seconds", 0.0)
            with probe.phase("serve.fold"):
                pass
        hook_seconds = (time.perf_counter() - started) / (rounds * 3)

        rows = _rows(64)
        best = min(
            _timed(lambda run=run: _ingest_run(
                tmp_path, f"run{run}", rows, None
            ))
            for run in range(3)
        )
        per_record = best / len(rows)
        assert MAX_HOOKS_PER_RECORD * hook_seconds < 0.05 * per_record, (
            f"hook cost {hook_seconds * 1e9:.0f}ns x {MAX_HOOKS_PER_RECORD} "
            f"exceeds 5% of a {per_record * 1e6:.1f}us/record fold path"
        )


class TestRecorderCadenceBound:
    def test_rate_limited_emit_is_cheap(self, tmp_path):
        # Inside the interval window emit() is a clock read + compare;
        # that is what every fold boundary pays once the recorder is on.
        probe = Probe()
        recorder = FlightRecorder(
            tmp_path / "flight", probe, interval=3600.0
        )
        recorder.emit(force=True)  # open the window
        rounds = 20_000
        started = time.perf_counter()
        for _ in range(rounds):
            recorder.emit()
        noop_seconds = (time.perf_counter() - started) / rounds
        recorder.close(final_emit=False)

        rows = _rows(64)
        best = min(
            _timed(lambda run=run: _ingest_run(
                tmp_path, f"run{run}", rows, None
            ))
            for run in range(3)
        )
        per_record = best / len(rows)
        assert noop_seconds < 0.05 * per_record, (
            f"rate-limited emit costs {noop_seconds * 1e9:.0f}ns, over 5% "
            f"of a {per_record * 1e6:.1f}us/record fold path"
        )

    def test_probe_off_wal_append_never_reads_clock(self, monkeypatch, tmp_path):
        # The histogram timing in the WAL append path is guarded by
        # probe.active: with the probe off, perf_counter is untouched
        # on the per-record path.
        from repro.serving import wal as wal_module

        store = StreamingMiner.open(
            tmp_path / "store", batch_records=1000, fsync="os"
        )
        calls = {"n": 0}
        real = wal_module.perf_counter

        def counting_perf_counter():
            calls["n"] += 1
            return real()

        monkeypatch.setattr(
            wal_module, "perf_counter", counting_perf_counter
        )
        for row in _rows(32):
            store.ingest(row)
        assert calls["n"] == 0
        store.close()


def _timed(thunk):
    started = time.perf_counter()
    thunk()
    return time.perf_counter() - started

"""Metric primitives: registry semantics, snapshots, merge, exposition."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    QUANTILES,
    SIZE_BUCKETS,
    Histogram,
    MetricsRegistry,
    escape_help,
    escape_label_value,
    estimate_quantile,
    prom_name,
)


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("ops.intersections").inc(3)
        registry.counter("ops.intersections").inc(4)
        assert registry.counter("ops.intersections").value == 7

    def test_gauge_set_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("ops.repository_peak")
        gauge.set_max(10)
        gauge.set_max(4)
        gauge.set_max(12)
        assert gauge.value == 12

    def test_gauge_set_max_accepts_lower_first_value(self):
        # A fresh gauge starts at 0.0 but *unset*; a first sample below
        # zero must still register.
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set_max(-5.0)
        assert gauge.value == -5.0
        assert gauge.updated

    def test_histogram_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0, 0.2):
            histogram.observe(value)
        assert histogram.bucket_counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.total == pytest.approx(55.7)
        assert histogram.min == 0.2
        assert histogram.max == 50.0

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", buckets=(10.0, 1.0))

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="different type"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="different type"):
            registry.histogram("x")

    def test_len_counts_all_families(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(registry) == 3


class TestSnapshotAndMerge:
    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set_max(1.5)
        registry.histogram("h").observe(0.3)
        parsed = json.loads(json.dumps(registry.snapshot()))
        assert parsed["counters"]["c"] == 2
        assert parsed["gauges"]["g"] == 1.5
        assert parsed["histograms"]["h"]["count"] == 1

    def test_snapshot_skips_untouched_gauges(self):
        registry = MetricsRegistry()
        registry.gauge("silent")
        assert "silent" not in registry.snapshot()["gauges"]

    def test_merge_counters_add_gauges_max(self):
        worker = MetricsRegistry()
        worker.counter("ops.intersections").inc(5)
        worker.gauge("ops.repository_peak").set_max(9)
        main = MetricsRegistry()
        main.counter("ops.intersections").inc(2)
        main.gauge("ops.repository_peak").set_max(11)
        main.merge_snapshot(worker.snapshot())
        assert main.counter("ops.intersections").value == 7
        assert main.gauge("ops.repository_peak").value == 11

    def test_merge_histograms_bucketwise(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for value in (0.001, 0.5):
            a.histogram("h").observe(value)
        for value in (2.0, 100.0, 0.0001):
            b.histogram("h").observe(value)
        a.merge_snapshot(b.snapshot())
        merged = a.histogram("h")
        assert merged.count == 5
        assert merged.total == pytest.approx(102.5011)
        assert merged.min == 0.0001
        assert merged.max == 100.0
        assert sum(merged.bucket_counts) == 5

    def test_merge_is_associative_with_serial_order(self):
        # (a + b) + c must equal a + (b + c): the parallel join folds
        # worker snapshots in completion order, which is nondeterministic.
        def worker(seed):
            registry = MetricsRegistry()
            registry.counter("c").inc(seed)
            registry.gauge("g").set_max(seed * 1.5)
            registry.histogram("h").observe(seed * 0.01)
            return registry.snapshot()

        left = MetricsRegistry()
        for seed in (1, 2, 3):
            left.merge_snapshot(worker(seed))
        right = MetricsRegistry()
        for seed in (3, 1, 2):
            right.merge_snapshot(worker(seed))
        assert left.snapshot() == right.snapshot()

    def test_merge_rejects_mismatched_buckets(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(5.0, 6.0)).observe(5.5)
        with pytest.raises(ValueError, match="bucket"):
            a.merge_snapshot(b.snapshot())

    def test_merge_with_prefix_namespaces(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(4)
        main = MetricsRegistry()
        main.merge_snapshot(worker.snapshot(), prefix="shard0.")
        assert main.counter("shard0.c").value == 4


class TestPromExposition:
    def test_prom_name_counter_total_suffix(self):
        assert prom_name("ops.intersections", "counter") == (
            "repro_ops_intersections_total"
        )
        assert prom_name("kernel.intersect_many.calls", "counter") == (
            "repro_kernel_intersect_many_calls_total"
        )

    def test_prom_name_gauge_keeps_unit(self):
        assert prom_name("guard.memory_high_water.bytes", "gauge") == (
            "repro_guard_memory_high_water_bytes"
        )

    def test_to_prom_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("ops.intersections", "transaction intersections").inc(42)
        registry.gauge("ops.repository_peak").set_max(7)
        text = registry.to_prom()
        assert "# TYPE repro_ops_intersections_total counter" in text
        assert "repro_ops_intersections_total 42" in text
        assert "# HELP repro_ops_intersections_total transaction intersections" in text
        assert "repro_ops_repository_peak 7" in text
        assert text.endswith("\n")

    def test_to_prom_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("phase.mine.seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = registry.to_prom()
        assert 'repro_phase_mine_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_phase_mine_seconds_bucket{le="1"} 2' in text
        assert 'repro_phase_mine_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_phase_mine_seconds_count 3" in text

    def test_to_prom_empty_registry(self):
        assert MetricsRegistry().to_prom() == ""

    def test_default_buckets_sorted_and_wide(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 1e9

    def test_latency_and_size_buckets_sorted(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert LATENCY_BUCKETS[0] <= 1e-6 and LATENCY_BUCKETS[-1] >= 10.0
        assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)
        assert SIZE_BUCKETS[0] <= 16 and SIZE_BUCKETS[-1] >= 1 << 26


class TestPromEscaping:
    r"""Text exposition format 0.0.4: HELP escapes ``\`` and newline,
    label values additionally escape the delimiting double quote."""

    def test_escape_help_backslash_and_newline(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"
        assert escape_help("plain text.") == "plain text."

    def test_escape_label_value_adds_quote(self):
        assert escape_label_value('say "hi"\n\\') == 'say \\"hi\\"\\n\\\\'

    def test_hostile_help_string_stays_one_line(self):
        registry = MetricsRegistry()
        registry.counter(
            "hostile", 'first\nsecond \\ "quoted"'
        ).inc(1)
        registry.histogram(
            "hostile.hist", "torn\ntail \\ marker", buckets=(1.0,)
        ).observe(0.5)
        text = registry.to_prom()
        for line in text.splitlines():
            # No help text may smuggle a raw newline into the stream:
            # every line is a complete, well-formed exposition line.
            assert line.startswith(("#", "repro_"))
        assert (
            '# HELP repro_hostile_total first\\nsecond \\\\ "quoted"' in text
        )
        assert "# HELP repro_hostile_hist torn\\ntail \\\\ marker" in text

    def test_parser_roundtrip_of_escaped_help(self):
        # A format-0.0.4 consumer unescapes \\n and \\\\; the roundtrip
        # must restore the original help text exactly.
        original = "line one\nline two \\ done"
        escaped = escape_help(original)
        assert "\n" not in escaped
        unescaped = escaped.replace("\\\\", "\0").replace("\\n", "\n")
        assert unescaped.replace("\0", "\\") == original


class TestQuantileEstimation:
    def test_empty_histogram_answers_none(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        assert histogram.quantile(0.5) is None
        assert estimate_quantile((1.0,), (0, 0), 0, 0.99) is None

    def test_single_sample_answers_itself(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(3.7)
        # min/max clamping: one sample answers the sample, not a bucket
        # midpoint.
        assert histogram.quantile(0.5) == pytest.approx(3.7)
        assert histogram.quantile(0.99) == pytest.approx(3.7)

    def test_interpolates_within_winning_bucket(self):
        histogram = Histogram("h", buckets=(0.0, 10.0, 20.0))
        for value in (2.0, 4.0, 6.0, 8.0, 12.0):
            histogram.observe(value)
        # p50 rank 2.5 of 5 falls in the (0, 10] bucket holding 4 of 5
        # samples; linear interpolation lands mid-bucket.
        estimate = histogram.quantile(0.5)
        assert 2.0 <= estimate <= 10.0

    def test_quantiles_are_monotone(self):
        histogram = Histogram("h", buckets=LATENCY_BUCKETS)
        for index in range(100):
            histogram.observe(0.0001 * (index + 1))
        values = [histogram.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert values == sorted(values)
        assert all(v is not None for v in values)

    def test_estimates_bounded_by_observed_extremes(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (2.0, 3.0, 500.0):
            histogram.observe(value)
        for q in QUANTILES:
            estimate = histogram.quantile(q)
            assert 2.0 <= estimate <= 500.0

    def test_works_from_snapshot_dict(self):
        # The flight-recorder reader computes quantiles from the plain
        # dict form without rebuilding Histogram objects.
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 3.0, 50.0):
            histogram.observe(value)
        data = registry.snapshot()["histograms"]["h"]
        estimate = estimate_quantile(
            data["buckets"],
            data["bucket_counts"],
            data["count"],
            0.5,
            lo=data["min"],
            hi=data["max"],
        )
        assert estimate == pytest.approx(histogram.quantile(0.5))

    def test_quantiles_method_covers_default_set(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        result = histogram.quantiles()
        assert set(result) == set(QUANTILES)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError, match="quantile"):
            estimate_quantile((1.0,), (1, 0), 1, 1.5)

    def test_merge_preserves_quantile_structure(self):
        # merge_snapshot over histograms is associative; quantile
        # estimates depend only on the merged bucket data.
        a, b, c = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for registry, values in (
            (a, (0.001, 0.02)),
            (b, (0.3, 0.4, 5.0)),
            (c, (0.0005,)),
        ):
            histogram = registry.histogram("h", buckets=LATENCY_BUCKETS)
            for value in values:
                histogram.observe(value)
        left = MetricsRegistry()
        for source in (a, b, c):
            left.merge_snapshot(source.snapshot())
        right = MetricsRegistry()
        for source in (c, a, b):
            right.merge_snapshot(source.snapshot())
        assert left.snapshot() == right.snapshot()
        assert left.histogram("h").quantile(0.95) == right.histogram(
            "h"
        ).quantile(0.95)

"""Tests for the click-stream workload generator."""

import pytest

from repro.data.transforms import transpose
from repro.datasets.webview import webview_clicks, webview_transposed


class TestClicks:
    def test_shape(self):
        db = webview_clicks(n_sessions=100, n_pages=50)
        assert db.n_transactions == 100
        assert db.n_items <= 50

    def test_deterministic(self):
        a = webview_clicks(n_sessions=50, n_pages=30, seed=9)
        b = webview_clicks(n_sessions=50, n_pages=30, seed=9)
        assert a.transactions == b.transactions

    def test_sessions_are_short_on_average(self):
        db = webview_clicks(n_sessions=500, n_pages=100, mean_session_length=2.5)
        sizes = db.transaction_sizes()
        assert 1.0 < sum(sizes) / len(sizes) < 8.0

    def test_zipf_head_is_popular(self):
        db = webview_clicks(n_sessions=1000, n_pages=100, n_paths=0)
        supports = db.item_supports()
        # page 0 is the Zipf head; it must dominate the median page
        assert supports[0] > 5 * sorted(supports)[50]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            webview_clicks(n_sessions=0)
        with pytest.raises(ValueError):
            webview_clicks(mean_session_length=0.0)


class TestTransposed:
    def test_is_the_transpose(self):
        clicks = webview_clicks(n_sessions=40, n_pages=20, seed=2)
        transposed = webview_transposed(n_sessions=40, n_pages=20, seed=2)
        assert transpose(clicks).transactions == transposed.transactions

    def test_many_items_few_transactions(self):
        db = webview_transposed(n_sessions=400, n_pages=50)
        assert db.n_transactions <= 50
        assert db.n_items == 400

"""Tests for the market-basket generator and the dataset registry."""

import pytest

from repro.datasets import DATASETS, load
from repro.datasets.basket import quest_baskets


class TestQuestBaskets:
    def test_shape(self):
        db = quest_baskets(n_transactions=100, n_items=40)
        assert db.n_transactions == 100
        assert db.n_items == 40

    def test_deterministic(self):
        a = quest_baskets(n_transactions=50, n_items=30, seed=11)
        b = quest_baskets(n_transactions=50, n_items=30, seed=11)
        assert a.transactions == b.transactions

    def test_transaction_lengths_near_target(self):
        db = quest_baskets(n_transactions=500, n_items=100, mean_transaction_length=10)
        sizes = db.transaction_sizes()
        assert 5 < sum(sizes) / len(sizes) < 20

    def test_terminates_with_tiny_pattern_pool(self):
        """Regression: a pattern pool smaller than the wanted length must
        not loop forever."""
        db = quest_baskets(
            n_transactions=50, n_items=50, n_patterns=1,
            mean_pattern_length=1.0, mean_transaction_length=30.0, seed=0,
        )
        assert db.n_transactions == 50

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            quest_baskets(n_transactions=0)
        with pytest.raises(ValueError):
            quest_baskets(corruption=1.0)


class TestRegistry:
    def test_all_names_load(self):
        small = {
            "yeast": dict(n_genes=30, n_conditions=10),
            "ncbi60": dict(n_genes=30, n_cell_lines=8, n_tissues=2),
            "thrombin": dict(n_records=8, n_features=2600),
            "webview-tpo": dict(n_sessions=30, n_pages=10),
            "webview": dict(n_sessions=30, n_pages=10),
            "baskets": dict(n_transactions=20, n_items=15),
        }
        assert set(small) == set(DATASETS)
        for name, options in small.items():
            db = load(name, **options)
            assert db.n_transactions > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown data set"):
            load("mystery")

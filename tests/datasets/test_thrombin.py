"""Tests for the thrombin-shaped workload generator."""

import pytest

from repro.datasets.thrombin import thrombin_like


class TestThrombinLike:
    def test_shape(self):
        db = thrombin_like(n_records=16, n_features=800, group_size=15)
        assert db.n_transactions == 16
        assert db.n_items == 800

    def test_deterministic(self):
        a = thrombin_like(n_records=8, n_features=600, group_size=10, seed=5)
        b = thrombin_like(n_records=8, n_features=600, group_size=10, seed=5)
        assert a.transactions == b.transactions

    def test_scaffold_features_occur_in_blocks(self):
        db = thrombin_like(
            n_records=20, n_features=600, n_popular_groups=2, n_rare_groups=0,
            group_size=10, tail_rate=0.0, seed=1,
        )
        # Features of one group share identical covers.
        vertical = db.vertical()
        for group in range(2):
            covers = {vertical[group * 10 + offset] for offset in range(10)}
            assert len(covers) == 1

    def test_popular_groups_reach_high_support(self):
        db = thrombin_like(
            n_records=64, n_features=2600, popular_range=(0.9, 0.95), seed=2
        )
        supports = db.item_supports()
        assert max(supports) >= 48

    def test_tail_features_are_sparse(self):
        db = thrombin_like(n_records=64, n_features=4000, tail_rate=0.005, seed=3)
        tail_start = (14 + 26) * 60
        tail_supports = db.item_supports()[tail_start:]
        assert max(tail_supports, default=0) <= 5

    def test_blocks_exceeding_feature_base_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            thrombin_like(n_features=100, group_size=60)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            thrombin_like(n_records=0)

"""Calibration guards for the benchmark workloads.

The figure sweeps only say something if the generated data keeps its
regime (shape) and a non-trivial closed structure.  These tests pin the
*scaled-down* workloads' properties so that generator changes that
would silently hollow out the benchmarks fail loudly here.
"""

from repro.analysis import profile_database
from repro.datasets import (
    ncbi60_like,
    quest_baskets,
    thrombin_like,
    webview_transposed,
    yeast_compendium,
)
from repro.mining import mine


class TestRegimes:
    def test_yeast_is_wide(self):
        db = yeast_compendium(n_genes=400, n_conditions=60)
        profile = profile_database(db)
        assert profile.favours_intersection
        assert profile.n_transactions == 60

    def test_ncbi60_is_wide_and_blocky(self):
        db = ncbi60_like(n_genes=200, n_cell_lines=20, n_tissues=4)
        profile = profile_database(db)
        assert profile.favours_intersection
        # tissue blocks make transactions long relative to the noise rate
        assert profile.mean_transaction_size > 10

    def test_thrombin_is_wide_and_sparse_tailed(self):
        db = thrombin_like(n_records=16, n_features=800, group_size=12)
        assert profile_database(db).favours_intersection

    def test_webview_transposed_is_wide(self):
        db = webview_transposed(n_sessions=200, n_pages=40)
        assert profile_database(db).favours_intersection

    def test_baskets_is_tall(self):
        db = quest_baskets(n_transactions=200, n_items=40)
        assert not profile_database(db).favours_intersection


class TestClosedStructure:
    """Each scaled workload must yield a non-trivial closed family —
    a near-empty family would make the benchmark cells meaningless."""

    def test_yeast_structure(self):
        db = yeast_compendium(n_genes=400, n_conditions=60)
        assert len(mine(db, max(2, 60 // 30), algorithm="lcm")) >= 20

    def test_ncbi60_structure(self):
        db = ncbi60_like(n_genes=200, n_cell_lines=20, n_tissues=4)
        assert len(mine(db, 14, algorithm="ista")) >= 10

    def test_thrombin_structure(self):
        db = thrombin_like(n_records=16, n_features=800, group_size=12)
        assert len(mine(db, 6, algorithm="ista")) >= 10

    def test_webview_structure(self):
        db = webview_transposed(n_sessions=200, n_pages=40)
        assert len(mine(db, 2, algorithm="ista")) >= 20

    def test_baskets_structure(self):
        db = quest_baskets(n_transactions=200, n_items=40)
        assert len(mine(db, 20, algorithm="fpgrowth")) >= 10

"""Tests for the gene-expression workload generators."""

import numpy as np
import pytest

from repro.datasets.gene_expression import (
    expression_database,
    ncbi60_like,
    synthetic_expression_matrix,
    tissue_panel_matrix,
    yeast_compendium,
)


class TestSyntheticMatrix:
    def test_shape(self):
        values = synthetic_expression_matrix(50, 20, seed=0)
        assert values.shape == (50, 20)

    def test_deterministic_given_seed(self):
        a = synthetic_expression_matrix(30, 10, seed=7)
        b = synthetic_expression_matrix(30, 10, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = synthetic_expression_matrix(30, 10, seed=1)
        b = synthetic_expression_matrix(30, 10, seed=2)
        assert not np.array_equal(a, b)

    def test_modules_create_signal(self):
        quiet = synthetic_expression_matrix(100, 30, n_modules=0, noise_sd=0.05, seed=3)
        loud = synthetic_expression_matrix(
            100, 30, n_modules=10, module_gene_frac=0.3,
            module_condition_frac=0.5, noise_sd=0.05, seed=3,
        )
        assert (np.abs(loud) > 0.2).sum() > (np.abs(quiet) > 0.2).sum()

    def test_per_module_sign_gives_consistent_direction(self):
        values = synthetic_expression_matrix(
            40, 20, n_modules=1, module_gene_frac=1.0, module_condition_frac=1.0,
            signal=1.0, noise_sd=0.01, module_sign="per-module", seed=4,
        )
        # Whole matrix shifted one way: all entries share a sign.
        assert (values > 0.5).all() or (values < -0.5).all()

    def test_baseline_genes_shift_whole_rows(self):
        values = synthetic_expression_matrix(
            50, 30, n_modules=0, baseline_frac=1.0, baseline_shift=1.0,
            baseline_spread=0.0, noise_sd=0.01, seed=5,
        )
        assert (np.abs(values) > 0.5).all()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_genes": 0, "n_conditions": 5},
            {"n_genes": 5, "n_conditions": 5, "module_gene_frac": 0.0},
            {"n_genes": 5, "n_conditions": 5, "baseline_frac": 1.5},
            {"n_genes": 5, "n_conditions": 5, "module_sign": "sideways"},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            synthetic_expression_matrix(**kwargs)


class TestTissuePanel:
    def test_shape_and_determinism(self):
        a = tissue_panel_matrix(40, 12, n_tissues=3, seed=0)
        b = tissue_panel_matrix(40, 12, n_tissues=3, seed=0)
        assert a.shape == (40, 12)
        np.testing.assert_array_equal(a, b)

    def test_signature_genes_block_structure(self):
        values = tissue_panel_matrix(
            20, 12, n_tissues=2, signature_frac=1.0, signature_prob=1.0,
            signal=1.0, noise_sd=0.01, seed=1,
        )
        # With probability 1 every signature gene is shifted in every
        # tissue, one direction per gene: row-wise constant sign.
        signs = np.sign(values)
        assert (signs == signs[:, :1]).all()

    def test_invalid_tissue_count_rejected(self):
        with pytest.raises(ValueError):
            tissue_panel_matrix(10, 5, n_tissues=6)


class TestWorkloads:
    def test_yeast_shape(self):
        db = yeast_compendium(n_genes=200, n_conditions=40)
        assert db.n_transactions == 40
        assert db.n_items == 400  # one +/- item pair per gene

    def test_yeast_genes_as_transactions_orientation(self):
        db = yeast_compendium(
            n_genes=50, n_conditions=10, orientation="genes-as-transactions"
        )
        assert db.n_transactions == 50

    def test_ncbi60_shape(self):
        db = ncbi60_like(n_genes=100, n_cell_lines=12, n_tissues=3)
        assert db.n_transactions == 12
        assert db.n_items == 200

    def test_expression_database_thresholds(self):
        values = np.array([[0.5, -0.5, 0.0]])
        db = expression_database(values, orientation="genes-as-transactions")
        assert sum(db.transaction_sizes()) == 2

"""Tests for table-based Carpenter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carpenter.list_based import mine_carpenter_lists
from repro.carpenter.table_based import mine_carpenter_table
from repro.closure.verify import check_closed_family, closed_frequent_bruteforce
from repro.data.database import TransactionDatabase
from repro.stats import OperationCounters

from ..conftest import db_from_strings

small_databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 7) - 1), min_size=1, max_size=10
).map(lambda masks: TransactionDatabase(masks, 7))


class TestCorrectness:
    @settings(deadline=None, max_examples=50)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_against_oracle(self, db, smin):
        assert mine_carpenter_table(db, smin) == closed_frequent_bruteforce(db, smin)

    @settings(deadline=None, max_examples=30)
    @given(small_databases, st.integers(min_value=1, max_value=4))
    def test_agrees_with_list_variant(self, db, smin):
        """The two Carpenter variants differ only in data structure."""
        assert mine_carpenter_table(db, smin) == mine_carpenter_lists(db, smin)

    @settings(deadline=None, max_examples=25)
    @given(small_databases, st.integers(min_value=1, max_value=4))
    def test_optimisations_are_transparent(self, db, smin):
        expected = dict(mine_carpenter_table(db, smin))
        for eliminate in (True, False):
            for perfect in (True, False):
                got = dict(
                    mine_carpenter_table(
                        db,
                        smin,
                        repository_kind="hash",
                        eliminate_items=eliminate,
                        perfect_extension=perfect,
                    )
                )
                assert got == expected


class TestBehaviour:
    def test_table1_example_at_every_support(self, table1_db):
        for smin in range(1, 9):
            result = mine_carpenter_table(table1_db, smin)
            check_closed_family(table1_db, result, smin)

    def test_table1_closed_sets_at_smin_5(self, table1_db):
        """Hand-checkable closed sets of Table 1's database at smin=5.

        Supports: a=4, b=5, c=5, d=6, e=3; bc occurs in t1,t3,t4,t5 (4).
        The only sets with support >= 5 are {b}, {c}, {d}, and all three
        are closed (no superset has equal support).
        """
        result = mine_carpenter_table(table1_db, 5).as_frozensets()
        assert result == {
            frozenset("b"): 5,
            frozenset("c"): 5,
            frozenset("d"): 6,
        }

    def test_empty_database(self):
        assert len(mine_carpenter_table(TransactionDatabase([], 0), 1)) == 0

    def test_counters_populated(self):
        db = db_from_strings(["abc", "abd", "acd"])
        counters = OperationCounters()
        mine_carpenter_table(db, 2, counters=counters)
        assert counters.recursion_calls > 0

"""Tests for Cobbler (row/column enumeration switching)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carpenter.cobbler import mine_cobbler
from repro.closure.verify import closed_frequent_bruteforce
from repro.data.database import TransactionDatabase
from repro.stats import OperationCounters

from ..conftest import db_from_strings

small_databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 7) - 1), min_size=1, max_size=10
).map(lambda masks: TransactionDatabase(masks, 7))


class TestCorrectness:
    @settings(deadline=None, max_examples=50)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_against_oracle(self, db, smin):
        assert mine_cobbler(db, smin) == closed_frequent_bruteforce(db, smin)

    @settings(deadline=None, max_examples=30)
    @given(small_databases, st.integers(min_value=1, max_value=4))
    def test_switch_policy_is_transparent(self, db, smin):
        """Pure rows, pure columns, and every hand-over point in between
        must produce the same family."""
        expected = dict(mine_cobbler(db, smin, switch_ratio=float("inf")))
        for ratio, min_rows in ((0.0, 1), (0.5, 1), (1.0, 2), (2.0, 4)):
            got = dict(
                mine_cobbler(db, smin, switch_ratio=ratio, min_rows_to_switch=min_rows)
            )
            assert got == expected, (ratio, min_rows)

    def test_regression_seeded_case(self):
        """The root-seeding bug: the sub-root closure must not subsume its
        own generating branch (fixed; kept as a regression case)."""
        rows = [
            [1, 2, 3, 4], [0, 1, 2, 3, 6, 7], [0, 2, 3, 6], [1, 2, 4, 5, 7],
            [1, 3, 4, 5, 6, 7], [0, 1, 2, 3, 4, 5, 7], [2, 3, 7], [1, 2, 3, 4, 5, 6],
        ]
        db = TransactionDatabase.from_iterable(rows, item_order=list(range(8)))
        expected = closed_frequent_bruteforce(db, 1)
        assert mine_cobbler(db, 1, min_rows_to_switch=2) == expected


class TestBehaviour:
    def test_pure_column_mode_switches_immediately(self):
        db = db_from_strings(["abc", "abd", "acd", "bcd"])
        counters = OperationCounters()
        result = mine_cobbler(
            db, 2, switch_ratio=0.0, min_rows_to_switch=1, counters=counters
        )
        # No row recursion at all: one column phase solves everything.
        assert counters.recursion_calls > 0
        assert len(result) > 0

    def test_invalid_switch_ratio_rejected(self):
        with pytest.raises(ValueError):
            mine_cobbler(db_from_strings(["ab"]), 1, switch_ratio=-1.0)

    def test_empty_database(self):
        assert len(mine_cobbler(TransactionDatabase([], 0), 1)) == 0

    def test_smin_above_n(self):
        db = db_from_strings(["ab"])
        assert len(mine_cobbler(db, 2)) == 0

    def test_table1_example(self, table1_db):
        for smin in (1, 3, 5):
            expected = closed_frequent_bruteforce(table1_db, smin)
            assert mine_cobbler(table1_db, smin) == expected

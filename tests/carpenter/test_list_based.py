"""Tests for list-based Carpenter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carpenter.list_based import mine_carpenter_lists
from repro.closure.verify import check_closed_family, closed_frequent_bruteforce
from repro.data.database import TransactionDatabase
from repro.stats import OperationCounters

from ..conftest import db_from_strings

small_databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 7) - 1), min_size=1, max_size=10
).map(lambda masks: TransactionDatabase(masks, 7))


class TestCorrectness:
    @settings(deadline=None, max_examples=50)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_against_oracle(self, db, smin):
        assert mine_carpenter_lists(db, smin) == closed_frequent_bruteforce(db, smin)

    @settings(deadline=None, max_examples=30)
    @given(small_databases, st.integers(min_value=1, max_value=4))
    def test_optimisations_are_transparent(self, db, smin):
        expected = dict(mine_carpenter_lists(db, smin))
        for repository_kind in ("hash", "prefix-tree"):
            for eliminate in (True, False):
                for perfect in (True, False):
                    got = dict(
                        mine_carpenter_lists(
                            db,
                            smin,
                            repository_kind=repository_kind,
                            eliminate_items=eliminate,
                            perfect_extension=perfect,
                        )
                    )
                    assert got == expected


class TestBehaviour:
    def test_table1_example(self, table1_db):
        for smin in (1, 2, 3, 4):
            result = mine_carpenter_lists(table1_db, smin)
            check_closed_family(table1_db, result, smin)

    def test_empty_database(self):
        assert len(mine_carpenter_lists(TransactionDatabase([], 0), 1)) == 0

    def test_smin_above_n_gives_empty(self):
        db = db_from_strings(["ab", "ab"])
        assert len(mine_carpenter_lists(db, 5)) == 0

    def test_duplicate_transactions(self):
        db = db_from_strings(["abc", "abc", "abc"])
        assert mine_carpenter_lists(db, 2).as_frozensets() == {frozenset("abc"): 3}

    def test_counters_populated(self):
        db = db_from_strings(["abc", "abd", "acd"])
        counters = OperationCounters()
        mine_carpenter_lists(db, 2, counters=counters)
        assert counters.recursion_calls > 0
        assert counters.intersections > 0

    def test_elimination_counts_items(self):
        # item z appears once; at smin 2 it must be eliminated somewhere
        db = db_from_strings(["abz", "ab", "ab"])
        counters = OperationCounters()
        result = mine_carpenter_lists(db, 2, counters=counters)
        assert result.as_frozensets() == {frozenset("ab"): 3}

"""Tests for the Carpenter repository backends."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.carpenter.repository import (
    HashRepository,
    PrefixTreeRepository,
    make_repository,
)

masks = st.integers(min_value=1, max_value=(1 << 12) - 1)


class TestBackendsAgree:
    @given(st.lists(masks, max_size=40), st.lists(masks, max_size=20))
    def test_membership_identical(self, stored, queries):
        hash_repo = HashRepository()
        tree_repo = PrefixTreeRepository(12)
        for mask in stored:
            hash_repo.add(mask)
            tree_repo.add(mask)
        assert len(hash_repo) == len(tree_repo)
        for query in queries + stored:
            assert (query in hash_repo) == (query in tree_repo)


class TestPrefixTreeRepository:
    def test_empty_contains_nothing(self):
        repo = PrefixTreeRepository(8)
        assert 0b1 not in repo
        assert len(repo) == 0

    def test_prefix_is_not_member(self):
        """Storing {a,b,c} must not make its path prefixes members."""
        repo = PrefixTreeRepository(8)
        repo.add(0b111)
        assert 0b111 in repo
        assert 0b100 not in repo  # path prefix (descending order: 2, 1, 0)
        assert 0b110 not in repo
        assert 0b011 not in repo  # subset but not a path prefix

    def test_duplicate_add_idempotent(self):
        repo = PrefixTreeRepository(4)
        repo.add(0b101)
        repo.add(0b101)
        assert len(repo) == 1

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            PrefixTreeRepository(4).add(0)

    def test_empty_query_is_false(self):
        repo = PrefixTreeRepository(4)
        repo.add(0b1)
        assert 0 not in repo

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PrefixTreeRepository(-1)


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_repository("hash", 4), HashRepository)
        assert isinstance(make_repository("prefix-tree", 4), PrefixTreeRepository)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown repository kind"):
            make_repository("btree", 4)

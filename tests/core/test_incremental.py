"""Tests for the online/incremental miner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.verify import closed_frequent_bruteforce
from repro.core.incremental import IncrementalMiner
from repro.data.database import TransactionDatabase


class TestOnlineSemantics:
    def test_docstring_example(self):
        miner = IncrementalMiner()
        miner.add(["a", "b"])
        miner.add(["a", "b", "c"])
        miner.add(["b", "c"])
        assert miner.closed_sets(smin=2) == {
            ("a", "b"): 2,
            ("b",): 3,
            ("b", "c"): 2,
        }

    def test_answers_valid_after_every_step(self):
        rows = [["a", "b"], ["b", "c"], ["a", "b", "c"], ["c"], ["a", "b"]]
        miner = IncrementalMiner()
        for k in range(1, len(rows) + 1):
            miner = IncrementalMiner()
            miner.extend(rows[:k])
            db = TransactionDatabase.from_iterable(rows[:k])
            expected = {
                tuple(sorted(labels)): supp
                for labels, supp in closed_frequent_bruteforce(db, 1)
                .as_frozensets()
                .items()
            }
            got = {tuple(sorted(k2)): v for k2, v in miner.closed_sets(1).items()}
            assert got == expected, k

    def test_single_miner_reused_across_steps(self):
        """The same miner instance must stay consistent as it grows."""
        rows = [["x"], ["x", "y"], ["y", "z"], ["x", "z"]]
        miner = IncrementalMiner()
        for index, row in enumerate(rows):
            miner.add(row)
            db = TransactionDatabase.from_iterable(rows[: index + 1])
            expected = closed_frequent_bruteforce(db, 1).as_frozensets()
            got = {frozenset(k): v for k, v in miner.closed_sets(1).items()}
            assert got == expected

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=6),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=1, max_value=4),
    )
    def test_random_streams(self, rows, smin):
        miner = IncrementalMiner()
        miner.extend(rows)
        db = TransactionDatabase.from_iterable(rows, item_order=list(range(7)))
        expected = {
            tuple(sorted(labels)): supp
            for labels, supp in closed_frequent_bruteforce(db, smin)
            .as_frozensets()
            .items()
        }
        assert miner.closed_sets(smin) == expected


class TestQueries:
    @pytest.fixture
    def miner(self):
        miner = IncrementalMiner()
        miner.extend([["a", "b"], ["a", "b", "c"], ["a"]])
        return miner

    def test_counts(self, miner):
        assert miner.n_transactions == 3
        assert miner.n_items == 3
        assert miner.repository_size > 0

    def test_support_of(self, miner):
        assert miner.support_of(["a"]) == 3
        assert miner.support_of(["a", "b"]) == 2
        assert miner.support_of(["a", "b", "c"]) == 1

    def test_support_of_unseen_item(self, miner):
        assert miner.support_of(["zzz"]) == 0

    def test_support_of_unseen_item_skips_tree(self, miner):
        """The unknown-label short-circuit must answer before any descent."""
        before = miner._tree.counters.node_visits
        assert miner.support_of(["a", "zzz", "b"]) == 0
        assert miner._tree.counters.node_visits == before

    def test_support_of_empty_set_is_transaction_count(self, miner):
        assert miner.support_of([]) == 3
        miner.add([])
        assert miner.support_of([]) == 4

    def test_support_of_infrequent_combination(self):
        miner = IncrementalMiner()
        miner.extend([["a"], ["b"]])
        assert miner.support_of(["a", "b"]) == 0

    @settings(deadline=None, max_examples=40)
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=6),
            min_size=1,
            max_size=8,
        ),
        st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=5),
    )
    def test_support_of_matches_bruteforce(self, rows, query):
        miner = IncrementalMiner()
        miner.extend(rows)
        qset = set(query)
        expected = sum(1 for row in rows if qset <= set(row))
        assert miner.support_of(query) == expected

    def test_invalid_smin(self, miner):
        with pytest.raises(ValueError):
            miner.closed_sets(0)

    def test_empty_transaction_counted_but_silent(self):
        miner = IncrementalMiner()
        miner.add([])
        miner.add(["a"])
        assert miner.n_transactions == 2
        assert miner.closed_sets(1) == {("a",): 1}

"""Tests for the IsTa miner (orders, pruning, option space)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.verify import check_closed_family, closed_frequent_bruteforce
from repro.core.ista import mine_ista
from repro.data.database import TransactionDatabase
from repro.stats import OperationCounters

from ..conftest import db_from_strings, make_random_db

small_databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 7) - 1), min_size=1, max_size=10
).map(lambda masks: TransactionDatabase(masks, 7))


class TestBasics:
    def test_figure3_example(self, figure3_db):
        result = mine_ista(figure3_db, 2).as_frozensets()
        assert result == {
            frozenset("e"): 2,
            frozenset("db"): 2,
            frozenset("ca"): 2,
        }

    def test_table1_example(self, table1_db):
        result = mine_ista(table1_db, 3)
        check_closed_family(table1_db, result, 3)

    def test_empty_database(self):
        db = TransactionDatabase([], 0)
        assert len(mine_ista(db, 1)) == 0

    def test_all_empty_transactions(self):
        db = TransactionDatabase([0, 0, 0], 4)
        assert len(mine_ista(db, 1)) == 0

    def test_smin_above_transaction_count(self):
        db = db_from_strings(["ab", "ab"])
        assert len(mine_ista(db, 3)) == 0

    def test_invalid_smin_rejected(self):
        db = db_from_strings(["ab"])
        with pytest.raises(ValueError):
            mine_ista(db, 0)

    def test_invalid_prune_interval_rejected(self):
        db = db_from_strings(["ab"])
        with pytest.raises(ValueError):
            mine_ista(db, 1, prune_interval=0)

    def test_single_transaction(self):
        db = db_from_strings(["abc"])
        assert mine_ista(db, 1).as_frozensets() == {frozenset("abc"): 1}

    def test_result_metadata(self):
        db = db_from_strings(["ab"])
        result = mine_ista(db, 1)
        assert result.algorithm == "ista"
        assert result.smin == 1


class TestOptionSpace:
    """All orders and pruning settings must give identical results."""

    @settings(deadline=None, max_examples=40)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_pruning_is_transparent(self, db, smin):
        expected = dict(mine_ista(db, smin, prune=False))
        for interval in (1, 2, 7):
            assert dict(mine_ista(db, smin, prune_interval=interval)) == expected

    @settings(deadline=None, max_examples=30)
    @given(small_databases, st.integers(min_value=1, max_value=4))
    def test_orders_are_transparent(self, db, smin):
        expected = dict(mine_ista(db, smin))
        for item_order in ("frequency-descending", "identity", "random"):
            for transaction_order in ("size-descending", "identity", "random"):
                got = dict(
                    mine_ista(
                        db,
                        smin,
                        item_order=item_order,
                        transaction_order=transaction_order,
                    )
                )
                assert got == expected

    @settings(deadline=None, max_examples=40)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_against_oracle(self, db, smin):
        expected = closed_frequent_bruteforce(db, smin)
        assert mine_ista(db, smin) == expected


class TestPruningEffect:
    def test_pruning_reduces_tree_size(self):
        """On a database with many low-support sets the splice pruning
        must shrink the peak repository (the Section 3.2 claim)."""
        db = make_random_db(99, max_transactions=40, max_items=12, density=0.4)
        smin = 12
        pruned = OperationCounters()
        unpruned = OperationCounters()
        a = mine_ista(db, smin, prune=True, prune_interval=1, counters=pruned)
        b = mine_ista(db, smin, prune=False, counters=unpruned)
        assert a == b
        assert pruned.repository_peak < unpruned.repository_peak
        assert pruned.items_eliminated > 0

    def test_counters_populated(self):
        db = db_from_strings(["abc", "abd", "acd", "bcd"])
        counters = OperationCounters()
        mine_ista(db, 2, counters=counters)
        assert counters.nodes_created > 0
        assert counters.node_visits > 0
        assert counters.reports > 0


class TestBatchedFlag:
    """``batched=`` must be output-invisible end to end (with pruning)."""

    @settings(deadline=None, max_examples=30)
    @given(db=small_databases, smin=st.integers(1, 4))
    def test_batched_flag_is_output_invisible(self, db, smin):
        batched = mine_ista(db, smin, batched=True).as_frozensets()
        recursive = mine_ista(db, smin, batched=False).as_frozensets()
        assert batched == recursive

    @pytest.mark.parametrize("backend", [None, "bitint", "numpy", "native"])
    def test_backends_agree_under_both_descents(self, table1_db, backend):
        reference = mine_ista(table1_db, 2, batched=False).as_frozensets()
        got = mine_ista(table1_db, 2, batched=True, backend=backend)
        assert got.as_frozensets() == reference

"""Tests for the IsTa prefix tree — including a replay of Figure 3."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import itemset
from repro.core.prefix_tree import PrefixTree

from ..conftest import backend_kernel_params

# Item codes for the Figure 3 example: a=0, b=1, c=2, d=3, e=4.
A, B, C, D, E = (1 << i for i in range(5))


def add_all(tree, masks):
    for mask in masks:
        tree.add_transaction(mask)


class TestFigure3:
    """Replays the worked example of Figure 3 state by state."""

    def test_step_1_first_transaction(self):
        tree = PrefixTree()
        tree.add_transaction(E | C | A)
        # "1:" — a single path e(1) -> c(1) -> a(1).
        assert tree.as_nested_dict() == {4: (1, {2: (1, {0: (1, {})})})}

    def test_step_2_overlap_on_e(self):
        tree = PrefixTree()
        add_all(tree, [E | C | A, E | D | B])
        # "2:" — e's support rises to 2; d(1)->b(1) appears next to c(1)->a(1).
        assert tree.as_nested_dict() == {
            4: (2, {2: (1, {0: (1, {})}), 3: (1, {1: (1, {})})})
        }

    def test_step_3_1_path_inserted_with_support_zero(self):
        tree = PrefixTree()
        add_all(tree, [E | C | A, E | D | B])
        tree._step += 1
        tree._insert_path(D | C | B | A)
        # "3.1:" — the new path d->c->b->a exists with support 0 everywhere.
        nested = tree.as_nested_dict()
        assert nested[3] == (0, {2: (0, {1: (0, {0: (0, {})})})})

    def test_step_3_final_tree(self):
        tree = PrefixTree()
        add_all(tree, [E | C | A, E | D | B, D | C | B | A])
        # "3.3:" — intersections {d,b} and {c,a} present with support 2.
        assert tree.as_nested_dict() == {
            4: (2, {2: (1, {0: (1, {})}), 3: (1, {1: (1, {})})}),
            3: (2, {2: (1, {1: (1, {0: (1, {})})}), 1: (2, {})}),
            2: (2, {0: (2, {})}),
        }

    def test_report_smin_1(self):
        tree = PrefixTree()
        add_all(tree, [E | C | A, E | D | B, D | C | B | A])
        reported = dict(tree.report(1))
        assert reported == {
            E: 2,
            E | C | A: 1,
            E | D | B: 1,
            D | C | B | A: 1,
            D | B: 2,
            C | A: 2,
        }

    def test_report_smin_2(self):
        tree = PrefixTree()
        add_all(tree, [E | C | A, E | D | B, D | C | B | A])
        assert dict(tree.report(2)) == {E: 2, D | B: 2, C | A: 2}


class TestBasicBehaviour:
    def test_empty_tree_reports_nothing(self):
        assert list(PrefixTree().report(1)) == []

    def test_empty_transaction_is_ignored(self):
        tree = PrefixTree()
        tree.add_transaction(0)
        assert tree.n_nodes == 0
        assert tree.step == 1

    def test_duplicate_transaction_counts_twice(self):
        tree = PrefixTree()
        add_all(tree, [A | B, A | B])
        assert dict(tree.report(1)) == {A | B: 2}

    def test_subset_transaction_updates_superset_path(self):
        tree = PrefixTree()
        add_all(tree, [A | B | C, A | B])
        assert dict(tree.report(1)) == {A | B | C: 1, A | B: 2}

    def test_report_rejects_bad_smin(self):
        with pytest.raises(ValueError):
            list(PrefixTree().report(0))

    def test_find_returns_nodes_on_paths(self):
        tree = PrefixTree()
        tree.add_transaction(A | C)
        assert tree.find(A | C).supp == 1
        assert tree.find(C).supp == 1  # prefix node
        assert tree.find(A) is None  # not a rooted path
        assert tree.find(B) is None

    def test_node_count_tracks_insertions(self):
        tree = PrefixTree()
        tree.add_transaction(A | B)
        assert tree.n_nodes == 2
        tree.add_transaction(C)
        assert tree.n_nodes == 3

    def test_depth(self):
        tree = PrefixTree()
        assert tree.depth() == 0
        tree.add_transaction(A | B | C | D)
        assert tree.depth() == 4

    def test_deep_transaction_no_recursion_error(self):
        """Gene-expression transactions can hold thousands of items; the
        explicit-stack implementation must not hit the recursion limit."""
        tree = PrefixTree()
        wide = (1 << 3000) - 1
        tree.add_transaction(wide)
        tree.add_transaction(wide >> 1)
        reported = dict(tree.report(1))
        assert reported[wide] == 1
        assert reported[wide >> 1] == 2


class TestSupersetSupport:
    """The guided descent must agree with a scan over the full family."""

    @staticmethod
    def brute(tree, mask, strict=False):
        best = 0
        for stored, supp in tree.report(1):
            if mask & ~stored:
                continue
            if strict and stored == mask:
                continue
            if supp > best:
                best = supp
        return best

    def test_figure3_queries(self):
        tree = PrefixTree()
        add_all(tree, [E | C | A, E | D | B, D | C | B | A])
        assert tree.superset_support(E) == 2
        assert tree.superset_support(C | A) == 2
        assert tree.superset_support(A) == 2
        assert tree.superset_support(E | A) == 1
        assert tree.superset_support(E | D | C) == 0

    def test_strict_excludes_exact_match(self):
        tree = PrefixTree()
        add_all(tree, [E | C | A, E | D | B, D | C | B | A])
        # {c,a} is stored with support 2; its only proper superset paths
        # are the two size->=3 transactions with support 1.
        assert tree.superset_support(C | A, strict=True) == 1
        # {e} is stored; proper supersets are the two e-transactions.
        assert tree.superset_support(E, strict=True) == 1
        # {e,c,a} is a leaf: no proper superset exists.
        assert tree.superset_support(E | C | A, strict=True) == 0

    def test_empty_mask_is_overall_maximum(self):
        tree = PrefixTree()
        add_all(tree, [A | B, A | B | C, B | C])
        assert tree.superset_support(0) == 3
        assert tree.superset_support(0, strict=True) == 3
        assert PrefixTree().superset_support(0) == 0

    def test_item_outside_universe(self):
        tree = PrefixTree()
        add_all(tree, [A | B])
        assert tree.superset_support(1 << 20) == 0

    @settings(deadline=None, max_examples=80)
    @given(
        st.lists(
            st.integers(min_value=1, max_value=(1 << 7) - 1), min_size=1, max_size=10
        ),
        st.integers(min_value=1, max_value=(1 << 7) - 1),
    )
    def test_matches_full_scan(self, masks, query):
        tree = PrefixTree()
        add_all(tree, masks)
        assert tree.superset_support(query) == self.brute(tree, query)
        assert tree.superset_support(query, strict=True) == self.brute(
            tree, query, strict=True
        )


class TestAgainstOracle:
    @settings(deadline=None, max_examples=60)
    @given(
        st.lists(
            st.integers(min_value=1, max_value=(1 << 7) - 1), min_size=1, max_size=9
        )
    )
    def test_tree_matches_definition_of_closed_sets(self, masks):
        """Every tree report equals the brute-force closed family."""
        from repro.closure.verify import closed_frequent_bruteforce
        from repro.data.database import TransactionDatabase

        db = TransactionDatabase(list(masks), 7)
        tree = PrefixTree()
        add_all(tree, masks)
        for smin in (1, 2, len(masks)):
            expected = dict(closed_frequent_bruteforce(db, smin))
            assert dict(tree.report(smin)) == expected


class TestBatchedDescent:
    """Level-batched bounded descent vs the node-at-a-time recursion.

    The batched default must be *output-invisible*: identical trees
    (preorder byte-for-byte), identical reports, identical node
    creation — under every kernel backend.  The operation counters may
    legitimately differ in one direction only: the recursion also
    visits nodes created earlier in the same transaction's merge (all
    provably exact no-ops), so the batched ``intersections`` /
    ``support_updates`` never exceed the recursive ones.
    """

    masks_lists = st.lists(
        st.integers(min_value=1, max_value=(1 << 12) - 1),
        min_size=1,
        max_size=30,
    )

    @staticmethod
    def build_pair(masks, kernel=None):
        from repro.stats import OperationCounters

        batched_counters = OperationCounters()
        recursive_counters = OperationCounters()
        batched = PrefixTree(batched_counters, kernel=kernel, batched=True)
        recursive = PrefixTree(recursive_counters, batched=False)
        add_all(batched, masks)
        add_all(recursive, masks)
        return batched, recursive, batched_counters, recursive_counters

    @pytest.mark.parametrize("kernel", backend_kernel_params())
    @settings(deadline=None, max_examples=40)
    @given(masks=masks_lists)
    def test_trees_byte_identical(self, kernel, masks):
        batched, recursive, _, _ = self.build_pair(masks, kernel)
        assert list(batched.preorder()) == list(recursive.preorder())

    @pytest.mark.parametrize("kernel", backend_kernel_params())
    @settings(deadline=None, max_examples=40)
    @given(masks=masks_lists)
    def test_reports_identical(self, kernel, masks):
        batched, recursive, _, _ = self.build_pair(masks, kernel)
        for smin in (1, 2, max(1, len(masks) // 2)):
            assert dict(batched.report(smin)) == dict(recursive.report(smin))

    @settings(deadline=None, max_examples=40)
    @given(masks=masks_lists)
    def test_counter_relationship(self, masks):
        _, _, batched, recursive = self.build_pair(masks)
        assert batched.nodes_created == recursive.nodes_created
        assert batched.intersections <= recursive.intersections
        assert batched.support_updates <= recursive.support_updates

    @settings(deadline=None, max_examples=40)
    @given(masks=masks_lists)
    def test_below_summaries_cover_subtrees(self, masks):
        """Every node's ``below`` is a superset of its subtree's items.

        The one-sided invariant the sentinel skip relies on: an
        under-approximating summary could skip a subtree that matters,
        an over-approximating one only costs a missed skip.
        """
        tree = PrefixTree(batched=True)
        add_all(tree, masks)

        def subtree_mask(node):
            mask = 1 << node.item
            for child in node.children.values():
                mask |= subtree_mask(child)
            return mask

        stack = list(tree._root.children.values())
        while stack:
            node = stack.pop()
            actual = subtree_mask(node)
            assert actual & ~node.below == 0
            stack.extend(node.children.values())

    def test_batched_is_the_default(self):
        assert PrefixTree()._batched is True

    def test_sentinel_skips_surface_as_early_aborts(self):
        """mine_ista + probe: the bounded frontier test lands sentinels."""
        from repro.core.ista import mine_ista
        from repro.data.database import TransactionDatabase
        from repro.obs import Probe

        # Two item clusters that never co-occur: after the first
        # cluster populates the repository, every transaction from the
        # second meets fully-disjoint subtrees, which the bounded
        # kernel settles as sentinels.
        rows = []
        for _ in range(4):
            rows += [[0, 1, 2, 3, 4], [0, 1, 2, 3], [1, 2, 3, 4]]
            rows += [[8, 9, 10, 11, 12], [8, 9, 10, 11], [9, 10, 11, 12]]
        db = TransactionDatabase.from_iterable(rows, item_order=list(range(13)))
        probe = Probe()
        mine_ista(db, 2, probe=probe)
        metrics = probe.metrics.snapshot()
        assert metrics["counters"]["ops.kernel.early_aborts"] > 0

"""Tests for the flat cumulative miner (the [14] baseline)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.verify import closed_frequent_bruteforce
from repro.core.cumulative import mine_cumulative
from repro.core.ista import mine_ista
from repro.data.database import TransactionDatabase
from repro.stats import OperationCounters

from ..conftest import db_from_strings

small_databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 7) - 1), min_size=1, max_size=10
).map(lambda masks: TransactionDatabase(masks, 7))


class TestCorrectness:
    @settings(deadline=None, max_examples=50)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_against_oracle(self, db, smin):
        assert mine_cumulative(db, smin) == closed_frequent_bruteforce(db, smin)

    @settings(deadline=None, max_examples=40)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_pruned_variant_agrees(self, db, smin):
        plain = dict(mine_cumulative(db, smin))
        for interval in (1, 3):
            pruned = dict(mine_cumulative(db, smin, prune=True, prune_interval=interval))
            assert pruned == plain

    @settings(deadline=None, max_examples=30)
    @given(small_databases, st.integers(min_value=1, max_value=5))
    def test_agrees_with_ista(self, db, smin):
        """Flat repository and prefix tree are two views of one recursion."""
        assert mine_cumulative(db, smin) == mine_ista(db, smin)


class TestBehaviour:
    def test_figure3_example(self, figure3_db):
        result = mine_cumulative(figure3_db, 1).as_frozensets()
        assert result[frozenset("e")] == 2
        assert result[frozenset("db")] == 2
        assert len(result) == 6

    def test_empty_database(self):
        assert len(mine_cumulative(TransactionDatabase([], 0), 1)) == 0

    def test_invalid_prune_interval(self):
        db = db_from_strings(["ab"])
        with pytest.raises(ValueError):
            mine_cumulative(db, 1, prune=True, prune_interval=0)

    def test_repository_peak_tracked(self):
        db = db_from_strings(["abc", "abd", "cd"])
        counters = OperationCounters()
        mine_cumulative(db, 1, counters=counters)
        assert counters.repository_peak >= 3
        assert counters.intersections > 0

    def test_pruning_shrinks_repository(self):
        rows = ["abcdef", "abcdeg", "fgh", "gh", "h", "h", "h", "h"]
        db = db_from_strings(rows)
        smin = 4
        plain = OperationCounters()
        pruned = OperationCounters()
        a = mine_cumulative(db, smin, counters=plain)
        b = mine_cumulative(db, smin, prune=True, prune_interval=1, counters=pruned)
        assert a == b
        assert pruned.repository_peak <= plain.repository_peak

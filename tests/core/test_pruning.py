"""White-box tests of the IsTa repository pruning (splice-and-merge)."""

from repro.core.ista import _merge_nodes, _prune_tree
from repro.core.prefix_tree import PrefixTree, PrefixTreeNode

A, B, C, D = (1 << i for i in range(4))


def build_tree(*masks):
    tree = PrefixTree()
    for mask in masks:
        tree.add_transaction(mask)
    return tree


class TestSplice:
    def test_deficient_leaf_removed(self):
        tree = build_tree(C | A, C | B)
        # node {c,a} has supp 1; with no remaining occurrences of a and
        # smin 2 it can never become frequent.
        remaining = [0, 5, 5, 5]
        _prune_tree(tree, remaining, smin=2)
        assert tree.find(C | A) is None
        assert tree.find(C) is not None

    def test_children_spliced_into_parent(self):
        # path c -> b -> a; b deficient: {c,b,a} should collapse to {c,a}
        tree = build_tree(C | B | A)
        remaining = [5, 0, 5, 5]
        _prune_tree(tree, remaining, smin=2)
        assert tree.find(C | B) is None
        node = tree.find(C | A)
        assert node is not None

    def test_merge_keeps_support_maximum(self):
        tree = build_tree(C | B | A, C | A, C | A)
        # {c,a} exists with supp 3; {c,b,a} with supp 1.  Removing b
        # merges the a-under-b node into the a-under-c node: max wins.
        before = tree.find(C | A).supp
        remaining = [9, 0, 9, 9]
        _prune_tree(tree, remaining, smin=3)
        node = tree.find(C | A)
        assert node is not None
        assert node.supp == before == 3

    def test_healthy_nodes_untouched(self):
        tree = build_tree(C | A, C | A)
        nodes_before = tree.n_nodes
        _prune_tree(tree, [9, 9, 9, 9], smin=2)
        assert tree.n_nodes == nodes_before

    def test_node_count_consistent_after_splice(self):
        tree = build_tree(D | C | B | A, D | B)
        remaining = [0, 0, 0, 0]
        _prune_tree(tree, remaining, smin=100)
        # everything is deficient: the tree must be empty
        assert tree.n_nodes == 0
        assert list(tree.report(1)) == []

    def test_spliced_in_grandchild_can_be_deficient_too(self):
        """The fixpoint loop must re-examine spliced-in children."""
        tree = build_tree(C | B | A)
        # both b and a deficient: after splicing b, the spliced-in a
        # node must go as well.
        remaining = [0, 0, 9, 9]
        _prune_tree(tree, remaining, smin=2)
        assert tree.find(C) is not None
        assert tree.find(C | A) is None
        assert tree.find(C | B) is None


class TestMergeNodes:
    def test_iterative_merge_of_deep_subtrees(self):
        """Merging must not recurse (deep paths would overflow)."""
        tree = PrefixTree()
        depth = 5000

        def chain(supp):
            head = PrefixTreeNode(depth + 1, supp)
            node = head
            for item in range(depth, 0, -1):
                child = PrefixTreeNode(item, supp)
                node.children[item] = child
                node = child
            return head

        left = chain(supp=1)
        right = chain(supp=2)
        tree._n_nodes = 2 * (depth + 1)
        _merge_nodes(left, right, tree)
        assert left.supp == 2
        node = left
        while node.children:
            node = next(iter(node.children.values()))
            assert node.supp == 2
        assert tree._n_nodes == depth + 1

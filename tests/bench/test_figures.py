"""Tests for the figure specifications."""

import pytest

from repro.bench.figures import FIGURES, run_figure


class TestSpecs:
    def test_all_paper_figures_present(self):
        names = set(FIGURES)
        assert {"fig5-yeast", "fig6-ncbi60", "fig7-thrombin", "fig8-webview"} <= names

    def test_specs_are_complete(self):
        for spec in FIGURES.values():
            assert spec.paper_exhibit
            assert spec.expected_shape
            assert len(spec.smin_values) >= 3
            assert len(spec.algorithms) >= 2

    def test_build_database_scales(self):
        spec = FIGURES["fig6-ncbi60"]
        small = spec.build_database(scale=0.1)
        full = spec.build_database(scale=1.0)
        assert small.n_transactions < full.n_transactions

    def test_scaled_smin_tracks_transaction_scaling(self):
        spec = FIGURES["fig6-ncbi60"]
        scaled = spec.scaled_smin(0.5)
        assert max(scaled) <= max(spec.smin_values) * 0.5 + 1


class TestRunFigure:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown figure"):
            run_figure("fig99")

    def test_tiny_scaled_run(self):
        """A heavily scaled-down fig6 completes end to end."""
        sweep = run_figure("fig6-ncbi60", scale=0.15, time_limit=20.0)
        assert sweep.dataset == "fig6-ncbi60"
        assert len(sweep.cells) == len(sweep.smin_values) * len(sweep.algorithms)

    def test_algorithm_override(self):
        sweep = run_figure(
            "fig6-ncbi60", scale=0.15, algorithms=("ista",), time_limit=20.0
        )
        assert sweep.algorithms == ["ista"]

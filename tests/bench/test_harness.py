"""Tests for the benchmark harness."""

import math

import pytest

from repro.bench.harness import Measurement, SweepResult, run_sweep

from ..conftest import db_from_strings


@pytest.fixture
def db():
    return db_from_strings(["abc", "abd", "acd", "bcd", "ab", "cd"])


class TestRunSweep:
    def test_basic_sweep(self, db):
        sweep = run_sweep(db, [1, 2, 3], ["ista", "lcm"], dataset="toy")
        assert sweep.smin_values == [3, 2, 1]
        for algorithm in ("ista", "lcm"):
            for smin in (1, 2, 3):
                cell = sweep.get(algorithm, smin)
                assert cell is not None
                assert cell.seconds >= 0.0
                assert cell.n_closed > 0

    def test_results_consistent_across_algorithms(self, db):
        sweep = run_sweep(db, [2], ["ista", "carpenter-table", "fpgrowth"])
        counts = {alg: sweep.get(alg, 2).n_closed for alg in sweep.algorithms}
        assert len(set(counts.values())) == 1

    def test_verify_mode(self, db):
        run_sweep(db, [1, 2], ["ista"], verify=True)

    def test_time_limit_skips_lower_supports(self, db):
        sweep = run_sweep(db, [3, 1], ["ista"], time_limit=0.0)
        assert not sweep.get("ista", 3).skipped  # first cell always runs
        assert sweep.get("ista", 1).skipped

    def test_algorithm_options_forwarded(self, db):
        sweep = run_sweep(
            db, [2], ["ista"], algorithm_options={"ista": {"prune": False}}
        )
        assert sweep.get("ista", 2).n_closed > 0

    def test_invalid_repeats_rejected(self, db):
        with pytest.raises(ValueError):
            run_sweep(db, [1], ["ista"], repeats=0)


class TestSweepResultViews:
    @pytest.fixture
    def sweep(self, db):
        return run_sweep(db, [1, 2], ["ista", "lcm"], dataset="toy")

    def test_series(self, sweep):
        series = sweep.series("ista")
        assert len(series) == 2
        assert all(value is not None for value in series)

    def test_winner_returns_an_algorithm(self, sweep):
        assert sweep.winner(1) in ("ista", "lcm")

    def test_crossover(self, sweep):
        # with both finishing everywhere, crossover is defined whenever
        # one of them is faster at some support
        result = sweep.crossover("ista", "lcm")
        assert result is None or result in (1, 2)

    def test_format_table_variants(self, sweep):
        for value in ("seconds", "log", "closed", "intersections"):
            table = sweep.format_table(value)
            assert "smin" in table
            assert "ista" in table

    def test_format_table_marks_skipped(self, db):
        sweep = run_sweep(db, [3, 1], ["ista"], time_limit=0.0)
        assert "--" in sweep.format_table()


class TestMeasurement:
    def test_log_seconds(self):
        cell = Measurement("x", 1, 10.0, 5, {})
        assert cell.log_seconds == pytest.approx(1.0)

    def test_log_of_zero_is_minus_inf(self):
        cell = Measurement("x", 1, 0.0, 5, {})
        assert cell.log_seconds == -math.inf

"""Tests for the benchmark harness."""

import math
import os
import time

import pytest

import repro.bench.harness as harness
from repro.bench.harness import (
    CELL_STATUSES,
    Measurement,
    SweepResult,
    _measure_cell,
    compare_kernel_baselines,
    run_kernel_microbench,
    run_sweep,
)
from repro.runtime import MiningInterrupted

from ..conftest import db_from_strings


@pytest.fixture
def db():
    return db_from_strings(["abc", "abd", "acd", "bcd", "ab", "cd"])


class TestRunSweep:
    def test_basic_sweep(self, db):
        sweep = run_sweep(db, [1, 2, 3], ["ista", "lcm"], dataset="toy")
        assert sweep.smin_values == [3, 2, 1]
        for algorithm in ("ista", "lcm"):
            for smin in (1, 2, 3):
                cell = sweep.get(algorithm, smin)
                assert cell is not None
                assert cell.seconds >= 0.0
                assert cell.n_closed > 0

    def test_results_consistent_across_algorithms(self, db):
        sweep = run_sweep(db, [2], ["ista", "carpenter-table", "fpgrowth"])
        counts = {alg: sweep.get(alg, 2).n_closed for alg in sweep.algorithms}
        assert len(set(counts.values())) == 1

    def test_verify_mode(self, db):
        run_sweep(db, [1, 2], ["ista"], verify=True)

    def test_time_limit_skips_lower_supports(self, db):
        sweep = run_sweep(db, [3, 1], ["ista"], time_limit=0.0)
        assert not sweep.get("ista", 3).skipped  # first cell always runs
        assert sweep.get("ista", 1).skipped

    def test_algorithm_options_forwarded(self, db):
        sweep = run_sweep(
            db, [2], ["ista"], algorithm_options={"ista": {"prune": False}}
        )
        assert sweep.get("ista", 2).n_closed > 0

    def test_invalid_repeats_rejected(self, db):
        with pytest.raises(ValueError):
            run_sweep(db, [1], ["ista"], repeats=0)


class TestSweepResultViews:
    @pytest.fixture
    def sweep(self, db):
        return run_sweep(db, [1, 2], ["ista", "lcm"], dataset="toy")

    def test_series(self, sweep):
        series = sweep.series("ista")
        assert len(series) == 2
        assert all(value is not None for value in series)

    def test_winner_returns_an_algorithm(self, sweep):
        assert sweep.winner(1) in ("ista", "lcm")

    def test_crossover(self, sweep):
        # with both finishing everywhere, crossover is defined whenever
        # one of them is faster at some support
        result = sweep.crossover("ista", "lcm")
        assert result is None or result in (1, 2)

    def test_format_table_variants(self, sweep):
        for value in ("seconds", "log", "closed", "intersections"):
            table = sweep.format_table(value)
            assert "smin" in table
            assert "ista" in table

    def test_format_table_marks_skipped(self, db):
        sweep = run_sweep(db, [3, 1], ["ista"], time_limit=0.0)
        assert "--" in sweep.format_table()


class TestMeasurement:
    def test_log_seconds(self):
        cell = Measurement("x", 1, 10.0, 5, {})
        assert cell.log_seconds == pytest.approx(1.0)

    def test_log_of_zero_is_minus_inf(self):
        cell = Measurement("x", 1, 0.0, 5, {})
        assert cell.log_seconds == -math.inf

    def test_default_status_is_ok(self):
        assert Measurement("x", 1, 1.0, 5, {}).status == "ok"
        assert "ok" in CELL_STATUSES


class TestCellStatuses:
    """A worker crash must be reported as crashed — never as a budget trip."""

    @pytest.fixture
    def db(self):
        return db_from_strings(["abc", "abd", "acd", "bcd", "ab", "cd"])

    def test_ok(self, db):
        status, measurement = _measure_cell(db, 2, "ista", {}, 1, 60.0, "process")
        assert status == "ok"
        assert measurement[1] > 0

    def test_crashed_worker(self, db, monkeypatch):
        # the fork inherits the monkeypatched mine and dies without a
        # report: the pipe EOF must classify the cell as crashed
        monkeypatch.setattr(harness, "mine", lambda *a, **k: os._exit(1))
        status, measurement = _measure_cell(db, 2, "ista", {}, 1, 60.0, "process")
        assert status == "crashed"
        assert measurement is None

    def test_budget_trip_in_worker(self, db, monkeypatch):
        def trip(*args, **kwargs):
            raise MiningInterrupted("budget exceeded", algorithm="ista")

        monkeypatch.setattr(harness, "mine", trip)
        status, measurement = _measure_cell(db, 2, "ista", {}, 1, 60.0, "process")
        assert status == "budget"
        assert measurement is None

    def test_timeout_hard_kill(self, db, monkeypatch):
        monkeypatch.setattr(harness, "mine", lambda *a, **k: time.sleep(60))
        status, measurement = _measure_cell(db, 2, "ista", {}, 1, 0.05, "process")
        assert status == "timeout"
        assert measurement is None

    def test_guard_isolation_budget(self, db):
        # hard_limit 0 makes the in-process guard trip at its first poll
        status, measurement = _measure_cell(db, 1, "ista", {}, 1, 0.0, "guard")
        assert status == "budget"
        assert measurement is None

    def test_run_sweep_records_status(self, db, monkeypatch):
        def trip(*args, **kwargs):
            raise MiningInterrupted("budget exceeded", algorithm="ista")

        monkeypatch.setattr(harness, "mine", trip)
        sweep = run_sweep(db, [3, 1], ["ista"], time_limit=0.001, isolation="guard")
        assert sweep.get("ista", 3).status == "budget"
        assert sweep.get("ista", 3).skipped
        assert sweep.get("ista", 1).status == "skipped"


class TestKernelMicrobench:
    def test_structure_and_parity_of_backends(self):
        report = run_kernel_microbench(n_rows=16, n_bits=96, repeats=1)
        assert set(report["backends"]) >= {"bitint", "numpy"}
        for case, timings in report["cases"].items():
            assert timings["bitint"] >= 0.0
            assert "speedup:numpy" in timings
        assert report["summary"]["geomean_speedup"] > 0

    def test_compare_passes_against_itself(self):
        report = run_kernel_microbench(n_rows=8, n_bits=64, repeats=1)
        assert compare_kernel_baselines(report, report) == []
        assert compare_kernel_baselines(report, report, mode="seconds") == []

    def test_compare_flags_speedup_regression(self):
        report = run_kernel_microbench(n_rows=8, n_bits=64, repeats=1)
        slower = {
            "cases": {
                case: {
                    key: (value * 0.1 if key.startswith("speedup:") else value)
                    for key, value in timings.items()
                }
                for case, timings in report["cases"].items()
            },
            "summary": report["summary"],
        }
        failures = compare_kernel_baselines(report, slower, tolerance=0.5)
        assert failures
        assert all("speedup" in failure for failure in failures)

    def test_compare_flags_missing_case(self):
        report = run_kernel_microbench(n_rows=8, n_bits=64, repeats=1)
        fresh = {"cases": {}, "summary": {"geomean_speedup": 1.0}}
        assert compare_kernel_baselines(report, fresh)

    def test_require_speedup(self):
        report = run_kernel_microbench(n_rows=8, n_bits=64, repeats=1)
        failures = compare_kernel_baselines(
            report, report, require_speedup=1e9
        )
        assert any("geomean" in failure for failure in failures)

    def test_compare_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            compare_kernel_baselines({}, {}, mode="wallclock")
        with pytest.raises(ValueError):
            compare_kernel_baselines({}, {}, tolerance=-1.0)


class TestCaseFloors:
    """Per-case speedup floors: CLI-passed and baseline-committed."""

    @staticmethod
    def record(**cases):
        """A minimal microbench record with the given speedup ratios."""
        return {
            "backends": ["bitint", "numpy", "native"],
            "cases": {
                case: {f"speedup:{name}": value for name, value in ratios.items()}
                for case, ratios in cases.items()
            },
            "summary": {"geomean_speedup": 1.0},
        }

    def test_bare_floor_binds_every_backend(self):
        fresh = self.record(alpha={"numpy": 2.0, "native": 1.2})
        assert not compare_kernel_baselines(
            fresh, fresh, per_case_floors={"alpha": 1.1}
        )
        failures = compare_kernel_baselines(
            fresh, fresh, per_case_floors={"alpha": 1.5}
        )
        assert len(failures) == 1
        assert "speedup:native" in failures[0]

    def test_backend_floor_binds_one_ratio(self):
        fresh = self.record(alpha={"numpy": 1.2, "native": 4.0})
        assert not compare_kernel_baselines(
            fresh, fresh, per_case_floors={"alpha@native": 3.0}
        )
        failures = compare_kernel_baselines(
            fresh, fresh, per_case_floors={"alpha@numpy": 3.0}
        )
        assert len(failures) == 1
        assert "speedup:numpy" in failures[0]

    def test_backend_floor_skipped_when_backend_absent(self):
        fresh = self.record(alpha={"numpy": 1.2})
        fresh["backends"] = ["bitint", "numpy"]
        assert not compare_kernel_baselines(
            fresh, fresh, per_case_floors={"alpha@native": 100.0}
        )

    def test_committed_floors_apply_automatically(self):
        fresh = self.record(alpha={"native": 2.0})
        baseline = self.record(alpha={"native": 2.0})
        baseline["floors"] = {"alpha@native": 3.0}
        failures = compare_kernel_baselines(baseline, fresh)
        assert len(failures) == 1
        assert "floor 3.00x" in failures[0]

    def test_cli_floor_overrides_committed(self):
        fresh = self.record(alpha={"native": 2.0})
        baseline = self.record(alpha={"native": 2.0})
        baseline["floors"] = {"alpha@native": 3.0}
        assert not compare_kernel_baselines(
            baseline, fresh, per_case_floors={"alpha@native": 1.5}
        )

    def test_floor_skipped_when_case_restricted_out(self):
        baseline = self.record(
            alpha={"native": 2.0}, beta={"native": 2.0}
        )
        baseline["floors"] = {"beta@native": 100.0, "beta": 100.0}
        fresh = self.record(alpha={"native": 2.0})
        fresh["case_filter"] = ["alpha"]
        assert not compare_kernel_baselines(baseline, fresh)

    def test_floor_on_derived_case_survives_restriction(self):
        # A derived case (e.g. the intersection family) is present in a
        # restricted fresh run even though its name is not in the
        # case_filter — the floor must still bind.
        baseline = self.record(family={"native": 4.0})
        baseline["floors"] = {"family@native": 3.0}
        fresh = self.record(family={"native": 2.0})
        fresh["case_filter"] = ["member_a", "member_b"]
        failures = compare_kernel_baselines(baseline, fresh)
        assert len(failures) == 1
        assert "floor 3.00x" in failures[0]

    def test_missing_case_fails_floor_without_restriction(self):
        fresh = self.record(alpha={"native": 2.0})
        failures = compare_kernel_baselines(
            fresh, fresh, per_case_floors={"ghost": 1.0}
        )
        assert len(failures) == 1
        assert "no speedup recorded" in failures[0]

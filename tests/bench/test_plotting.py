"""Tests for the terminal figure renderer."""

import pytest

from repro.bench.harness import Measurement, SweepResult
from repro.bench.plotting import MARKERS, render_figure


def make_sweep():
    sweep = SweepResult("toy", [8, 4, 2], ["fast", "slow"])
    timings = {
        ("fast", 8): 0.01, ("fast", 4): 0.02, ("fast", 2): 0.05,
        ("slow", 8): 0.02, ("slow", 4): 1.0,
    }
    for (algorithm, smin), seconds in timings.items():
        sweep.cells[(algorithm, smin)] = Measurement(algorithm, smin, seconds, 1, {})
    sweep.cells[("slow", 2)] = Measurement("slow", 2, float("inf"), 0, {}, skipped=True)
    return sweep


class TestRenderFigure:
    def test_contains_axes_and_legend(self):
        chart = render_figure(make_sweep())
        assert "log10" in chart
        assert f"{MARKERS[0]}=fast" in chart
        assert f"{MARKERS[1]}=slow" in chart

    def test_markers_plotted(self):
        chart = render_figure(make_sweep())
        assert MARKERS[0] in chart
        assert MARKERS[1] in chart

    def test_skipped_cells_truncate_curve(self):
        """The slow curve has one fewer plotted support than the sweep."""
        chart = render_figure(make_sweep())
        # slow appears at 2 supports only; fast at 3 — so fast has at
        # least as many marker occurrences
        assert chart.count(MARKERS[0]) >= chart.count(MARKERS[1])

    def test_support_labels_present(self):
        chart = render_figure(make_sweep())
        for smin in (8, 4, 2):
            assert str(smin) in chart

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            render_figure(make_sweep(), width=4)

    def test_empty_sweep(self):
        sweep = SweepResult("empty", [2], ["x"])
        sweep.cells[("x", 2)] = Measurement("x", 2, float("inf"), 0, {}, skipped=True)
        assert render_figure(sweep) == "(no measurements)"

    def test_flat_series_does_not_crash(self):
        sweep = SweepResult("flat", [4, 2], ["a"])
        for smin in (4, 2):
            sweep.cells[("a", smin)] = Measurement("a", smin, 1.0, 1, {})
        assert "a" in render_figure(sweep)

"""Tests for the operation counters."""

from repro.stats import OperationCounters


class TestCounters:
    def test_start_at_zero(self):
        counters = OperationCounters()
        assert all(value == 0 for value in counters.as_dict().values())

    def test_peak_is_a_gauge(self):
        counters = OperationCounters()
        counters.observe_repository_size(10)
        counters.observe_repository_size(5)
        assert counters.repository_peak == 10

    def test_iadd_sums_counts_and_maxes_peak(self):
        a = OperationCounters()
        a.intersections = 3
        a.observe_repository_size(7)
        b = OperationCounters()
        b.intersections = 4
        b.observe_repository_size(2)
        a += b
        assert a.intersections == 7
        assert a.repository_peak == 7

    def test_as_dict_snapshot_is_independent(self):
        counters = OperationCounters()
        snapshot = counters.as_dict()
        counters.intersections = 5
        assert snapshot["intersections"] == 0

    def test_repr_shows_only_nonzero(self):
        counters = OperationCounters()
        counters.reports = 2
        assert "reports=2" in repr(counters)
        assert "intersections" not in repr(counters)

"""Property tests for the Galois connection layer (Sections 2.4 / 2.5)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.data import itemset
from repro.data.database import TransactionDatabase
from repro.closure import galois

N_ITEMS = 6
MAX_TRANSACTIONS = 7

databases = st.lists(
    st.integers(min_value=0, max_value=(1 << N_ITEMS) - 1),
    min_size=1,
    max_size=MAX_TRANSACTIONS,
).map(lambda masks: TransactionDatabase(masks, N_ITEMS))

item_masks = st.integers(min_value=0, max_value=(1 << N_ITEMS) - 1)


def tid_masks(db):
    return st.integers(min_value=0, max_value=(1 << db.n_transactions) - 1)


class TestGaloisConnection:
    @given(databases, item_masks)
    def test_adjunction(self, db, items):
        """K ⊆ f(I)  ⟺  I ⊆ g(K) — checked over all tid sets."""
        f_items = galois.cover(db, items)
        for tids in range(1 << db.n_transactions):
            lhs = itemset.is_subset(tids, f_items)
            rhs = itemset.is_subset(items, galois.intersection_of(db, tids))
            assert lhs == rhs

    @given(databases, item_masks, item_masks)
    def test_cover_antitone(self, db, a, b):
        if itemset.is_subset(a, b):
            assert itemset.is_subset(galois.cover(db, b), galois.cover(db, a))

    @given(databases)
    def test_cover_of_empty_set_is_all_transactions(self, db):
        assert galois.cover(db, 0) == galois.all_tids(db)


class TestClosureOperator:
    @given(databases, item_masks)
    def test_extensive(self, db, items):
        assert itemset.is_subset(items, galois.closure(db, items))

    @given(databases, item_masks)
    def test_idempotent(self, db, items):
        once = galois.closure(db, items)
        assert galois.closure(db, once) == once

    @given(databases, item_masks, item_masks)
    def test_monotone(self, db, a, b):
        if itemset.is_subset(a, b):
            assert itemset.is_subset(galois.closure(db, a), galois.closure(db, b))

    @given(databases, item_masks)
    def test_closure_preserves_support(self, db, items):
        assert galois.cover(db, galois.closure(db, items)) == galois.cover(db, items)

    @given(databases, item_masks)
    def test_is_closed_definition(self, db, items):
        assert galois.is_closed(db, items) == (galois.closure(db, items) == items)


class TestTidClosure:
    @given(databases)
    def test_tid_closure_idempotent(self, db):
        for tids in range(1 << db.n_transactions):
            once = galois.tid_closure(db, tids)
            assert galois.tid_closure(db, once) == once

    @given(databases)
    def test_bijection_between_closed_families(self, db):
        """f restricted to closed item sets is a bijection onto closed tid sets
        — the Section 2.5 result that justifies intersection mining."""
        closed_items = {
            mask
            for mask in range(1 << db.n_items)
            if galois.is_closed(db, mask)
        }
        closed_tids = {
            tids
            for tids in range(1 << db.n_transactions)
            if galois.is_tid_closed(db, tids)
        }
        image = {galois.cover(db, mask) for mask in closed_items}
        assert image == closed_tids
        # Injectivity: distinct closed item sets have distinct covers.
        assert len(image) == len(closed_items)

    @given(databases)
    def test_every_transaction_intersection_is_closed(self, db):
        """g(K) is closed for every non-empty K (what makes IsTa sound)."""
        for tids in range(1, 1 << db.n_transactions):
            intersection = galois.intersection_of(db, tids)
            assert galois.is_closed(db, intersection)

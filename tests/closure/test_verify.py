"""Tests for the brute-force oracles and consistency checks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.closure import galois
from repro.closure.verify import (
    all_frequent_bruteforce,
    check_closed_family,
    closed_frequent_bruteforce,
    maximal_frequent_bruteforce,
    reconstruct_support,
)
from repro.data import itemset
from repro.data.database import TransactionDatabase
from repro.result import MiningResult

from ..conftest import db_from_strings, make_random_db


class TestClosedOracle:
    def test_known_example(self):
        """Figure 3's database, closed sets worked out by hand."""
        db = db_from_strings(["eca", "edb", "dcba"])
        closed = closed_frequent_bruteforce(db, 1).as_frozensets()
        assert closed == {
            frozenset("e"): 2,
            frozenset("eca"): 1,
            frozenset("edb"): 1,
            frozenset("dcba"): 1,
            frozenset("db"): 2,
            frozenset("ca"): 2,
        }

    def test_smin_filters(self):
        db = db_from_strings(["eca", "edb", "dcba"])
        closed = closed_frequent_bruteforce(db, 2).as_frozensets()
        assert set(closed) == {frozenset("e"), frozenset("db"), frozenset("ca")}

    def test_every_reported_set_is_closed_and_support_exact(self):
        for seed in range(20):
            db = make_random_db(seed)
            for smin in (1, 2, 3):
                result = closed_frequent_bruteforce(db, smin)
                for mask, support in result.items():
                    assert galois.is_closed(db, mask)
                    assert itemset.size(galois.cover(db, mask)) == support
                    assert support >= smin

    def test_invalid_smin_rejected(self):
        db = db_from_strings(["ab"])
        with pytest.raises(ValueError):
            closed_frequent_bruteforce(db, 0)


class TestAllFrequentOracle:
    def test_counts_on_small_example(self):
        db = db_from_strings(["ab", "ab", "b"])
        result = all_frequent_bruteforce(db, 2).as_frozensets()
        assert result == {
            frozenset("a"): 2,
            frozenset("b"): 3,
            frozenset("ab"): 2,
        }

    def test_guard_against_large_item_bases(self):
        db = TransactionDatabase([0] * 3, n_items=25)
        with pytest.raises(ValueError, match="guard"):
            all_frequent_bruteforce(db, 1)

    def test_closed_family_is_subset_of_frequent_family(self):
        for seed in range(10):
            db = make_random_db(seed, max_items=6)
            frequent = all_frequent_bruteforce(db, 2)
            closed = closed_frequent_bruteforce(db, 2)
            for mask, support in closed.items():
                assert frequent.support_of(mask) == support


class TestMaximalOracle:
    def test_maximal_subset_of_closed(self):
        for seed in range(10):
            db = make_random_db(seed)
            closed = closed_frequent_bruteforce(db, 2)
            maximal = maximal_frequent_bruteforce(db, 2)
            for mask in maximal:
                assert mask in closed
                # no proper frequent superset
                assert not any(
                    other != mask and itemset.is_subset(mask, other) for other in closed
                )


class TestSupportReconstruction:
    @given(st.integers(min_value=0, max_value=60))
    def test_every_frequent_set_reconstructs_exactly(self, seed):
        db = make_random_db(seed, max_items=6)
        smin = 2
        closed = closed_frequent_bruteforce(db, smin)
        frequent = all_frequent_bruteforce(db, smin)
        for mask, support in frequent.items():
            assert reconstruct_support(closed, mask) == support

    def test_infrequent_set_gives_none(self):
        db = db_from_strings(["a", "b"])
        closed = closed_frequent_bruteforce(db, 1)
        missing = itemset.from_indices([0, 1])  # {a, b} never co-occurs
        assert reconstruct_support(closed, missing) is None


class TestCheckClosedFamily:
    def test_accepts_correct_family(self):
        db = db_from_strings(["eca", "edb", "dcba"])
        check_closed_family(db, closed_frequent_bruteforce(db, 1), 1)

    def test_rejects_wrong_support(self):
        db = db_from_strings(["ab", "ab"])
        bogus = MiningResult({db.encode("ab"): 1}, db.item_labels)
        with pytest.raises(AssertionError, match="true support"):
            check_closed_family(db, bogus, 1)

    def test_rejects_non_closed_set(self):
        db = db_from_strings(["ab", "ab"])
        bogus = MiningResult(
            {db.encode("a"): 2, db.encode("ab"): 2}, db.item_labels
        )
        with pytest.raises(AssertionError, match="not closed"):
            check_closed_family(db, bogus, 1)

    def test_rejects_missing_set(self):
        db = db_from_strings(["ab", "ab"])
        bogus = MiningResult({db.encode("ab"): 2}, db.item_labels)
        # {a,b} is the only closed set here — remove nothing; instead drop it
        empty = MiningResult({}, db.item_labels)
        with pytest.raises(AssertionError, match="missing"):
            check_closed_family(db, empty, 1)

    def test_rejects_below_threshold_report(self):
        db = db_from_strings(["ab", "ab", "c"])
        bogus = MiningResult({db.encode("c"): 1, db.encode("ab"): 2}, db.item_labels)
        with pytest.raises(AssertionError, match="below smin"):
            check_closed_family(db, bogus, 2)

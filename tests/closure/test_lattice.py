"""Tests for the concept lattice layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.lattice import ConceptLattice
from repro.closure.verify import closed_frequent_bruteforce
from repro.data import itemset
from repro.data.database import TransactionDatabase
from repro.mining import mine

from ..conftest import db_from_strings

small_databases = st.lists(
    st.integers(min_value=1, max_value=(1 << 6) - 1), min_size=1, max_size=8
).map(lambda masks: TransactionDatabase(masks, 6))


@pytest.fixture
def lattice():
    db = db_from_strings(["abc", "abd", "acd", "bcd", "ab", "cd"])
    return db, ConceptLattice.from_database(db, smin=2)


class TestStructure:
    def test_size_matches_family(self, lattice):
        db, lat = lattice
        assert len(lat) == len(mine(db, 2))

    def test_edges_respect_inclusion(self, lattice):
        _, lat = lattice
        for child, parent in lat.hasse_edges():
            assert itemset.is_subset(child, parent)
            assert child != parent

    def test_edges_are_covers(self, lattice):
        """No closed set strictly between the endpoints of an edge."""
        _, lat = lattice
        concepts = [mask for level in lat.iter_levels() for mask in level]
        for child, parent in lat.hasse_edges():
            for middle in concepts:
                if middle in (child, parent):
                    continue
                between = itemset.is_subset(child, middle) and itemset.is_subset(
                    middle, parent
                )
                assert not between, (child, middle, parent)

    def test_parents_children_are_inverse(self, lattice):
        _, lat = lattice
        for child, parent in lat.hasse_edges():
            assert child in lat.children(parent)
            assert parent in lat.parents(child)

    def test_leaves_are_maximal_sets(self, lattice):
        db, lat = lattice
        maximal = set(mine(db, 2, target="maximal"))
        assert set(lat.leaves()) == maximal

    def test_supports_monotone_along_edges(self, lattice):
        _, lat = lattice
        for child, parent in lat.hasse_edges():
            assert lat.support(child) >= lat.support(parent)

    @settings(deadline=None, max_examples=25)
    @given(small_databases, st.integers(min_value=1, max_value=4))
    def test_every_non_root_concept_has_a_parent_path_to_a_leaf(self, db, smin):
        closed = closed_frequent_bruteforce(db, smin)
        lat = ConceptLattice(db, closed)
        leaves = set(lat.leaves())
        for mask in closed:
            walk = mask
            seen = 0
            while walk not in leaves:
                parents = lat.parents(walk)
                assert parents, walk
                walk = parents[0]
                seen += 1
                assert seen <= len(closed)


class TestOperations:
    def test_join(self, lattice):
        db, lat = lattice
        a, b = db.encode("a"), db.encode("b")
        joined = lat.join(a, b)
        assert joined is not None
        assert itemset.is_subset(a | b, joined)

    def test_meet(self, lattice):
        db, lat = lattice
        ab, cd = db.encode("ab"), db.encode("ac")
        met = lat.meet(ab, cd)
        assert met is not None
        assert itemset.is_subset(met, ab)
        assert itemset.is_subset(met, cd)

    def test_join_below_threshold_is_none(self):
        db = db_from_strings(["ab", "ab", "cd", "cd"])
        lat = ConceptLattice.from_database(db, smin=2)
        assert lat.join(db.encode("ab"), db.encode("cd")) is None


class TestExport:
    def test_to_dot_mentions_every_concept(self, lattice):
        _, lat = lattice
        dot = lat.to_dot()
        assert dot.startswith("digraph")
        assert dot.count("label=") == len(lat)

    def test_long_labels_truncated(self):
        db = db_from_strings(["abcdefgh", "abcdefgh"])
        lat = ConceptLattice.from_database(db, smin=1)
        assert "…" in lat.to_dot(max_label_items=3)

"""Tests for minimal generator computation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure import galois
from repro.closure.generators import all_minimal_generators, minimal_generators
from repro.closure.verify import closed_frequent_bruteforce
from repro.data import itemset
from repro.data.database import TransactionDatabase

from ..conftest import db_from_strings

small_databases = st.lists(
    st.integers(min_value=1, max_value=(1 << 6) - 1), min_size=1, max_size=8
).map(lambda masks: TransactionDatabase(masks, 6))


class TestDefinition:
    @settings(deadline=None, max_examples=30)
    @given(small_databases, st.integers(min_value=1, max_value=3))
    def test_generators_close_to_their_closed_set(self, db, smin):
        closed = closed_frequent_bruteforce(db, smin)
        for mask, support in closed.items():
            for generator in minimal_generators(db, mask, support):
                assert itemset.is_subset(generator, mask)
                assert galois.closure(db, generator) == mask
                assert db.support(generator) == support

    @settings(deadline=None, max_examples=30)
    @given(small_databases, st.integers(min_value=1, max_value=3))
    def test_generators_are_minimal(self, db, smin):
        """Removing any item from a minimal generator must raise support."""
        closed = closed_frequent_bruteforce(db, smin)
        for mask, support in closed.items():
            for generator in minimal_generators(db, mask, support):
                for item in itemset.to_indices(generator):
                    reduced = itemset.without(generator, item)
                    if reduced:
                        assert db.support(reduced) > support
                    else:
                        # the empty set covers everything
                        assert db.n_transactions > support or True

    @settings(deadline=None, max_examples=20)
    @given(small_databases, st.integers(min_value=1, max_value=3))
    def test_complete_by_brute_force(self, db, smin):
        """Every subset of a closed set with equal support and minimal by
        inclusion must be found."""
        closed = closed_frequent_bruteforce(db, smin)
        for mask, support in closed.items():
            items = itemset.to_indices(mask)
            if len(items) > 5:
                continue
            equal_support = [
                sub
                for sub in range(1, 1 << db.n_items)
                if itemset.is_subset(sub, mask) and db.support(sub) == support
            ]
            expected = {
                sub
                for sub in equal_support
                if not any(
                    other != sub and itemset.is_subset(other, sub)
                    for other in equal_support
                )
            }
            got = set(minimal_generators(db, mask, support))
            assert got == expected


class TestExamples:
    def test_closed_set_is_its_own_generator_when_free(self):
        db = db_from_strings(["ab", "ac", "bc"])
        # {a} is closed with support 2 and trivially its own generator.
        assert minimal_generators(db, db.encode("a"), 2) == [db.encode("a")]

    def test_generator_smaller_than_closure(self):
        # b always occurs with a: closure({b}) = {a,b}; {b} generates it.
        db = db_from_strings(["ab", "ab", "a"])
        generators = minimal_generators(db, db.encode("ab"), 2)
        assert generators == [db.encode("b")]

    def test_multiple_generators(self):
        # c and d are equivalent markers of the same rows.
        db = db_from_strings(["acd", "acd", "a"])
        generators = set(minimal_generators(db, db.encode("acd"), 2))
        assert generators == {db.encode("c"), db.encode("d")}

    def test_all_minimal_generators_covers_family(self):
        db = db_from_strings(["ab", "ab", "ac"])
        closed = closed_frequent_bruteforce(db, 1)
        table = all_minimal_generators(db, closed)
        assert set(table) == set(closed)
        assert all(table[mask] for mask in table)

    def test_size_guard_falls_back_to_closed_set(self):
        # {a,b} closed with support 2; both singletons have support 3,
        # so the only minimal generator is {a,b} itself (size 2).
        db = db_from_strings(["ab", "ab", "a", "b"])
        full = minimal_generators(db, db.encode("ab"), 2)
        assert full == [db.encode("ab")]
        # guard below the generator size: explicit fallback
        guarded = minimal_generators(db, db.encode("ab"), 2, max_generator_size=1)
        assert guarded == [db.encode("ab")]

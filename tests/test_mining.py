"""Tests for the unified mining front door."""

import pytest

from repro.mining import (
    ALGORITHMS,
    ENUMERATION_ALGORITHMS,
    INTERSECTION_ALGORITHMS,
    mine,
)
from repro.stats import OperationCounters

from .conftest import CLOSED_ALGORITHMS, db_from_strings, make_random_db


class TestDispatch:
    def test_registry_covers_both_families(self):
        for name in INTERSECTION_ALGORITHMS + ENUMERATION_ALGORITHMS:
            assert name in ALGORITHMS

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            mine(db_from_strings(["a"]), 1, algorithm="magic")

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown target"):
            mine(db_from_strings(["a"]), 1, target="weird")

    def test_all_target_rejected_for_closed_only_miners(self):
        db = db_from_strings(["ab"])
        for algorithm in INTERSECTION_ALGORITHMS + ("lcm",):
            with pytest.raises(ValueError, match="closed sets only"):
                mine(db, 1, algorithm=algorithm, target="all")

    def test_options_forwarded(self):
        db = db_from_strings(["ab", "ab"])
        result = mine(db, 1, algorithm="carpenter-lists", repository_kind="hash")
        assert len(result) == 1

    def test_counters_forwarded(self):
        db = db_from_strings(["ab", "ab"])
        counters = OperationCounters()
        mine(db, 1, algorithm="ista", counters=counters)
        assert counters.nodes_created > 0


class TestCrossAlgorithmAgreement:
    def test_all_closed_miners_agree(self):
        for seed in range(8):
            db = make_random_db(seed, max_transactions=12, max_items=9)
            for smin in (1, 2, 3):
                results = {
                    algorithm: mine(db, smin, algorithm=algorithm).as_frozensets()
                    for algorithm in CLOSED_ALGORITHMS
                }
                reference = results["cumulative-flat"]
                for algorithm, got in results.items():
                    assert got == reference, algorithm

    def test_maximal_target_consistent_across_families(self):
        db = make_random_db(3, max_transactions=10, max_items=8)
        expected = mine(db, 2, algorithm="eclat", target="maximal").as_frozensets()
        for algorithm in ("ista", "carpenter-table", "lcm", "fpgrowth"):
            got = mine(db, 2, algorithm=algorithm, target="maximal").as_frozensets()
            assert got == expected, algorithm

    def test_maximal_label(self):
        db = db_from_strings(["ab"])
        result = mine(db, 1, algorithm="ista", target="maximal")
        assert result.algorithm == "ista-maximal"


class TestAutoSelection:
    def test_wide_database_picks_intersection(self):
        from repro.mining import choose_algorithm
        from repro.data.database import TransactionDatabase

        wide = TransactionDatabase([0b1, 0b10], 8)
        assert choose_algorithm(wide) == "ista"

    def test_tall_database_picks_enumeration(self):
        from repro.mining import choose_algorithm
        from repro.data.database import TransactionDatabase

        tall = TransactionDatabase([0b1] * 10, 3)
        assert choose_algorithm(tall) == "lcm"

    def test_target_all_forces_enumeration(self):
        from repro.mining import choose_algorithm
        from repro.data.database import TransactionDatabase

        wide = TransactionDatabase([0b1, 0b10], 8)
        assert choose_algorithm(wide, target="all") == "fpgrowth"

    def test_auto_mines_correctly(self):
        db = make_random_db(7, max_transactions=8, max_items=8)
        assert mine(db, 2, algorithm="auto") == mine(db, 2, algorithm="ista")


class TestRelativeSupport:
    def test_relative_equals_absolute(self):
        db = make_random_db(1, max_transactions=10, max_items=6)
        n = db.n_transactions
        relative = mine(db, 0.5, algorithm="ista")
        import math

        absolute = mine(db, max(1, math.ceil(0.5 * n)), algorithm="ista")
        assert relative == absolute

    def test_relative_bounds_enforced(self):
        db = db_from_strings(["ab"])
        with pytest.raises(ValueError, match="relative"):
            mine(db, 0.0)
        with pytest.raises(ValueError, match="relative"):
            mine(db, 1.5)

    def test_integer_one_is_absolute(self):
        db = db_from_strings(["ab", "cd"])
        assert len(mine(db, 1)) == 2


class TestDocExample:
    def test_module_docstring_example(self):
        from repro.data import TransactionDatabase

        db = TransactionDatabase.from_iterable([["a", "b"], ["a", "b"], ["b"]])
        result = mine(db, smin=2, algorithm="ista")
        assert result.as_frozensets() == {
            frozenset({"a", "b"}): 2,
            frozenset({"b"}): 3,
        }

"""Tests for database/family profiling."""

import pytest

from repro.analysis import (
    compression_ratio,
    profile_database,
    profile_family,
)
from repro.closure.verify import all_frequent_bruteforce, closed_frequent_bruteforce
from repro.data.database import TransactionDatabase

from .conftest import db_from_strings


class TestDatabaseProfile:
    def test_basic_statistics(self):
        db = db_from_strings(["ab", "abc", "ab", ""])
        profile = profile_database(db)
        assert profile.n_transactions == 4
        assert profile.n_items == 3
        assert profile.mean_transaction_size == pytest.approx(7 / 4)
        assert profile.max_transaction_size == 3
        assert profile.distinct_transactions == 3

    def test_regime_detection(self):
        wide = TransactionDatabase([0b1, 0b10], 8)
        tall = TransactionDatabase([0b1] * 10, 3)
        assert profile_database(wide).favours_intersection
        assert not profile_database(tall).favours_intersection

    def test_describe_mentions_regime(self):
        wide = TransactionDatabase([0b1, 0b10], 8)
        assert "intersection regime" in profile_database(wide).describe()

    def test_empty_database(self):
        profile = profile_database(TransactionDatabase([], 0))
        assert profile.n_transactions == 0
        assert profile.mean_transaction_size == 0.0


class TestFamilyProfile:
    def test_statistics(self):
        db = db_from_strings(["ab", "ab", "b"])
        closed = closed_frequent_bruteforce(db, 1)
        profile = profile_family(closed)
        assert profile.n_sets == 2
        assert profile.max_size == 2
        assert profile.size_histogram == {1: 1, 2: 1}
        assert profile.max_support == 3

    def test_empty_family(self):
        db = db_from_strings(["a"])
        profile = profile_family(closed_frequent_bruteforce(db, 2))
        assert profile.n_sets == 0
        assert profile.mean_size == 0.0


class TestCompression:
    def test_exact_ratio(self):
        db = db_from_strings(["abcd", "abcd", "abcd"])
        closed = closed_frequent_bruteforce(db, 2)
        frequent = all_frequent_bruteforce(db, 2)
        # one closed set represents 15 frequent sets
        assert compression_ratio(closed, frequent) == pytest.approx(15.0)

    def test_no_reference_gives_one(self):
        db = db_from_strings(["ab"])
        assert compression_ratio(closed_frequent_bruteforce(db, 1)) == 1.0

    def test_empty_family(self):
        db = db_from_strings(["a"])
        closed = closed_frequent_bruteforce(db, 2)
        assert compression_ratio(closed) == 1.0

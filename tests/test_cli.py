"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data.io import read_fimi


@pytest.fixture
def fimi_file(tmp_path):
    path = tmp_path / "data.fimi"
    path.write_text("1 2 3\n1 2\n1 2 4\n2 3\n")
    return str(path)


class TestMineCommand:
    def test_mine_to_stdout(self, fimi_file, capsys):
        assert main(["mine", fimi_file, "-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 2 (3)" in out

    def test_mine_to_file(self, fimi_file, tmp_path):
        out_path = tmp_path / "out.txt"
        main(["mine", fimi_file, "-s", "2", "-o", str(out_path)])
        assert "1 2 (3)" in out_path.read_text()

    def test_all_algorithms_give_same_line_count(self, fimi_file, tmp_path, capsys):
        counts = set()
        for algorithm in ("ista", "carpenter-table", "lcm", "fpgrowth"):
            main(["mine", fimi_file, "-s", "2", "-a", algorithm])
            counts.add(len(capsys.readouterr().out.strip().splitlines()))
        assert len(counts) == 1

    def test_stats_flag(self, fimi_file, capsys):
        main(["mine", fimi_file, "-s", "2", "--stats"])
        err = capsys.readouterr().err
        assert "item sets in" in err
        assert "counters" in err

    def test_maximal_target(self, fimi_file, capsys):
        main(["mine", fimi_file, "-s", "2", "-t", "maximal"])
        out = capsys.readouterr().out
        assert out.strip()

    def test_bad_algorithm_exits(self, fimi_file):
        with pytest.raises(SystemExit):
            main(["mine", fimi_file, "-s", "2", "-a", "bogus"])

    def test_backend_flag(self, fimi_file, capsys):
        baseline = None
        for backend in ("bitint", "numpy"):
            main(["mine", fimi_file, "-s", "2", "--backend", backend])
            out = capsys.readouterr().out
            if baseline is None:
                baseline = out
            assert out == baseline

    def test_bad_backend_exits(self, fimi_file):
        with pytest.raises(SystemExit):
            main(["mine", fimi_file, "-s", "2", "--backend", "cuda"])

    def test_workers_flag_matches_serial(self, fimi_file, capsys):
        main(["mine", fimi_file, "-s", "2"])
        serial = capsys.readouterr().out
        main(["mine", fimi_file, "-s", "2", "--workers", "2", "--shard", "items"])
        assert capsys.readouterr().out == serial

    def test_workers_incompatible_with_target_all(self, fimi_file, capsys):
        code = main(["mine", fimi_file, "-s", "2", "--workers", "2", "-t", "all"])
        assert code == 2
        assert "closed" in capsys.readouterr().err

    def test_workers_incompatible_with_fallback(self, fimi_file, capsys):
        code = main(["mine", fimi_file, "-s", "2", "--workers", "2", "--fallback"])
        assert code == 2
        assert "--fallback" in capsys.readouterr().err


class TestGenCommand:
    def test_generate_writes_fimi(self, tmp_path, capsys):
        out_path = tmp_path / "gen.fimi"
        code = main([
            "gen", "baskets", "-o", str(out_path),
            "--option", "n_transactions=20", "--option", "n_items=15",
        ])
        assert code == 0
        db = read_fimi(out_path)
        assert db.n_transactions == 20

    def test_float_and_string_options_parsed(self, tmp_path):
        out_path = tmp_path / "gen.fimi"
        main([
            "gen", "baskets", "-o", str(out_path),
            "--option", "n_transactions=10",
            "--option", "corruption=0.1",
        ])
        assert read_fimi(out_path).n_transactions == 10

    def test_bad_option_syntax_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="KEY=VALUE"):
            main(["gen", "baskets", "-o", str(tmp_path / "x"), "--option", "oops"])


class TestStatsCommand:
    def test_stats_without_mining(self, fimi_file, capsys):
        assert main(["stats", fimi_file]) == 0
        out = capsys.readouterr().out
        assert "4 transactions over 4 items" in out

    def test_stats_with_family_profile(self, fimi_file, capsys):
        main(["stats", fimi_file, "-s", "2"])
        out = capsys.readouterr().out
        assert "closed family at smin=2" in out


class TestRulesCommand:
    def test_rules(self, fimi_file, capsys):
        assert main(["rules", fimi_file, "-s", "2", "-c", "0.6"]) == 0
        captured = capsys.readouterr()
        assert "->" in captured.out
        assert "rules from" in captured.err

    def test_non_redundant_rules(self, fimi_file, capsys):
        assert main(["rules", fimi_file, "-s", "2", "--non-redundant"]) == 0
        assert "rules from" in capsys.readouterr().err


class TestArffInterop:
    def test_gen_arff_and_mine_it(self, tmp_path, capsys):
        out_path = tmp_path / "toy.arff"
        main([
            "gen", "baskets", "-o", str(out_path),
            "--option", "n_transactions=15", "--option", "n_items=10",
        ])
        capsys.readouterr()
        assert out_path.read_text().startswith("@relation baskets")
        assert main(["mine", str(out_path), "-s", "3"]) == 0


class TestBenchCommand:
    def test_bench_runs_scaled_down(self, capsys):
        code = main([
            "bench", "fig6-ncbi60", "--scale", "0.15", "--time-limit", "15",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "smin" in out

    def test_parser_structure(self):
        parser = build_parser()
        args = parser.parse_args(["mine", "x.fimi", "-s", "3"])
        assert args.command == "mine"
        assert args.smin == 3


class TestBackendsCommand:
    def test_text_report_exits_zero(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "registered backends:" in out
        assert "bitint" in out
        assert "selection:" in out

    def test_json_report(self, capsys):
        import json

        from repro.kernels import HAVE_NATIVE

        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "bitint" in payload["registered"]
        assert "native" in payload["selectable"]
        assert payload["native_built"] == HAVE_NATIVE
        assert payload["selection"]["resolved"] in payload["registered"]

    def test_environment_selection_reported(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "environment (REPRO_KERNEL_BACKEND)" in out
        assert "-> numpy" in out

    def test_unknown_env_backend_still_exits_zero(self, capsys, monkeypatch):
        # Diagnostic, not health check: a broken environment variable
        # is exactly what the verb exists to explain.
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "fortran")
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "-> None" in out

    def test_native_flag_accepted_everywhere(self, fimi_file, capsys):
        # 'native' stays a valid --backend value even when the
        # extension is not built (it resolves down the fallback chain).
        assert main(["mine", fimi_file, "-s", "2", "--backend", "native"]) == 0
        out = capsys.readouterr().out
        assert "1 2 (3)" in out

"""Tests for the shared preprocessing pass (repro.common)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.verify import closed_frequent_bruteforce
from repro.common import finalize, prepare_for_mining, translate_mask
from repro.data.database import TransactionDatabase

from ..conftest import db_from_strings

databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 7) - 1), min_size=1, max_size=10
).map(lambda masks: TransactionDatabase(masks, 7))


class TestPrepare:
    def test_infrequent_items_dropped(self):
        db = db_from_strings(["ab", "ab", "az"])
        prepared, code_map = prepare_for_mining(db, 2)
        assert prepared.n_items == 2  # z gone
        assert {db.item_labels[c] for c in code_map} == {"a", "b"}

    def test_empty_transactions_dropped(self):
        db = db_from_strings(["ab", "", "ab"])
        prepared, _ = prepare_for_mining(db, 1)
        assert prepared.n_transactions == 2

    def test_transactions_emptied_by_filter_are_dropped(self):
        db = db_from_strings(["ab", "ab", "z"])
        prepared, _ = prepare_for_mining(db, 2)
        assert prepared.n_transactions == 2

    def test_default_orders_applied(self):
        db = db_from_strings(["abc", "ab", "a"])
        prepared, code_map = prepare_for_mining(db, 1)
        # size-ascending transactions
        assert prepared.transaction_sizes() == [1, 2, 3]
        # frequency-ascending items: c (1) -> code 0, b (2) -> 1, a (3) -> 2
        assert [db.item_labels[c] for c in code_map] == ["c", "b", "a"]

    def test_invalid_smin_rejected(self):
        with pytest.raises(ValueError):
            prepare_for_mining(db_from_strings(["a"]), 0)

    def test_unknown_item_order_rejected(self):
        with pytest.raises(ValueError, match="unknown item order"):
            prepare_for_mining(db_from_strings(["a"]), 1, item_order="bogus")

    @settings(deadline=None, max_examples=30)
    @given(databases, st.integers(min_value=1, max_value=4))
    def test_filtering_preserves_the_closed_frequent_family(self, db, smin):
        """Dropping globally infrequent items never changes the answer —
        the correctness argument in the module docstring."""
        prepared, code_map = prepare_for_mining(db, smin, item_order="identity",
                                                transaction_order="identity")
        family_prepared = {
            frozenset(code_map[i] for i in _bits(mask)): supp
            for mask, supp in closed_frequent_bruteforce(prepared, smin).items()
        }
        family_original = {
            frozenset(_bits(mask)): supp
            for mask, supp in closed_frequent_bruteforce(db, smin).items()
        }
        assert family_prepared == family_original


class TestTranslate:
    def test_translate_mask_roundtrip(self):
        code_map = [5, 2, 9]
        assert translate_mask(0b101, code_map) == (1 << 5) | (1 << 9)
        assert translate_mask(0, code_map) == 0

    def test_finalize_builds_result_in_original_coding(self):
        db = db_from_strings(["ab", "ab", "az"])
        prepared, code_map = prepare_for_mining(db, 2)
        result = finalize([( (1 << prepared.n_items) - 1, 2)], code_map, db, "x", 2)
        assert result.as_frozensets() == {frozenset("ab"): 2}


def _bits(mask):
    out = []
    index = 0
    while mask:
        if mask & 1:
            out.append(index)
        mask >>= 1
        index += 1
    return out

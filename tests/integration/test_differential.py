"""Differential tests: every miner, one answer.

The heart of the test-suite: all seven closed-set miners (two cumulative
schemes, two Carpenter variants, three enumeration baselines) must
produce identical ``(item set, support)`` families on randomly generated
databases, and that family must equal the brute-force oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure.verify import closed_frequent_bruteforce
from repro.data.database import TransactionDatabase
from repro.mining import mine

from ..conftest import CLOSED_ALGORITHMS

databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 8) - 1), min_size=1, max_size=12
).map(lambda masks: TransactionDatabase(masks, 8))

sparse_databases = st.lists(
    st.integers(min_value=0, max_value=(1 << 10) - 1).map(lambda m: m & 0x21B),
    min_size=1,
    max_size=14,
).map(lambda masks: TransactionDatabase(masks, 10))


class TestAllMinersAgainstOracle:
    @settings(deadline=None, max_examples=40)
    @given(databases, st.integers(min_value=1, max_value=6))
    def test_all_miners_match_oracle(self, db, smin):
        expected = closed_frequent_bruteforce(db, smin)
        for algorithm in CLOSED_ALGORITHMS:
            got = mine(db, smin, algorithm=algorithm)
            assert got == expected, algorithm

    @settings(deadline=None, max_examples=25)
    @given(sparse_databases, st.integers(min_value=1, max_value=4))
    def test_sparse_databases(self, db, smin):
        expected = closed_frequent_bruteforce(db, smin)
        for algorithm in CLOSED_ALGORITHMS:
            assert mine(db, smin, algorithm=algorithm) == expected, algorithm


class TestDegenerateShapes:
    @pytest.mark.parametrize("algorithm", CLOSED_ALGORITHMS)
    def test_identical_transactions(self, algorithm):
        db = TransactionDatabase([0b1011] * 6, 4)
        result = mine(db, 3, algorithm=algorithm)
        assert dict(result) == {0b1011: 6}

    @pytest.mark.parametrize("algorithm", CLOSED_ALGORITHMS)
    def test_disjoint_transactions(self, algorithm):
        db = TransactionDatabase([0b1, 0b10, 0b100], 3)
        result = mine(db, 1, algorithm=algorithm)
        assert dict(result) == {0b1: 1, 0b10: 1, 0b100: 1}

    @pytest.mark.parametrize("algorithm", CLOSED_ALGORITHMS)
    def test_chain_of_subsets(self, algorithm):
        db = TransactionDatabase([0b1, 0b11, 0b111, 0b1111], 4)
        result = mine(db, 1, algorithm=algorithm)
        assert dict(result) == {0b1: 4, 0b11: 3, 0b111: 2, 0b1111: 1}

    @pytest.mark.parametrize("algorithm", CLOSED_ALGORITHMS)
    def test_empty_transactions_interleaved(self, algorithm):
        db = TransactionDatabase([0, 0b11, 0, 0b11, 0], 2)
        result = mine(db, 2, algorithm=algorithm)
        assert dict(result) == {0b11: 2}

    @pytest.mark.parametrize("algorithm", CLOSED_ALGORITHMS)
    def test_smin_equal_to_n(self, algorithm):
        db = TransactionDatabase([0b110, 0b011, 0b111], 3)
        result = mine(db, 3, algorithm=algorithm)
        assert dict(result) == {0b010: 3}

    @pytest.mark.parametrize("algorithm", CLOSED_ALGORITHMS)
    def test_single_transaction(self, algorithm):
        db = TransactionDatabase([0b101], 3)
        assert dict(mine(db, 1, algorithm=algorithm)) == {0b101: 1}
